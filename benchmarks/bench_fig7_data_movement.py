"""Figure 7: reduction in data exchanged between host and storage server.

Paper: the ratio of pages processed host-only versus pages shipped by the
computational-storage split; "query speedup is almost directly correlated
with the IO reduction", with Q21 the outlier (its manual split is
compute-intensive rather than IO-saving).
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.bench import format_table


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    return cov / (vx * vy) if vx and vy else 0.0


def test_fig7_data_movement(benchmark, tpch_suite):
    def experiment():
        rows = []
        for q in tpch_suite:
            host_pages = q.runs["hons"].host_meter.pages_read
            shipped_pages = q.runs["vcs"].pages_transferred
            reduction = host_pages / max(1, shipped_pages)
            rows.append(
                [
                    f"Q{q.number}",
                    host_pages,
                    shipped_pages,
                    reduction,
                    q.speedup("hons", "vcs"),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "host-only pages", "CS pages shipped", "IO reduction x", "speedup x"],
            rows,
            title="Figure 7 — data movement reduction with CSA",
        )
    )

    # Correlation claim, excluding the paper's own outlier Q21.
    pairs = [(math.log(r[3]), math.log(r[4])) for r in rows if r[0] != "Q21"]
    corr = _pearson([p[0] for p in pairs], [p[1] for p in pairs])
    print(f"\nlog-log correlation (IO reduction vs speedup, excl. Q21): {corr:.2f}")
    benchmark.extra_info["correlation"] = corr
    assert corr > 0.3, "speedup should correlate with IO reduction"
    assert all(r[3] >= 1.0 for r in rows), "CS must never ship more than host-only reads"

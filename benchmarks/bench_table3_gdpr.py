"""Table 3: GDPR anti-pattern latencies, non-secure vs IronSafe.

Paper: five anti-pattern defenses (timely deletion, indiscriminate use,
transparency, risk-agnostic processing, data breaches) cost 1.9-7.2 ms on
a non-secure system and 12.8-38.1 ms with IronSafe — 4.6-7.8x overhead —
in exchange for enforced compliance.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table
from repro.gdpr import GDPRWorkbench


def test_table3_gdpr_anti_patterns(benchmark):
    def experiment():
        workbench = GDPRWorkbench()
        return workbench.run_all()

    results = run_once(benchmark, experiment)
    rows = [
        [r.name, r.baseline_ms, r.ironsafe_ms, r.overhead, r.detail]
        for r in results
    ]
    print()
    print(
        format_table(
            ["anti-pattern", "non-secure ms", "IronSafe ms", "overhead x", "compliance evidence"],
            rows,
            title="Table 3 — GDPR anti-pattern latencies (simulated ms)",
        )
    )

    assert len(results) == 5
    for r in results:
        assert r.ironsafe_ms > r.baseline_ms, f"{r.name}: IronSafe must cost more"
        assert 2.0 <= r.overhead <= 20.0, (
            f"{r.name}: overhead {r.overhead:.1f}x outside the plausible band"
        )

"""Figure 9a: Q1 execution time vs input size (hos / scs / sos).

Paper: scale factors 3, 4 and 5 whose Merkle trees occupy 59, 78 and
98 MiB of the 96 MiB EPC — hos degrades sharply as EPC paging sets in;
scs is best at every size; sos is limited by the weak storage CPU.

Our deployments scale the data by the same 3:4:5 ratio and pin the EPC so
the smallest tree/EPC ratio matches the paper's 59/96.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import PAPER_EPC_BYTES, PAPER_TREE_BYTES_SF3, build_deployment, format_table
from repro.tpch import Q1


def test_fig9a_input_size(benchmark):
    def experiment():
        scale_factors = [BENCH_SF, BENCH_SF * 4 / 3, BENCH_SF * 5 / 3]
        base = build_deployment(scale_factors[0], scale_epc=True)
        epc = base.cost_model.epc_limit_bytes
        rows = []
        for i, sf in enumerate(scale_factors):
            if i == 0:
                dep = base
            else:
                dep = build_deployment(sf, scale_epc=False)
                dep.cost_model = dep.cost_model.scaled(epc_limit_bytes=epc)
            tree_mib_equiv = (
                dep.storage_engine.pager.tree_size_bytes() / epc * PAPER_EPC_BYTES / (1024**2)
            )
            res = {c: dep.run_query(Q1.sql, c) for c in ("hos", "scs", "sos")}
            rows.append(
                [
                    f"SF {3 + i} (equiv)",
                    tree_mib_equiv,
                    res["hos"].total_ms,
                    res["hos"].breakdown.ms("epc_paging"),
                    res["scs"].total_ms,
                    res["sos"].total_ms,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["input size", "tree MiB-equiv", "hos ms", "hos EPC ms", "scs ms", "sos ms"],
            rows,
            title="Figure 9a — Q1 runtime vs input size (lower is better)",
        )
    )

    # Shape: scs best everywhere; hos EPC paging grows with input size.
    for row in rows:
        assert row[4] <= row[2], f"{row[0]}: scs must beat hos"
        assert row[4] <= row[5], f"{row[0]}: scs must beat sos"
    epc_costs = [row[3] for row in rows]
    assert epc_costs[-1] > epc_costs[0], "EPC paging must grow with input size"
    # The hos-vs-scs gap widens as the enclave working set outgrows the EPC.
    gaps = [row[2] - row[4] for row in rows]
    assert gaps == sorted(gaps), "the hos-scs gap must widen with input size"

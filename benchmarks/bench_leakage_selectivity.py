"""Leakage × selectivity: what the skip-scan speedup costs in bits.

PR 5's zone-map skip-scans trade access-pattern leakage for simulated
time; the adversary-view observability layer makes that trade measurable.
For each selectivity we run K window queries that differ **only in the
predicate constant** (``l_orderkey BETWEEN c AND c+w``) under both arms:

* **full scan** (``zone_maps=False``) — every query reads every lineitem
  page in order, so all K observable traces must be byte-identical: the
  constant leaks nothing through the access pattern (zero measured
  leakage, the oblivious ideal — at full price).
* **skip-scan** (``zone_maps=True``) — pruning reads only the window's
  pages, so each constant produces a distinct trace: the meter reports
  log2(K) bits of mutual information, and the page-set divergence shrinks
  monotonically as the windows widen and overlap (selectivity → 1 is a
  full scan again).

Acceptance (ISSUE 7): full-scan arm leak-free across constants; skip-scan
arm nonzero with monotone-in-selectivity divergence; both deterministic
across two identically-seeded runs; observation itself byte-identical in
rows/meters/sim-ns versus a deployment with no taps at all.
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.core import RunConfig
from repro.telemetry import leakage_report, write_obsv_jsonl
from repro.tpch import Cardinalities

#: Where the observed traces land for the CI leakage gate.
OBSV_OUT = os.environ.get("REPRO_BENCH_OUT", "")

#: Fraction of the orderkey domain each probe window admits.  Windows are
#: spread across the domain, so small selectivities give disjoint page
#: sets (divergence ~1) and large ones overlap heavily (divergence ~0).
SELECTIVITIES = (0.10, 0.50, 0.90)

#: Probe constants per selectivity (K distinct window positions).
PROBES = 4


def _probe_queries(selectivity: float) -> list[str]:
    orders = Cardinalities.for_scale(BENCH_SF).orders
    width = max(1, round(orders * selectivity))
    step = (orders - width) / (PROBES - 1)
    queries = []
    for i in range(PROBES):
        lo = 1 + round(i * step)
        hi = lo + width - 1
        queries.append(
            "SELECT count(*), sum(l_extendedprice) FROM lineitem "
            f"WHERE l_orderkey >= {lo} AND l_orderkey <= {hi}"
        )
    return queries


def _run_arm(deployment, recorder, selectivity: float, zone_maps: bool):
    """Run the K probes for one (selectivity, arm) cell; label the traces."""
    arm = "skip" if zone_maps else "full"
    results = []
    for i, sql in enumerate(_probe_queries(selectivity)):
        result = deployment.run_query(
            sql, "sos", run_config=RunConfig(zone_maps=zone_maps)
        )
        trace = recorder.last_trace()
        # Labels are stamped *after* the run from opaque probe indices:
        # the observable trace itself must never carry the SQL text.
        trace.attributes["group"] = f"s={selectivity:.0%}|{arm}"
        trace.attributes["probe"] = f"c{i}"
        results.append((result, trace))
    return results


def test_leakage_selectivity(benchmark):
    def experiment():
        plain = build_deployment(BENCH_SF)      # no taps: byte-identity witness
        full = build_deployment(BENCH_SF)       # zone_maps=False, observed
        skip = build_deployment(BENCH_SF)       # zone_maps=True, observed
        rerun = build_deployment(BENCH_SF)      # skip arm again: determinism
        rec_full = full.enable_observability()
        rec_skip = skip.enable_observability()
        rec_rerun = rerun.enable_observability()

        rows, pairs = [], []
        all_traces = []
        divergences = {}
        for selectivity in SELECTIVITIES:
            full_runs = _run_arm(full, rec_full, selectivity, zone_maps=False)
            skip_runs = _run_arm(skip, rec_skip, selectivity, zone_maps=True)
            rerun_runs = _run_arm(rerun, rec_rerun, selectivity, zone_maps=True)

            # Identical rows across arms, probe by probe.
            for (rf, _), (rs, _), (rr, _) in zip(full_runs, skip_runs, rerun_runs):
                assert rs.rows == rf.rows and rr.rows == rs.rows

            full_traces = [t for _, t in full_runs]
            skip_traces = [t for _, t in skip_runs]
            all_traces.extend(full_traces)
            all_traces.extend(skip_traces)
            report_full = leakage_report(full_traces, group=f"s={selectivity:.0%}|full")
            report_skip = leakage_report(skip_traces, group=f"s={selectivity:.0%}|skip")

            # Full-scan arm: byte-identical traces across constants.
            prints_full = {t.fingerprint() for t in full_traces}
            assert len(prints_full) == 1, (
                f"{selectivity:.0%}: full scans must be indistinguishable"
            )
            assert report_full.leak_free and report_full.mi_bits == 0.0
            # Skip-scan arm: every constant observable, nonzero leakage.
            assert report_skip.distinct_fingerprints == PROBES, (
                f"{selectivity:.0%}: skip-scan traces must differ per constant"
            )
            assert report_skip.mi_bits > 0.0
            # Deterministic: the identically-seeded rerun reproduces the
            # skip arm's fingerprints exactly, in order.
            assert [t.fingerprint() for t in (t for _, t in rerun_runs)] == [
                t.fingerprint() for t in skip_traces
            ], f"{selectivity:.0%}: leakage must be reproducible run to run"

            device = report_skip.channel("device")
            divergences[selectivity] = device.divergence
            full_ms = sum(r.breakdown.total_ms for r, _ in full_runs) / PROBES
            skip_ms = sum(r.breakdown.total_ms for r, _ in skip_runs) / PROBES
            rows.append(
                [
                    f"{selectivity:.0%}",
                    full_ms,
                    skip_ms,
                    report_full.mi_bits,
                    report_skip.mi_bits,
                    device.divergence,
                    device.distinct_patterns,
                ]
            )
            # The (sim-time, leakage) frontier: one point per (s, arm).
            pairs.append(
                {
                    "selectivity": selectivity,
                    "arm": "full",
                    "sim_ms": full_ms,
                    "mi_bits": report_full.mi_bits,
                    "divergence": 0.0,
                }
            )
            pairs.append(
                {
                    "selectivity": selectivity,
                    "arm": "skip",
                    "sim_ms": skip_ms,
                    "mi_bits": report_skip.mi_bits,
                    "divergence": device.divergence,
                }
            )

        # Observation must not perturb the system: an untapped deployment
        # reproduces the tapped full arm bit for bit.
        sql = _probe_queries(SELECTIVITIES[0])[0]
        rp = plain.run_query(sql, "sos", run_config=RunConfig(zone_maps=False))
        rf = full.run_query(sql, "sos", run_config=RunConfig(zone_maps=False))
        assert rp.rows == rf.rows
        assert rp.storage_meter == rf.storage_meter
        assert rp.breakdown.total_ns == rf.breakdown.total_ns, (
            "observable-event taps perturbed simulated time"
        )

        if OBSV_OUT:
            out = Path(OBSV_OUT)
            out.mkdir(parents=True, exist_ok=True)
            write_obsv_jsonl(
                str(out / "leakage-selectivity.obsv.jsonl"), all_traces
            )

        return {"rows": rows, "pairs": pairs, "divergences": divergences}

    outcome = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            [
                "selectivity",
                "full ms",
                "skip ms",
                "full MI bits",
                "skip MI bits",
                "divergence",
                "patterns",
            ],
            outcome["rows"],
            title=(
                "Skip-scan leakage — lineitem window probes "
                f"(sos, SF {BENCH_SF}, {PROBES} constants/cell)"
            ),
        )
    )

    # Leakage is monotone in selectivity: wider windows overlap more, so
    # the page-set divergence strictly shrinks (and stays nonzero).
    divergence = [outcome["divergences"][s] for s in SELECTIVITIES]
    assert all(d > 0.0 for d in divergence)
    assert divergence == sorted(divergence, reverse=True) and len(set(divergence)) == len(
        divergence
    ), f"divergence must fall strictly as selectivity grows, got {divergence}"

"""Concurrent client sessions: scheduler makespan, isolation, determinism.

``Deployment.run_concurrent`` serves a batch of client sessions and
overlaps them across storage workers with deterministic sim-clock
arbitration.  This benchmark measures the multi-tenant win (makespan vs
the serial sum), checks that every session stayed isolated (distinct
monitor-issued session keys, intact audit chain), and that the numbers
are bit-reproducible across identically-seeded deployments.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.tpch import ALL_QUERIES

#: Storage-heavy single-table queries that auto-partition (no manual split).
#: Four sessions (two distinct durations) so two workers already overlap —
#: the list stays the same in smoke mode, where savings come from the SF.
QUERY_NUMBERS = (6, 14, 6, 14)
WORKER_COUNTS = (1, 2, 4)
CACHE_PAGES = 4096


def _run_batch(workers: int):
    deployment = build_deployment(BENCH_SF)
    deployment.enable_page_cache(CACHE_PAGES)
    queries = [ALL_QUERIES[n].sql for n in QUERY_NUMBERS]
    return deployment, deployment.run_concurrent(queries, workers=workers)


def test_concurrent_clients(benchmark):
    def experiment():
        rows = []
        results = {}
        for workers in WORKER_COUNTS:
            deployment, outcome = _run_batch(workers)
            results[workers] = (deployment, outcome)
            rows.append(
                [
                    workers,
                    len(outcome.sessions),
                    outcome.serial_ms,
                    outcome.makespan_ms,
                    outcome.speedup,
                    outcome.throughput_qps,
                ]
            )
        # Determinism: an identically-seeded rebuild reproduces the widest
        # schedule bit-for-bit.
        _, rerun = _run_batch(WORKER_COUNTS[-1])
        return rows, results, rerun

    rows, results, rerun = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["workers", "sessions", "serial ms", "makespan ms", "speedup", "qps"],
            rows,
            title=(
                f"Concurrent sessions — Q{list(QUERY_NUMBERS)} (scs, SF {BENCH_SF})"
            ),
        )
    )

    one_worker = results[1][1]
    widest = results[WORKER_COUNTS[-1]][1]
    # One worker = pure serialization; more workers must shrink the makespan.
    assert abs(one_worker.makespan_ms - one_worker.serial_ms) < 1e-6
    assert widest.makespan_ms < one_worker.makespan_ms
    assert widest.speedup > 1.3, f"speedup {widest.speedup:.2f}x too small"

    # Per-session isolation: every scs session got its own monitor session
    # and its own HKDF key, and the operations audit chain survived intact.
    for deployment, outcome in results.values():
        ids = [s.session_id for s in outcome.sessions]
        digests = [s.key_digest for s in outcome.sessions]
        assert len(set(ids)) == len(ids), "session ids reused"
        assert len(set(digests)) == len(digests), "session keys reused"
        operations = deployment.monitor.audit_log("operations")
        operations.verify_chain()
        closed = [e for e in operations.entries if e.action == "finish_session"]
        assert len(closed) == len(outcome.sessions), "missing session-close audits"

    # Determinism: same seed, same workload, same makespan to the bit.
    assert rerun.makespan_ms == widest.makespan_ms
    assert [s.worker for s in rerun.sessions] == [s.worker for s in widest.sessions]

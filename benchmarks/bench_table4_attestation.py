"""Table 4: host and storage-system attestation latency breakdown.

Paper: host CAS response 140 ms; storage attestation = 453 ms TEE-side
quote generation + 54 ms REE measurement + 42 ms interconnect = 689 ms
total (dominated by the OP-TEE secure-world quote path).
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import format_table
from repro.core import Deployment
from repro.sim import CAT_ATTESTATION


def test_table4_attestation_breakdown(benchmark):
    def experiment():
        deployment = Deployment(scale_factor=BENCH_SF / 2, workload="none")
        cm = deployment.cost_model
        clock = deployment.clock

        before = clock.breakdown.copy()
        challenge = deployment.rng.bytes(16)
        host_quote = deployment.host_enclave.generate_quote(challenge)
        deployment.attestation.attest_host(host_quote, location="eu", fw_version="1.0")
        host_ms = clock.breakdown.minus(before).ms(CAT_ATTESTATION)

        before = clock.breakdown.copy()
        challenge = deployment.rng.bytes(16)
        quote, chain = deployment.storage_engine.attest(challenge)
        deployment.attestation.attest_storage(quote, chain, challenge)
        storage_ms = clock.breakdown.minus(before).ms(CAT_ATTESTATION)

        return {
            "host_cas_ms": host_ms,
            "storage_tee_ms": cm.storage_tee_quote_ns / 1e6,
            "storage_ree_ms": cm.storage_ree_measure_ns / 1e6,
            "interconnect_ms": cm.attestation_interconnect_ns / 1e6,
            "storage_total_ms": storage_ms,
        }

    data = run_once(benchmark, experiment)
    rows = [
        ["Host", "CAS response", data["host_cas_ms"]],
        ["Storage server", "TEE (quote generation)", data["storage_tee_ms"]],
        ["", "REE (NW measurement)", data["storage_ree_ms"]],
        ["", "Interconnect", data["interconnect_ms"]],
        ["", "Total", data["storage_total_ms"]],
    ]
    print()
    print(
        format_table(
            ["component", "breakdown", "time ms"],
            rows,
            title="Table 4 — attestation latency breakdown (simulated ms)",
        )
    )

    # Anchored to the paper's measurements.
    assert abs(data["host_cas_ms"] - 140.0) < 1.0
    assert abs(data["storage_total_ms"] - 549.0) < 1.0  # 453 + 54 + 42
    assert data["storage_tee_ms"] > data["storage_ree_ms"] > 0
    assert data["storage_total_ms"] > data["host_cas_ms"], (
        "TrustZone attestation must cost more than the SGX CAS path"
    )

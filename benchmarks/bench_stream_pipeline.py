"""Streaming ship pipeline: overlap speedup, bounded memory, compression.

A shipping-heavy scan (every ``lineitem`` column, weakly selective
predicate) on a memory-constrained storage server, with the decrypted-page
cache warm so the secure-paging cost does not mask the ship path.  The
serial baseline materializes the whole result before shipping — its
working set spills at the storage memory limit — while the streamed run
ships bounded RecordBatches and overlaps (scan | channel crypto | host
ingest), so it must be ≥1.5× faster in simulated time.  The serial escape
hatch (``pipeline=False``) is asserted simulated-nanosecond-identical
across runs, and per-batch zlib compression is shown trading simulated
CPU for wire bytes (the Figure 7 data-movement knob).
"""

from __future__ import annotations

import dataclasses

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.core import RunConfig

#: Storage-side memory limit (bytes): far below the materialized result,
#: comfortably above one 64 KiB batch.
MEMORY_LIMIT = 128 * 1024
SPEEDUP_FLOOR = 1.5


def _ship_sql(deployment) -> str:
    columns = [
        name
        for name, _ in deployment.storage_engine.db.store.catalog.table(
            "lineitem"
        ).columns
    ]
    return f"SELECT {', '.join(columns)} FROM lineitem WHERE l_quantity > 2"


def test_stream_pipeline_speedup(benchmark):
    deployment = build_deployment(BENCH_SF, scale_epc=False)
    deployment.enable_page_cache(16384)
    sql = _ship_sql(deployment)
    deployment.run_query(sql, "scs")  # warm the decrypted-page cache

    def experiment():
        serial = deployment.run_query(sql, "scs", storage_memory_bytes=MEMORY_LIMIT)
        pipe = deployment.run_query(
            sql, "scs", storage_memory_bytes=MEMORY_LIMIT, run_config=RunConfig()
        )
        comp = deployment.run_query(
            sql, "scs", storage_memory_bytes=MEMORY_LIMIT,
            run_config=RunConfig(compress=True),
        )
        serial_again = deployment.run_query(
            sql, "scs", storage_memory_bytes=MEMORY_LIMIT,
            run_config=RunConfig(pipeline=False),
        )
        return serial, pipe, comp, serial_again

    serial, pipe, comp, serial_again = run_once(benchmark, experiment)

    # Correctness: every path ships the same table.
    assert sorted(serial.rows) == sorted(pipe.rows) == sorted(comp.rows)

    # The pipeline=False escape hatch is the calibrated baseline: same
    # rows, same meters, same simulated nanoseconds, run after run — the
    # streamed runs in between leave no residue.
    assert serial_again.rows == serial.rows
    assert serial_again.breakdown.total_ns == serial.breakdown.total_ns
    assert serial_again.breakdown.by_category == serial.breakdown.by_category
    for field in dataclasses.fields(serial.storage_meter):
        assert getattr(serial_again.storage_meter, field.name) == getattr(
            serial.storage_meter, field.name
        ), field.name

    speedup = serial.total_ms / pipe.total_ms
    peak_serial = serial.storage_meter.peak_memory_bytes
    peak_pipe = pipe.storage_meter.peak_memory_bytes

    print()
    print(
        format_table(
            ["path", "sim ms", "peak KiB", "wire bytes", "batches"],
            [
                ["serial", round(serial.total_ms, 3), peak_serial >> 10,
                 serial.bytes_shipped, serial.batches_shipped],
                ["pipelined", round(pipe.total_ms, 3), peak_pipe >> 10,
                 pipe.bytes_shipped, pipe.batches_shipped],
                ["pipelined+zlib", round(comp.total_ms, 3),
                 comp.storage_meter.peak_memory_bytes >> 10,
                 comp.bytes_shipped, comp.batches_shipped],
            ],
            title=(
                f"Streaming ship pipeline — lineitem ship, "
                f"{MEMORY_LIMIT >> 10} KiB storage memory ({speedup:.2f}x)"
            ),
        )
    )

    # The headline claim: overlapped, bounded shipping wins ≥1.5x.
    assert speedup >= SPEEDUP_FLOOR, f"pipeline speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x"

    # Bounded working set: one batch (plus encode slack), not the result.
    assert peak_pipe < peak_serial / 4
    assert peak_pipe <= 2 * RunConfig().batch_bytes

    # Compression is a data-movement win (Figure 7), not a sim-time win.
    assert comp.channel_bytes_saved > 0
    assert comp.bytes_shipped < pipe.bytes_shipped

    return {
        "speedup": speedup,
        "serial_ms": serial.total_ms,
        "pipelined_ms": pipe.total_ms,
        "compressed_ms": comp.total_ms,
        "peak_serial_bytes": peak_serial,
        "peak_pipelined_bytes": peak_pipe,
        "wire_bytes_serial": serial.bytes_shipped,
        "wire_bytes_compressed": comp.bytes_shipped,
        "batches": pipe.batches_shipped,
    }

"""Authenticated zone-map skip-scans: selective filters skip the security tax.

A selective filter over lineitem (``l_orderkey <= K`` — lineitem is
generated in orderkey order, so matching rows cluster on few pages)
lets the zone maps prove almost every page empty of matches *before*
reading it; each skipped page avoids the whole read → MAC → Merkle →
decrypt → decode pipeline.

Acceptance (ISSUE 5): at 1% selectivity the zone-map run must be >= 3x
faster in simulated time than the full scan with identical results, and
``RunConfig(zone_maps=False)`` must stay byte-identical to a deployment
that never heard of zone maps.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.core import RunConfig
from repro.tpch import Cardinalities

#: Fractions of the orderkey domain the filter admits (page-clustered).
SELECTIVITIES = (0.01, 0.10, 0.50)


def _query(selectivity: float) -> str:
    orders = Cardinalities.for_scale(BENCH_SF).orders
    cutoff = max(1, round(orders * selectivity))
    return (
        "SELECT count(*), sum(l_extendedprice) FROM lineitem "
        f"WHERE l_orderkey <= {cutoff}"
    )


def test_skip_scan(benchmark):
    def experiment():
        # Three identically-seeded deployments: the untouched baseline,
        # one running with the explicit escape hatch (must match the
        # baseline bit for bit), and one consulting the zone maps.
        baseline = build_deployment(BENCH_SF)
        hatch = build_deployment(BENCH_SF)
        pruned = build_deployment(BENCH_SF)

        rows = []
        speedups = {}
        baseline_ns, hatch_ns = [], []
        for selectivity in SELECTIVITIES:
            sql = _query(selectivity)
            rb = baseline.run_query(sql, "sos")
            rh = hatch.run_query(
                sql, "sos", run_config=RunConfig(zone_maps=False)
            )
            rp = pruned.run_query(
                sql, "sos", run_config=RunConfig(zone_maps=True)
            )
            assert rp.rows == rb.rows, f"{selectivity:.0%}: pruned rows diverged"
            assert rh.rows == rb.rows, f"{selectivity:.0%}: hatch rows diverged"
            assert rh.storage_meter == rb.storage_meter, (
                f"{selectivity:.0%}: zone_maps=False perturbed the meters"
            )
            baseline_ns.append(rb.breakdown.total_ns)
            hatch_ns.append(rh.breakdown.total_ns)
            scanned = rp.storage_meter.extra.get("pages_scanned", 0)
            skipped = rp.storage_meter.extra.get("pages_skipped", 0)
            speedups[selectivity] = rb.breakdown.total_ns / rp.breakdown.total_ns
            rows.append(
                [
                    f"{selectivity:.0%}",
                    rb.breakdown.total_ms,
                    rp.breakdown.total_ms,
                    speedups[selectivity],
                    scanned,
                    skipped,
                ]
            )
        return {
            "rows": rows,
            "speedups": speedups,
            "baseline_ns": baseline_ns,
            "hatch_ns": hatch_ns,
        }

    outcome = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["selectivity", "full ms", "pruned ms", "speedup", "scanned", "skipped"],
            outcome["rows"],
            title=f"Zone-map skip-scan — lineitem point scan (sos, SF {BENCH_SF})",
        )
    )

    # Acceptance: >= 3x simulated-time speedup at 1% selectivity.
    best = outcome["speedups"][0.01]
    assert best >= 3.0, f"1% skip-scan speedup {best:.2f}x below the 3x bar"
    # Pruning can only help less as the filter admits more pages.
    ordered = [outcome["speedups"][s] for s in SELECTIVITIES]
    assert ordered == sorted(ordered, reverse=True), (
        "speedup must shrink as selectivity grows"
    )
    # Byte-identical: the explicit escape hatch reproduces the untouched
    # baseline's simulated timings exactly, not approximately.
    assert outcome["hatch_ns"] == outcome["baseline_ns"], (
        "zone_maps=False runs differ from the untouched baseline"
    )

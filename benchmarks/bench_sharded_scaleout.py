"""Sharded scale-out: strong scaling, the adaptive offload optimizer,
single-shard byte-identity, and per-shard leakage groups.

Four arms over :class:`repro.shard.ShardedDeployment`:

* **strong scaling** — the same TPC-H instance partitioned over 1..8
  storage nodes, driven by a concurrent-client workload of
  shard-decomposable aggregates (``sos``: per-shard partials in
  parallel, host-side final merge).  Throughput must reach at least
  ``0.8 × N`` of the single-node rate at 8 shards — per-shard partials
  are embarrassingly parallel, so anything below that means the merge
  or session path grew a serial bottleneck.
* **optimizer** — every evaluated TPC-H query runs under
  ``RunConfig(strategy="auto")`` and under every manual configuration
  of its security class.  The cost-based plan must match or beat the
  best manual choice on *every* query, in both the secure (hos/scs/sos)
  and plain (hons/vcs) classes; ``optimizer_win_pct`` lands in the
  trend payload so an eroding win rate shows up in review.
* **byte-identity** — ``shards=1`` must be indistinguishable from the
  seed deployment: same rows, same simulated nanoseconds.
* **leakage** — K probes differing only in the predicate constant run
  under the ``full`` oblivious tier at 2 and 4 shards.  Each per-shard
  group (``scs|full|shardN``) must be leak-free with exactly one
  fingerprint; the traces are dumped as an obsv JSONL artifact so the
  CI leakage gate re-asserts this offline (``--require '*|shard*'``).
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import BENCH_SF, run_once

from repro.bench import format_table
from repro.core import Deployment, RunConfig
from repro.core.manual_partitions import MANUAL_PARTITIONS
from repro.errors import PartitionError
from repro.shard import PLAIN_CLASS, SECURE_CLASS, ShardedDeployment
from repro.telemetry import leakage_report, write_obsv_jsonl
from repro.tpch import ALL_QUERIES, EVALUATED_NUMBERS

SHARD_COUNTS = (1, 2, 4, 8)

#: The acceptance floor: throughput at N shards / (N x single-node).
MIN_EFFICIENCY = 0.8

#: Serial ship path for apples-to-apples manual-vs-auto comparisons.
SERIAL = RunConfig(pipeline=False)
AUTO = RunConfig(pipeline=False, strategy="auto")

#: Probe constants per leakage cell.
PROBES = 8

OBSV_OUT = os.environ.get("REPRO_BENCH_OUT", "")

#: Shard-decomposable aggregates (distinct constants so the concurrent
#: sessions are not byte-copies of each other).
_AGG = (
    "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), "
    "SUM(l_extendedprice), MIN(l_shipdate), MAX(l_shipdate) FROM lineitem "
    "WHERE l_quantity > {q} GROUP BY l_returnflag, l_linestatus"
)
SCALING_QUERIES = [_AGG.format(q=q) for q in (5, 10, 15, 20)]


def _build(shards: int) -> ShardedDeployment:
    deployment = ShardedDeployment(
        shards=shards, scale_factor=BENCH_SF, seed=2022
    )
    deployment.attest_all()
    return deployment


def _scaling_arm():
    """Concurrent decomposable aggregates over 1..8 shards."""
    rows, points = [], []
    base_qps = None
    for shards in SHARD_COUNTS:
        deployment = _build(shards)
        outcome = deployment.run_concurrent(
            [(sql, "sos") for sql in SCALING_QUERIES], workers=2
        )
        qps = outcome.throughput_qps
        if base_qps is None:
            base_qps = qps
        efficiency = qps / (shards * base_qps)
        rows.append([shards, qps, outcome.makespan_ms, efficiency])
        points.append(
            {
                "shards": shards,
                "throughput_qps": qps,
                "makespan_ms": outcome.makespan_ms,
                "scaling_efficiency": efficiency,
            }
        )
    top = points[-1]
    assert top["shards"] == max(SHARD_COUNTS)
    assert top["scaling_efficiency"] >= MIN_EFFICIENCY, (
        f"{top['shards']} shards reached only "
        f"{top['scaling_efficiency']:.2f}x/shard of the single-node rate "
        f"(floor {MIN_EFFICIENCY})"
    )
    return rows, points


def _optimizer_arm(deployment):
    """strategy="auto" vs every manual config, both security classes."""
    rows, wins, total = [], 0, 0
    for requested, manual_configs in (("scs", SECURE_CLASS), ("vcs", PLAIN_CLASS)):
        for number in EVALUATED_NUMBERS:
            sql = ALL_QUERIES[number].sql
            manual_partition = MANUAL_PARTITIONS.get(number)
            timings = {}
            for config in manual_configs:
                kwargs = {"run_config": SERIAL}
                if config in ("scs", "vcs") and manual_partition is not None:
                    kwargs["manual_partition"] = manual_partition
                try:
                    timings[config] = deployment.run_query(
                        sql, config, **kwargs
                    ).total_ms
                except PartitionError:
                    continue  # sos: not shard-decomposable
            auto = deployment.run_query(
                sql, requested, run_config=AUTO, manual_partition=manual_partition
            )
            best_config = min(timings, key=timings.get)
            best_ms = timings[best_config]
            total += 1
            won = auto.total_ms <= best_ms * 1.0001
            wins += won
            assert won, (
                f"Q{number} ({requested} class): auto chose {auto.config} at "
                f"{auto.total_ms:.3f} ms but manual {best_config} runs in "
                f"{best_ms:.3f} ms"
            )
            assert auto.host_meter.get("optimizer_plans_considered") >= 2
            rows.append(
                [
                    f"Q{number}",
                    requested,
                    auto.config,
                    auto.total_ms,
                    best_config,
                    best_ms,
                ]
            )
    return rows, 100.0 * wins / total


def _identity_arm():
    """shards=1 must be byte-identical to the seed deployment."""
    results = []
    for cls in (Deployment, ShardedDeployment):
        deployment = cls(scale_factor=BENCH_SF, seed=2022)
        deployment.attest_all()
        results.append(deployment.run_query(SCALING_QUERIES[0], "scs"))
    seed, single = results
    assert single.rows == seed.rows
    assert single.breakdown.total_ns == seed.breakdown.total_ns, (
        "shards=1 drifted from the seed deployment's simulated time"
    )
    return seed.breakdown.total_ms


def _leakage_arm():
    """Per-shard full-tier probes: fixed trace, one fingerprint."""
    all_traces, rows = [], []
    for shards in (2, 4):
        deployment = _build(shards)
        recorder = deployment.enable_observability()
        group = f"scs|full|shard{shards}"
        traces = []
        for i in range(PROBES):
            lo = 1 + i * 200
            sql = (
                "SELECT l_suppkey, COUNT(*), SUM(l_extendedprice) "
                f"FROM lineitem WHERE l_orderkey >= {lo} "
                f"AND l_orderkey <= {lo + 400} GROUP BY l_suppkey"
            )
            deployment.run_query(
                sql, "scs", run_config=RunConfig(pipeline=False, oblivious="full")
            )
            trace = recorder.last_trace()
            trace.attributes["group"] = group
            trace.attributes["probe"] = f"c{i}"
            traces.append(trace)
        report = leakage_report(traces, group=group)
        assert report.leak_free and report.mi_bits == 0.0, (
            f"{group}: the full tier must stay leak-free across shards"
        )
        assert report.distinct_fingerprints == 1, (
            f"{group}: {report.distinct_fingerprints} fingerprints"
        )
        all_traces.extend(traces)
        rows.append([group, report.mi_bits, report.distinct_fingerprints])
    if OBSV_OUT:
        out = Path(OBSV_OUT)
        out.mkdir(parents=True, exist_ok=True)
        write_obsv_jsonl(str(out / "sharded-scaleout.obsv.jsonl"), all_traces)
    return rows


def test_sharded_scaleout(benchmark):
    def experiment():
        scaling_rows, scaling_points = _scaling_arm()
        optimizer_rows, win_pct = _optimizer_arm(_build(4))
        identity_ms = _identity_arm()
        leakage_rows = _leakage_arm()
        return {
            "scaling": scaling_points,
            "scaling_rows": scaling_rows,
            "scaling_efficiency": scaling_points[-1]["scaling_efficiency"],
            "optimizer_rows": optimizer_rows,
            "optimizer_win_pct": win_pct,
            "identity_ms": identity_ms,
            "leakage_rows": leakage_rows,
        }

    outcome = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["shards", "qps", "makespan ms", "efficiency"],
            outcome["scaling_rows"],
            title=(
                "Strong scaling — concurrent decomposable aggregates "
                f"(sos, SF {BENCH_SF}, {len(SCALING_QUERIES)} clients)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["query", "class", "auto chose", "auto ms", "best manual", "best ms"],
            outcome["optimizer_rows"],
            title=(
                "Adaptive offload — auto vs best manual "
                f"(4 shards, win rate {outcome['optimizer_win_pct']:.0f}%)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["group", "MI bits", "fingerprints"],
            outcome["leakage_rows"],
            title=f"Per-shard leakage groups ({PROBES} constants/cell)",
        )
    )
    assert outcome["optimizer_win_pct"] == 100.0

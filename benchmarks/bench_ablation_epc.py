"""Ablation: EPC capacity sweep for the host-only secure configuration.

The paper pins its host-only secure (hos) degradation on SGX's 96 MiB
EPC (§6.3).  This bench re-costs a recorded hos run of Q1 under a sweep
of EPC capacities, exposing the cliff the paper's Figure 9a samples at
three points: paging cost falls slowly while the database still streams
through the enclave, and vanishes only once the EPC holds the entire
working set (Merkle tree + every streamed page) — for the paper's SF-3
setup that would require a multi-gigabyte EPC, which is precisely why
hos cannot be fixed by tuning and the CSA split wins.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table
from repro.tpch import Q1

# Sweep as fractions of the working set's paper-equivalent (96 MiB).
FRACTIONS = (0.25, 0.5, 1.0, 2.0, 8.0, 32.0, 128.0)


def test_ablation_epc_sweep(benchmark, deployment):
    def experiment():
        base = deployment.cost_model
        result = deployment.run_query(Q1.sql, "hos")
        meter = result.host_meter
        rows = []
        for fraction in FRACTIONS:
            cm = base.scaled(epc_limit_bytes=max(4096, int(base.epc_limit_bytes * fraction)))
            breakdown = cm.phase_breakdown(
                meter, platform="x86", in_enclave=True, remote_io=True
            )
            rows.append(
                [
                    f"{fraction:.2f}x",
                    cm.epc_limit_bytes / 1024,
                    breakdown.ms("epc_paging"),
                    breakdown.total_ns / 1e6,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["EPC (rel.)", "EPC KiB (scaled)", "paging ms", "hos total ms"],
            rows,
            title="Ablation — hos Q1 vs EPC capacity",
        )
    )
    paging = [row[2] for row in rows]
    totals = [row[3] for row in rows]
    assert paging == sorted(paging, reverse=True), "paging must shrink with EPC"
    assert totals == sorted(totals, reverse=True), "total must improve with EPC"
    assert paging[-1] == 0.0, "a big-enough EPC must eliminate paging"
    assert paging[0] > 0.0, "a small EPC must page"

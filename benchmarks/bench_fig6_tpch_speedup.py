"""Figure 6: TPC-H speedup from computational storage.

Paper: execution-time speedup of split execution over host-only, without
security (hons → vcs) and with security (hos → scs), for 16 TPC-H
queries.  Headline claims reproduced in shape:

* most queries speed up with CS; a handful do not benefit;
* the *secure* speedup exceeds the non-secure one (enclave transitions
  and EPC paging penalize the host-only secure baseline);
* IronSafe (scs) beats the host-only secure system (hos) on average
  (paper: 2.3x).

The vectorized arm (ISSUE 9) reruns the split configurations under the
morsel executor: the per-query scs row/vec ratio shows how much of the
remaining scs time is interpreted CPU work rather than the security tax.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, geomean


def test_fig6_tpch_speedup(benchmark, tpch_suite, tpch_suite_vectorized):
    def experiment():
        vec_by_number = {q.number: q for q in tpch_suite_vectorized}
        rows = []
        for q in tpch_suite:
            vec = vec_by_number[q.number]
            assert sorted(vec.runs["scs"].rows) == sorted(q.runs["scs"].rows), (
                f"Q{q.number}: vectorized scs rows diverged"
            )
            rows.append(
                [
                    f"Q{q.number}",
                    q.ms("hons"),
                    q.ms("vcs"),
                    q.speedup("hons", "vcs"),
                    q.ms("hos"),
                    q.ms("scs"),
                    q.speedup("hos", "scs"),
                    vec.ms("scs"),
                    q.ms("scs") / vec.ms("scs"),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "hons ms", "vcs ms", "non-sec x", "hos ms", "scs ms", "sec x",
             "scs+vec ms", "vec x"],
            rows,
            title="Figure 6 — TPC-H speedup due to CS execution (simulated ms)",
        )
    )
    nonsec = [r[3] for r in rows]
    sec = [r[6] for r in rows]
    vec = [r[8] for r in rows]
    print(f"\nnon-secure speedup: geomean {geomean(nonsec):.2f}x, max {max(nonsec):.2f}x")
    print(f"secure speedup:     geomean {geomean(sec):.2f}x, max {max(sec):.2f}x")
    print(f"vectorized scs:     geomean {geomean(vec):.2f}x, max {max(vec):.2f}x")
    benchmark.extra_info["geomean_nonsecure"] = geomean(nonsec)
    benchmark.extra_info["geomean_secure"] = geomean(sec)
    benchmark.extra_info["vectorized_geomean_speedup"] = geomean(vec)

    # Shape assertions from the paper.
    assert geomean(sec) > 1.0, "IronSafe must beat host-only secure on average"
    assert sum(1 for s in nonsec if s > 1.0) >= len(nonsec) // 2, (
        "most queries should benefit from CS"
    )
    assert geomean(sec) >= 0.8 * geomean(nonsec), (
        "security should not erase the CS advantage"
    )
    # The morsel executor must not slow the suite down on average.
    assert geomean(vec) >= 1.0, "vectorization must help scs on average"

"""Ablation: the host↔storage interconnect (paper §5 networking layer).

The paper's networking layer "can be configured as: NVMe/PCIe, NVMe over
fabrics (NVMe-oF), or a TCP" (their evaluation uses TLS over TCP/IP).
This bench replays the host-only and split configurations under all three
presets: a faster interconnect narrows — but does not erase — the CS
advantage, because the host-only path still moves the whole database and
pays per-page software overheads.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.sim import INTERCONNECT_PROFILES, with_interconnect
from repro.tpch import ALL_QUERIES

QUERY = 3


def test_ablation_interconnect(benchmark):
    def experiment():
        rows = []
        for profile in INTERCONNECT_PROFILES:
            deployment = build_deployment(BENCH_SF, seed=2022)
            deployment.cost_model = with_interconnect(deployment.cost_model, profile)
            hons = deployment.run_query(ALL_QUERIES[QUERY].sql, "hons")
            vcs = deployment.run_query(ALL_QUERIES[QUERY].sql, "vcs")
            rows.append(
                [
                    profile,
                    hons.total_ms,
                    vcs.total_ms,
                    hons.total_ms / vcs.total_ms,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["interconnect", "hons ms", "vcs ms", "CS speedup x"],
            rows,
            title=f"Ablation — interconnect presets (TPC-H Q{QUERY})",
        )
    )
    by_profile = {row[0]: row for row in rows}
    # Faster links help the host-only configuration most...
    assert by_profile["nvme-pcie"][1] < by_profile["nvme-of"][1] < by_profile["tls-tcp"][1]
    # ...narrowing the CS speedup, which nevertheless stays >= 1.
    assert by_profile["nvme-pcie"][3] <= by_profile["tls-tcp"][3]
    assert all(row[3] >= 1.0 for row in rows)

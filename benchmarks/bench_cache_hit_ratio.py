"""In-enclave page cache: repeated-scan speedup and hit ratio.

A repeated-scan workload (the same storage-heavy query over and over —
a dashboard refresh, a parameter sweep) re-reads the same pages; without
a cache every read pays decrypt + MAC + Merkle walk again.  With the
in-enclave cache enabled the steady-state runs serve pages from verified
enclave memory, so the per-page security tax collapses to a probe.

Acceptance (ISSUE 3): the cache-enabled workload must be >= 2x faster in
simulated time than cache-disabled, and cache-disabled runs must remain
byte-identical to a deployment that never touched the cache (enabling and
then disabling the cache leaves no residue).
"""

from __future__ import annotations

from conftest import BENCH_SF, SMOKE, run_once

from repro.bench import build_deployment, format_table
from repro.tpch import ALL_QUERIES

QUERY_NUMBER = 6  # single-table filtering scan over lineitem: pure storage load
REPEATS = 3 if SMOKE else 5
CACHE_PAGES = 4096


def test_cache_hit_ratio(benchmark):
    sql = ALL_QUERIES[QUERY_NUMBER].sql

    def experiment():
        # Three identically-seeded deployments: the untouched baseline,
        # one whose cache is enabled then disabled (must leave no trace),
        # and one with the cache on.
        baseline = build_deployment(BENCH_SF)
        toggled = build_deployment(BENCH_SF)
        toggled.enable_page_cache(CACHE_PAGES)
        toggled.disable_page_cache()
        warm = build_deployment(BENCH_SF)
        warm.enable_page_cache(CACHE_PAGES)

        rows = []
        baseline_ns, toggled_ns, warm_ns = [], [], []
        hits = misses = 0
        reference_rows = None
        for repeat in range(REPEATS):
            rb = baseline.run_query(sql, "sos")
            rt = toggled.run_query(sql, "sos")
            rw = warm.run_query(sql, "sos")
            if reference_rows is None:
                reference_rows = rb.rows
            assert rt.rows == reference_rows, "cache-off results diverged"
            assert rw.rows == reference_rows, "cache-on results diverged"
            baseline_ns.append(rb.breakdown.total_ns)
            toggled_ns.append(rt.breakdown.total_ns)
            warm_ns.append(rw.breakdown.total_ns)
            run_hits = rw.storage_meter.extra.get("page_cache_hits", 0)
            run_misses = rw.storage_meter.extra.get("page_cache_misses", 0)
            hits += run_hits
            misses += run_misses
            rows.append(
                [
                    repeat + 1,
                    rb.breakdown.total_ms,
                    rw.breakdown.total_ms,
                    rb.breakdown.total_ms / rw.breakdown.total_ms,
                    run_hits,
                    run_misses,
                ]
            )
        return {
            "rows": rows,
            "baseline_ns": baseline_ns,
            "toggled_ns": toggled_ns,
            "off_ms": sum(baseline_ns) / 1e6,
            "on_ms": sum(warm_ns) / 1e6,
            "hits": hits,
            "misses": misses,
        }

    outcome = run_once(benchmark, experiment)
    speedup = outcome["off_ms"] / outcome["on_ms"]
    hit_ratio = outcome["hits"] / max(1, outcome["hits"] + outcome["misses"])
    print()
    print(
        format_table(
            ["run", "cache off ms", "cache on ms", "speedup", "hits", "misses"],
            outcome["rows"],
            title=(
                f"Page cache — Q{QUERY_NUMBER} x{REPEATS} (sos, SF {BENCH_SF}): "
                f"{speedup:.2f}x total, {100 * hit_ratio:.1f}% hit ratio"
            ),
        )
    )

    # Acceptance: >= 2x simulated-time speedup on the repeated-scan workload.
    assert speedup >= 2.0, f"cache speedup {speedup:.2f}x below the 2x bar"
    # Steady state (first run is cold) must hit nearly every page.
    assert hit_ratio >= 0.6, f"hit ratio {hit_ratio:.2f} too low for repeated scans"
    # Byte-identical: a cache that was enabled and disabled must reproduce
    # the untouched baseline's simulated timings exactly, not approximately.
    assert outcome["toggled_ns"] == outcome["baseline_ns"], (
        "cache-disabled runs differ from the untouched baseline"
    )

"""Vectorized (batch-at-a-time) execution: scan-heavy queries go columnar.

A Q6-shaped arithmetic scan over lineitem is the paper workload's
CPU-bound extreme: on the split configurations the weak ARM storage CPU
interprets every row of the biggest table.  The morsel executor
(``repro.sql.vector`` + ``repro.sql.vexec``) replaces the per-tuple
interpreter with columnar kernels priced at ``CostModel.vector_value_ns``
per value plus ``vector_batch_ns`` per operator batch.

Acceptance (ISSUE 9): on the CPU-dominated ``vcs`` configuration the
vectorized run must be >= 2x faster in simulated time than the row run
with identical result rows, and ``RunConfig(vectorized=False)`` must stay
byte-identical to a deployment that never heard of morsels.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.core import RunConfig

#: (label, SQL) — scan-heavy shapes where columnar kernels pay off.
QUERIES = (
    (
        "q6_arith_scan",
        "SELECT count(*), sum(l_extendedprice * l_discount) FROM lineitem "
        "WHERE l_discount >= 0.05 AND l_quantity < 24",
    ),
    (
        "group_scan",
        "SELECT l_returnflag, count(*), sum(l_quantity) FROM lineitem "
        "WHERE l_quantity < 40 GROUP BY l_returnflag",
    ),
)


def test_vectorized_exec(benchmark):
    def experiment():
        # Three identically-seeded deployments: the untouched baseline,
        # one running with the explicit escape hatch (must match the
        # baseline bit for bit), and one running the morsel executor.
        baseline = build_deployment(BENCH_SF)
        hatch = build_deployment(BENCH_SF)
        vectorized = build_deployment(BENCH_SF)

        rows = []
        result = {"rows": rows}
        baseline_ns, hatch_ns = [], []
        for label, sql in QUERIES:
            rb = baseline.run_query(sql, "vcs", run_config=RunConfig(pipeline=False))
            rh = hatch.run_query(
                sql, "vcs", run_config=RunConfig(pipeline=False, vectorized=False)
            )
            rv = vectorized.run_query(
                sql, "vcs", run_config=RunConfig(pipeline=False, vectorized=True)
            )
            assert sorted(rv.rows) == sorted(rb.rows), f"{label}: vectorized rows diverged"
            assert rh.rows == rb.rows, f"{label}: hatch rows diverged"
            assert rh.storage_meter == rb.storage_meter, (
                f"{label}: vectorized=False perturbed the meters"
            )
            baseline_ns.append(rb.breakdown.total_ns)
            hatch_ns.append(rh.breakdown.total_ns)
            speedup = rb.breakdown.total_ns / rv.breakdown.total_ns
            meter = rv.storage_meter
            result[f"{label}_speedup"] = speedup
            rows.append(
                [
                    label,
                    rb.breakdown.total_ms,
                    rv.breakdown.total_ms,
                    speedup,
                    meter.extra.get("vector_batches", 0),
                    meter.extra.get("vector_values", 0),
                ]
            )
        result["baseline_ns"] = baseline_ns
        result["hatch_ns"] = hatch_ns
        return result

    outcome = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "row ms", "vec ms", "speedup", "batches", "values"],
            outcome["rows"],
            title=f"Vectorized execution — scan-heavy queries (vcs, SF {BENCH_SF})",
        )
    )
    for label, _ in QUERIES:
        benchmark.extra_info[f"{label}_speedup"] = outcome[f"{label}_speedup"]

    # Acceptance: >= 2x simulated-time speedup on the arithmetic scan.
    best = outcome["q6_arith_scan_speedup"]
    assert best >= 2.0, f"vectorized scan speedup {best:.2f}x below the 2x bar"
    # Byte-identical: the explicit escape hatch reproduces the untouched
    # baseline's simulated timings exactly, not approximately.
    assert outcome["hatch_ns"] == outcome["baseline_ns"], (
        "vectorized=False runs differ from the untouched baseline"
    )

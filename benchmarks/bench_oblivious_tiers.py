"""Oblivious tiers × selectivity × zone maps: the (sim-time, leakage) ladder.

ISSUE 8's oblivious execution tiers buy back the bits that PR 5's
skip-scans (and the split configurations' result shipping) leak, at a
measured simulated-time price.  For each selectivity we run K window
group-by probes that differ **only in the predicate constant** under
every (tier, zone_maps) cell of the ``sos`` configuration:

* ``off`` — the seed behaviour: zone-map pruning leaks log2(K) bits of
  mutual information through the page-read schedule.
* ``padded`` — scans pad the page schedule to the table's full page list
  (dummy reads ride the real read → MAC → Merkle → decrypt pipeline and
  are charged in the cost model), so the device trace is fixed again.
* ``full`` — additionally swaps hash join / group-by for bitonic
  shuffle-based operators, so CPU cost is data-independent too; the
  whole observable trace must be byte-identical across constants.

A second arm runs the ``scs`` configuration under the ``full`` tier: the
serial ship channel is padded to a fixed record schedule derived from
catalog stats, so the *channel* trace (record count and ciphertext
sizes) is constant as well — the tier that finally closes the leak the
skip-scan bench documents.

Every observed trace is dumped as an obsv JSONL artifact so the CI
``leakage-gate`` job can re-assert the zero-leakage arms offline with
``repro-leak gate`` (nonzero MI on a ``*|full`` group fails the build).

Acceptance (ISSUE 8): the full tier reports 0.0 MI bits and exactly one
fingerprint across ≥8 predicate constants at every swept selectivity;
rows match the off tier probe for probe; leakage is monotone down the
ladder while sim time is monotone up.
"""

from __future__ import annotations

import os
from pathlib import Path

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.core import RunConfig
from repro.telemetry import leakage_report, write_obsv_jsonl
from repro.tpch import Cardinalities

#: Oblivious tiers, weakest to strongest (the ladder's rungs).
TIERS = ("off", "padded", "full")

#: Fraction of the orderkey domain each probe window admits.
SELECTIVITIES = (0.10, 0.50, 0.90)

#: Probe constants per cell (K distinct window positions; the acceptance
#: bar is ≥8 so the off tier's leak is a full 3 bits).
PROBES = 8

#: Where the observed traces land for the CI leakage gate.
OBSV_OUT = os.environ.get("REPRO_BENCH_OUT", "")


def _probe_queries(selectivity: float) -> list[str]:
    """K group-by windows over lineitem differing only in the constant.

    The group-by makes the ``full`` tier's bitonic operators do real,
    data-independent work, so the tier's sim-time price is visible in
    the ladder (a bare count would hide it).
    """
    orders = Cardinalities.for_scale(BENCH_SF).orders
    width = max(1, round(orders * selectivity))
    step = (orders - width) / (PROBES - 1)
    queries = []
    for i in range(PROBES):
        lo = 1 + round(i * step)
        hi = lo + width - 1
        queries.append(
            "SELECT l_suppkey, count(*), sum(l_extendedprice) FROM lineitem "
            f"WHERE l_orderkey >= {lo} AND l_orderkey <= {hi} "
            "GROUP BY l_suppkey"
        )
    return queries


def _run_cell(deployment, recorder, mode, selectivity, tier, zone_maps):
    """Run the K probes for one (mode, selectivity, tier, zm) cell."""
    group = f"{mode}|s={selectivity:.0%}|zm={int(zone_maps)}|{tier}"
    runs = []
    for i, sql in enumerate(_probe_queries(selectivity)):
        result = deployment.run_query(
            sql, mode, run_config=RunConfig(zone_maps=zone_maps, oblivious=tier)
        )
        trace = recorder.last_trace()
        # Labels are stamped *after* the run from opaque probe indices:
        # the observable trace itself must never carry the SQL text.
        trace.attributes["group"] = group
        trace.attributes["probe"] = f"c{i}"
        runs.append((result, trace))
    return group, runs


def test_oblivious_tiers(benchmark):
    def experiment():
        deployment = build_deployment(BENCH_SF)
        recorder = deployment.enable_observability()

        rows, pairs, all_traces = [], [], []
        baseline_rows: dict[tuple, list] = {}
        cells: dict[tuple, list] = {}
        for selectivity in SELECTIVITIES:
            for zone_maps in (False, True):
                for tier in TIERS:
                    group, runs = _run_cell(
                        deployment, recorder, "sos", selectivity, tier, zone_maps
                    )
                    cells[(selectivity, zone_maps, tier)] = runs
                    traces = [t for _, t in runs]
                    all_traces.extend(traces)
                    report = leakage_report(traces, group=group)

                    # Tier ladder correctness: every tier returns exactly
                    # the off tier's rows, probe for probe.
                    key = (selectivity, zone_maps)
                    probe_rows = [sorted(r.rows) for r, _ in runs]
                    if tier == "off":
                        baseline_rows[key] = probe_rows
                    else:
                        assert probe_rows == baseline_rows[key], (
                            f"{group}: oblivious tiers must not change results"
                        )

                    if tier == "off" and zone_maps:
                        # The seed leak the ladder exists to close.
                        assert report.mi_bits > 0.0
                    if tier in ("padded", "full"):
                        # Page padding fixes the sos device trace for
                        # both oblivious tiers, zone maps on or off.
                        assert report.leak_free and report.mi_bits == 0.0
                        assert report.distinct_fingerprints == 1, (
                            f"{group}: padded page schedule must be fixed"
                        )

                    sim_ms = sum(r.breakdown.total_ms for r, _ in runs) / PROBES
                    rows.append(
                        [
                            f"{selectivity:.0%}",
                            int(zone_maps),
                            tier,
                            sim_ms,
                            report.mi_bits,
                            report.distinct_fingerprints,
                        ]
                    )
                    pairs.append(
                        {
                            "mode": "sos",
                            "selectivity": selectivity,
                            "zone_maps": zone_maps,
                            "tier": tier,
                            "sim_ms": sim_ms,
                            "mi_bits": report.mi_bits,
                            "fingerprints": report.distinct_fingerprints,
                        }
                    )

        # scs arm: the full tier must fix the *channel* trace too (record
        # count and padded ciphertext sizes from the catalog schedule).
        scs_group, scs_runs = _run_cell(
            deployment, recorder, "scs", SELECTIVITIES[0], "full", True
        )
        scs_traces = [t for _, t in scs_runs]
        all_traces.extend(scs_traces)
        scs_report = leakage_report(scs_traces, group=scs_group)
        assert scs_report.leak_free and scs_report.mi_bits == 0.0
        assert scs_report.distinct_fingerprints == 1, (
            "scs full tier: channel padding must fix the ship trace"
        )
        scs_ms = sum(r.breakdown.total_ms for r, _ in scs_runs) / PROBES
        pairs.append(
            {
                "mode": "scs",
                "selectivity": SELECTIVITIES[0],
                "zone_maps": True,
                "tier": "full",
                "sim_ms": scs_ms,
                "mi_bits": scs_report.mi_bits,
                "fingerprints": scs_report.distinct_fingerprints,
            }
        )

        # Dummy work is really metered: the padded page schedule shows up
        # as dummy reads whenever pruning would have skipped pages, and
        # the scs arm's fixed ship schedule as pad bytes + dummy records.
        padded_reads = sum(
            r.storage_meter.get("oblivious_dummy_reads")
            for key, runs in cells.items()
            if key[2] in ("padded", "full") and key[1]
            for r, _ in runs
        )
        assert padded_reads > 0
        scs_meter = scs_runs[0][0].storage_meter
        assert scs_meter.get("oblivious_pad_bytes") > 0
        assert scs_meter.get("oblivious_dummy_batches") > 0

        if OBSV_OUT:
            out = Path(OBSV_OUT)
            out.mkdir(parents=True, exist_ok=True)
            write_obsv_jsonl(str(out / "oblivious-tiers.obsv.jsonl"), all_traces)

        return {"rows": rows, "pairs": pairs}

    outcome = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["selectivity", "zm", "tier", "sim ms", "MI bits", "fingerprints"],
            outcome["rows"],
            title=(
                "Oblivious tier ladder — lineitem window group-bys "
                f"(sos, SF {BENCH_SF}, {PROBES} constants/cell)"
            ),
        )
    )

    # The ladder's economics, per (selectivity, zm) cell: leakage is
    # monotone non-increasing down the tiers while sim time never drops
    # (padding and bitonic networks only ever add work).
    by_cell: dict[tuple, dict] = {}
    for p in outcome["pairs"]:
        if p["mode"] != "sos":
            continue
        by_cell.setdefault((p["selectivity"], p["zone_maps"]), {})[p["tier"]] = p
    for (selectivity, zone_maps), cell in by_cell.items():
        off, padded, full = cell["off"], cell["padded"], cell["full"]
        assert off["mi_bits"] >= padded["mi_bits"] >= full["mi_bits"] == 0.0
        assert off["sim_ms"] <= padded["sim_ms"] <= full["sim_ms"], (
            f"s={selectivity:.0%} zm={zone_maps}: obliviousness must cost, "
            f"not save, sim time"
        )

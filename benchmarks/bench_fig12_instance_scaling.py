"""Figure 12: storage-engine scalability with 1-16 concurrent instances.

Paper: N engine instances each run a query's offloaded portion over its
own copy of the protected database; cumulative execution time scales
linearly with N for every query except Q13, whose memory-intensive
offloaded join suffers as per-instance memory shrinks.

Model: the storage server's 32 GiB is shared — the OS, page cache and
secure-world reservations take a quarter, and each of the N instances gets
1/N of the remaining 24 GiB (data-ratio-scaled); an instance's runtime is
its portion time under that limit, and the cumulative time is N times it.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, storage_portion_ms
from repro.sim import GIB_BYTES, PAGE_SIZE

PAPER_SF3_BYTES = 3.2e9
INSTANCES = (1, 2, 4, 8, 16)


def test_fig12_instance_scaling(benchmark, deployment, tpch_suite):
    data_bytes = deployment.secure_device.num_pages * PAGE_SIZE
    ratio = data_bytes / PAPER_SF3_BYTES
    total_memory = 24 * GIB_BYTES * ratio

    def experiment():
        rows = []
        for q in tpch_suite:
            base = None
            normalized = []
            for n in INSTANCES:
                limit = max(PAGE_SIZE, int(total_memory / n))
                per_instance = storage_portion_ms(
                    q.runs["scs"], deployment.cost_model, memory_bytes=limit
                )
                cumulative = n * per_instance
                if base is None:
                    base = cumulative
                normalized.append(cumulative / base)
            rows.append([f"Q{q.number}", *normalized])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query"] + [f"{n} inst" for n in INSTANCES],
            rows,
            title="Figure 12 — cumulative offloaded-portion time, normalized to 1 instance",
        )
    )

    by_query = {row[0]: row[1:] for row in rows}
    ideal = list(INSTANCES)
    linear = [
        q for q, s in by_query.items()
        if all(abs(v - n) / n < 0.05 for v, n in zip(s, ideal))
    ]
    print(f"\nlinearly scaling queries: {len(linear)}/{len(by_query)}")
    assert len(linear) >= len(by_query) - 3, "almost all queries must scale linearly"
    # Q13 is the paper's outlier: super-linear cumulative time growth.
    q13 = by_query["Q13"]
    assert q13[-1] > ideal[-1] * 1.08, "Q13 must scale worse than linear"

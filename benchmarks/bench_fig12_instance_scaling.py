"""Figure 12: storage scalability with 1-8 real storage-node instances.

Paper: N engine instances each run a query's offloaded portion over its
own slice of the protected database; per-instance time stays flat as N
grows because the offloaded work is embarrassingly parallel, while
host-bound work becomes the scaling bottleneck.

Earlier revisions *modelled* this by re-costing one node's portion under
shrinking memory.  Now the shard subsystem exists, the figure runs for
real: a :class:`repro.shard.ShardedDeployment` with N storage nodes
holds N times the data (weak scaling — the per-node slice is constant),
each node owns its own TrustZone device, Merkle root and key domain,
and the measured wall time is the simulated cluster makespan.

Acceptance: the shard-decomposable aggregate's weak-scaling efficiency
(single-node time over N-node time at N× data) stays ≥ 0.85 at every
instance count — the per-shard partials ride entirely on the scaled-out
nodes.  The cross-shard join degrades monotonically instead: its
host-side merge grows with the total data and no storage node can help,
which is exactly the offload boundary the paper's figure illustrates.
"""

from __future__ import annotations

from conftest import BENCH_SF, SMOKE, run_once

from repro.bench import format_table
from repro.shard import ShardedDeployment

INSTANCES = (1, 2, 4) if SMOKE else (1, 2, 4, 8)

#: Weak-scaling floor for the decomposable (fully offloaded) aggregate.
MIN_WEAK_EFFICIENCY = 0.85

#: Fully offloadable: per-shard partials, constant-size host merge.
DECOMPOSABLE = (
    "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), "
    "SUM(l_extendedprice) FROM lineitem WHERE l_quantity > 5 "
    "GROUP BY l_returnflag, l_linestatus"
)

#: Cross-shard join: the host-side merge grows with the data.
HOST_BOUND = (
    "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
    "WHERE l_orderkey = o_orderkey AND o_totalprice > 50000 "
    "GROUP BY o_orderpriority"
)


def test_fig12_instance_scaling(benchmark):
    def experiment():
        points = []
        for n in INSTANCES:
            deployment = ShardedDeployment(
                shards=n, scale_factor=BENCH_SF * n, seed=2022
            )
            deployment.attest_all()
            offloaded = deployment.run_query(DECOMPOSABLE, "sos")
            host_bound = deployment.run_query(HOST_BOUND, "scs")
            points.append(
                {
                    "instances": n,
                    "offloaded_ms": offloaded.total_ms,
                    "host_bound_ms": host_bound.total_ms,
                    "fanout": offloaded.host_meter.get("shard_scan_fanout"),
                }
            )
        base = points[0]
        for p in points:
            p["offloaded_efficiency"] = base["offloaded_ms"] / p["offloaded_ms"]
            p["host_bound_efficiency"] = base["host_bound_ms"] / p["host_bound_ms"]
        return points

    points = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["instances", "offloaded ms", "eff", "host-bound ms", "eff"],
            [
                [
                    p["instances"],
                    p["offloaded_ms"],
                    p["offloaded_efficiency"],
                    p["host_bound_ms"],
                    p["host_bound_efficiency"],
                ]
                for p in points
            ],
            title=(
                "Figure 12 — weak scaling over real storage nodes "
                f"(SF {BENCH_SF}/node)"
            ),
        )
    )

    for p in points:
        # Each node really participated: the fan-out covers every shard.
        # (shards=1 takes the byte-identical seed path, which doesn't
        # track shard counters at all.)
        assert p["fanout"] == (p["instances"] if p["instances"] > 1 else 0)
        assert p["offloaded_efficiency"] >= MIN_WEAK_EFFICIENCY, (
            f"{p['instances']} instances: decomposable aggregate kept only "
            f"{p['offloaded_efficiency']:.2f} of the single-node rate"
        )
    # The host-bound join is the contrast: its merge cost grows with the
    # total data, so efficiency strictly erodes as instances are added.
    efficiencies = [p["host_bound_efficiency"] for p in points]
    assert all(a > b for a, b in zip(efficiencies, efficiencies[1:])), (
        f"host-bound join efficiency should erode monotonically: {efficiencies}"
    )
    assert efficiencies[-1] < points[-1]["offloaded_efficiency"]

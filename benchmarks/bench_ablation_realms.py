"""Ablation: ARM v9 Realms vs classic TrustZone (paper §3.3 future work).

The paper trusts the storage server's whole normal-world OS stack because
TrustZone offers no general-purpose isolated execution; it notes that
ARM v9 "would allow us to not trust the OS stack anymore".  This bench
runs IronSafe in both modes and reports the trade:

* TCB: the ~60 MB normal-world OS drops out (5x smaller trusted base);
* performance: realm execution pays a small granule-protection overhead
  on the storage-side portions.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import build_deployment, format_table
from repro.tpch import ALL_QUERIES

QUERIES = (3, 6, 9)


def test_ablation_realms(benchmark):
    def experiment():
        classic = build_deployment(BENCH_SF, seed=2022)
        realms = build_deployment(BENCH_SF, seed=2022, armv9_realms=True)
        rows = []
        for number in QUERIES:
            a = classic.run_query(ALL_QUERIES[number].sql, "scs")
            b = realms.run_query(ALL_QUERIES[number].sql, "scs")
            assert sorted(a.rows) == sorted(b.rows)
            rows.append([f"Q{number}", a.total_ms, b.total_ms, b.total_ms / a.total_ms])
        tcb = {
            "classic": classic.tcb_bytes() / 1024 / 1024,
            "realms": realms.tcb_bytes() / 1024 / 1024,
        }
        return rows, tcb

    rows, tcb = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "TrustZone scs ms", "Realms scs ms", "slowdown x"],
            rows,
            title="Ablation — ARM v9 Realms vs classic TrustZone (scs)",
        )
    )
    print(
        f"\nTCB: classic {tcb['classic']:.0f} MB -> realms {tcb['realms']:.0f} MB "
        f"({tcb['classic'] / tcb['realms']:.1f}x smaller; the normal-world OS "
        "is no longer trusted)"
    )
    for row in rows:
        assert 1.0 <= row[3] <= 1.15, f"{row[0]}: realm overhead out of band"
    assert tcb["realms"] < tcb["classic"] / 3

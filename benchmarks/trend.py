"""Compare two directories of ``BENCH_*.json`` payloads for drift.

CI downloads the previous successful main run's benchmark artifacts into a
baseline directory, runs the current benchmarks, then invokes::

    python benchmarks/trend.py <baseline-dir> <current-dir>

Two families of numeric leaves are tracked path-by-path:

* **sim-time** — keys ending ``_ms``/``_ns``.  A regression above the
  warn threshold (default 20%) prints a GitHub Actions ``::warning::``
  annotation; above the hard threshold (default 50%) it prints an
  ``::error::`` and the script exits nonzero, failing the job — drift
  that large is never a cost-model retune slipping through quietly.
* **leakage** — keys ending ``_bits`` (the mutual-information leaves the
  leakage benchmarks emit).  Any increase prints a ``::warning::``; the
  hard zero-leakage arms are enforced separately by ``repro-leak gate``,
  so here the annotation just makes a widening side channel impossible
  to miss in review.
* **speedup** — keys ending ``_speedup``, ``_efficiency`` or
  ``_win_pct`` (the bigger-is-better ratio leaves: vectorized / figure
  speedups, the sharded scale-out's ``scaling_efficiency``, and the
  offload optimizer's ``optimizer_win_pct``).  A *decrease* beyond the
  warn threshold prints a ``::warning::`` — an eroding speedup, scaling
  curve or optimizer win rate is a perf regression even when no
  absolute time leaf crossed its own threshold.

Deterministic by construction: the payloads carry simulated nanoseconds
and fingerprint-derived bits, so any drift is a real modelling change,
never runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

THRESHOLD = 0.20
HARD_THRESHOLD = 0.50

_TIME_SUFFIXES = ("_ms", "_ns")
_LEAK_SUFFIXES = ("_bits",)
_SPEEDUP_SUFFIXES = ("_speedup", "_efficiency", "_win_pct")


def _leaves(node, path="", key=""):
    """Yield ``(dotted.path, value, kind)`` for tracked numeric leaves."""
    if isinstance(node, dict):
        for name, child in sorted(node.items()):
            child_path = f"{path}.{name}" if path else str(name)
            yield from _leaves(child, child_path, str(name))
    elif isinstance(node, list):
        for i, child in enumerate(node):
            yield from _leaves(child, f"{path}[{i}]", key)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if any(key.endswith(suffix) for suffix in _TIME_SUFFIXES):
            yield path, float(node), "time"
        elif any(key.endswith(suffix) for suffix in _LEAK_SUFFIXES):
            yield path, float(node), "bits"
        elif any(key.endswith(suffix) for suffix in _SPEEDUP_SUFFIXES):
            yield path, float(node), "speedup"


def _load_dir(directory: Path) -> dict[str, dict[str, tuple[float, str]]]:
    """Map bench name -> {leaf path: (value, kind)} per BENCH_*.json."""
    out: dict[str, dict[str, tuple[float, str]]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"trend: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        out[path.stem] = {
            leaf: (value, kind)
            for leaf, value, kind in _leaves(document.get("result", document))
        }
    return out


def compare(
    baseline: Path,
    current: Path,
    threshold: float = THRESHOLD,
    hard_threshold: float = HARD_THRESHOLD,
) -> tuple[int, int]:
    """Print the drift report; return (warnings, hard failures)."""
    old = _load_dir(baseline)
    new = _load_dir(current)
    if not old:
        print(f"trend: no baseline payloads under {baseline}; nothing to compare")
        return 0, 0

    warnings = 0
    hard_failures = 0
    for bench in sorted(new):
        if bench not in old:
            print(f"trend: {bench}: new benchmark, no baseline")
            continue
        compared = 0
        for leaf, (value, kind) in sorted(new[bench].items()):
            entry = old[bench].get(leaf)
            if entry is None:
                continue
            before, _ = entry
            if kind == "time":
                if before <= 0:
                    continue
                compared += 1
                delta = (value - before) / before
                if delta > hard_threshold:
                    hard_failures += 1
                    print(
                        f"::error title=sim-time regression::{bench} {leaf}: "
                        f"{before:g} -> {value:g} (+{delta:.0%}, hard limit "
                        f"{hard_threshold:.0%})"
                    )
                elif delta > threshold:
                    warnings += 1
                    print(
                        f"::warning title=sim-time regression::{bench} {leaf}: "
                        f"{before:g} -> {value:g} (+{delta:.0%}, threshold "
                        f"{threshold:.0%})"
                    )
            elif kind == "speedup":  # bigger is better: warn on erosion
                if before <= 0:
                    continue
                compared += 1
                delta = (before - value) / before
                if delta > threshold:
                    warnings += 1
                    print(
                        f"::warning title=speedup erosion::{bench} {leaf}: "
                        f"{before:g}x -> {value:g}x (-{delta:.0%}, threshold "
                        f"{threshold:.0%})"
                    )
            else:  # leakage bits: any widening is worth a look
                compared += 1
                if value > before:
                    warnings += 1
                    print(
                        f"::warning title=leakage increase::{bench} {leaf}: "
                        f"{before:g} -> {value:g} bits"
                    )
        print(f"trend: {bench}: {compared} sim-time/leakage leaves compared")
    if hard_failures:
        print(
            f"trend: {hard_failures} leaf/leaves regressed more than "
            f"{hard_threshold:.0%} — failing the job"
        )
    elif warnings:
        print(f"trend: {warnings} drift warning(s) above {threshold:.0%}")
    else:
        print("trend: no regressions above threshold")
    return warnings, hard_failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trend.py",
        description="warn on BENCH_*.json sim-time/leakage regressions",
    )
    parser.add_argument("baseline", type=Path, help="directory with previous payloads")
    parser.add_argument("current", type=Path, help="directory with this run's payloads")
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="relative regression that triggers a warning (default 0.20)",
    )
    parser.add_argument(
        "--hard-threshold",
        type=float,
        default=HARD_THRESHOLD,
        help="relative sim-time regression that fails the job (default 0.50)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"trend: baseline directory {args.baseline} missing; skipping")
        return 0
    _, hard_failures = compare(
        args.baseline, args.current, args.threshold, args.hard_threshold
    )
    # Warnings stay advisory (cost models get retuned); a >hard-threshold
    # sim-time jump fails the build.
    return 1 if hard_failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

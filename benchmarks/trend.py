"""Compare two directories of ``BENCH_*.json`` payloads for sim-time drift.

CI downloads the previous successful main run's benchmark artifacts into a
baseline directory, runs the current benchmarks, then invokes::

    python benchmarks/trend.py <baseline-dir> <current-dir>

Every numeric leaf whose key ends in ``_ms`` or ``_ns`` is treated as a
simulated-time measurement and compared path-by-path.  A regression above
the threshold (default 20%) prints a GitHub Actions ``::warning::``
annotation — the step never fails the build, because simulated time moves
for legitimate reasons (cost-model retuning, new phases); the annotation
just makes the drift impossible to miss in review.

Deterministic by construction: the payloads carry simulated nanoseconds,
so any drift is a real modelling change, never runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

THRESHOLD = 0.20

_TIME_SUFFIXES = ("_ms", "_ns")


def _time_leaves(node, path="", key=""):
    """Yield ``(dotted.path, value)`` for numeric leaves under time keys."""
    if isinstance(node, dict):
        for name, child in sorted(node.items()):
            child_path = f"{path}.{name}" if path else str(name)
            yield from _time_leaves(child, child_path, str(name))
    elif isinstance(node, list):
        for i, child in enumerate(node):
            yield from _time_leaves(child, f"{path}[{i}]", key)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if any(key.endswith(suffix) for suffix in _TIME_SUFFIXES):
            yield path, float(node)


def _load_dir(directory: Path) -> dict[str, dict[str, float]]:
    """Map bench name -> {leaf path: value} for every BENCH_*.json found."""
    out: dict[str, dict[str, float]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"trend: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        out[path.stem] = dict(_time_leaves(document.get("result", document)))
    return out


def compare(baseline: Path, current: Path, threshold: float = THRESHOLD) -> int:
    """Print drift report; return the number of regressions over threshold."""
    old = _load_dir(baseline)
    new = _load_dir(current)
    if not old:
        print(f"trend: no baseline payloads under {baseline}; nothing to compare")
        return 0

    regressions = 0
    for bench in sorted(new):
        if bench not in old:
            print(f"trend: {bench}: new benchmark, no baseline")
            continue
        compared = 0
        for leaf, value in sorted(new[bench].items()):
            before = old[bench].get(leaf)
            if before is None or before <= 0:
                continue
            compared += 1
            delta = (value - before) / before
            if delta > threshold:
                regressions += 1
                print(
                    f"::warning title=sim-time regression::{bench} {leaf}: "
                    f"{before:g} -> {value:g} (+{delta:.0%}, threshold "
                    f"{threshold:.0%})"
                )
        print(f"trend: {bench}: {compared} sim-time leaves compared")
    if regressions:
        print(f"trend: {regressions} leaf/leaves regressed more than {threshold:.0%}")
    else:
        print("trend: no sim-time regressions above threshold")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trend.py", description="warn on BENCH_*.json sim-time regressions"
    )
    parser.add_argument("baseline", type=Path, help="directory with previous payloads")
    parser.add_argument("current", type=Path, help="directory with this run's payloads")
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help="relative regression that triggers a warning (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"trend: baseline directory {args.baseline} missing; skipping")
        return 0
    compare(args.baseline, args.current, args.threshold)
    return 0  # advisory only: annotations warn, the build never fails here


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: where the offload benefit comes from.

Decomposes the computational-storage win into its two ingredients by
running the split with degraded partition plans:

* **full**       — pushed filters + column pruning (the shipped plan);
* **no-filter**  — column pruning only (every row ships);
* **no-prune**   — filters only (every column ships);
* **naive**      — whole tables ship (offload degenerates to remote copy).

The paper's §6.2 attributes the speedup to IO reduction; this bench shows
which half of the reduction each mechanism contributes per query.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table
from repro.core.partitioner import ManualPartition, ManualShip, TableScanSpec
from repro.sql.parser import parse
from repro.tpch import ALL_QUERIES

QUERIES = (3, 6, 12)


def _degrade(deployment, select, *, keep_filters: bool, keep_pruning: bool) -> ManualPartition:
    plan = deployment.partitioner.partition(select)
    ships = []
    for scan in plan.scans:
        columns = scan.columns
        if not keep_pruning:
            columns = deployment.storage_engine.db.store.catalog.table(scan.table).column_names
        where = scan.where if keep_filters else None
        spec = TableScanSpec(table=scan.table, columns=list(columns), where=where)
        ships.append(ManualShip(table=scan.table, sql=spec.to_sql()))
    return ManualPartition(ships=ships, host_sql=select.to_sql(), note="ablation")


def test_ablation_offload_ingredients(benchmark, deployment):
    def experiment():
        rows = []
        for number in QUERIES:
            select = parse(ALL_QUERIES[number].sql)
            variants = {
                "full": deployment.run_query(ALL_QUERIES[number].sql, "vcs"),
                "no-filter": deployment.run_query(
                    ALL_QUERIES[number].sql, "vcs",
                    manual_partition=_degrade(deployment, select, keep_filters=False, keep_pruning=True),
                ),
                "no-prune": deployment.run_query(
                    ALL_QUERIES[number].sql, "vcs",
                    manual_partition=_degrade(deployment, select, keep_filters=True, keep_pruning=False),
                ),
                "naive": deployment.run_query(
                    ALL_QUERIES[number].sql, "vcs",
                    manual_partition=_degrade(deployment, select, keep_filters=False, keep_pruning=False),
                ),
            }
            reference = sorted(variants["full"].rows)
            for name, run in variants.items():
                assert sorted(run.rows) == reference, f"Q{number} {name} rows differ"
            rows.append(
                [
                    f"Q{number}",
                    variants["full"].bytes_shipped,
                    variants["no-filter"].bytes_shipped,
                    variants["no-prune"].bytes_shipped,
                    variants["naive"].bytes_shipped,
                    variants["full"].total_ms,
                    variants["naive"].total_ms,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "full B", "no-filter B", "no-prune B", "naive B",
             "full ms", "naive ms"],
            rows,
            title="Ablation — offload ingredients (vcs, bytes shipped + runtime)",
        )
    )
    for row in rows:
        full_bytes, no_filter, no_prune, naive = row[1], row[2], row[3], row[4]
        assert full_bytes <= no_filter <= naive
        assert full_bytes <= no_prune <= naive
        assert row[5] <= row[6], f"{row[0]}: degraded plan cannot be faster"

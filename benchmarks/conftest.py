"""Shared fixtures for the benchmark harness.

One deployment (and one full TPC-H suite run) is shared across every
figure's benchmark — Figures 6, 7, 8, 10, 11 and 12 are different views
of the same 16-query execution, exactly as in the paper.

Scale: ``REPRO_BENCH_SF`` (default 0.002) sets the TPC-H scale factor.
The simulated database stands in for the paper's SF-3 instance; EPC size
and storage memory scale by the data ratio (see repro.bench.harness).

Smoke mode: ``REPRO_BENCH_SMOKE=1`` runs every benchmark at reduced scale
(SF 0.001 unless ``REPRO_BENCH_SF`` is set explicitly) — this is the CI
benchmark job.  Each ``bench_*.py`` module's result payload is written to
``BENCH_<module>.json`` under ``REPRO_BENCH_OUT`` (default: the working
directory) so the workflow can upload them as artifacts; setting
``REPRO_BENCH_OUT`` alone also enables the JSON dump at full scale.

Tracing: set ``REPRO_TRACE_DIR`` to a directory to record every
benchmark query as telemetry spans; on teardown the fixture writes
``bench-traces.jsonl`` (replayable with ``repro-trace``) and
``bench-traces.chrome.json`` (loadable in Perfetto / chrome://tracing)
there.  Tracing never charges the simulated clock, so the recorded
numbers match an untraced run exactly.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.bench import build_deployment, run_tpch_suite

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.001" if SMOKE else "0.002"))
BENCH_OUT = os.environ.get("REPRO_BENCH_OUT", "")
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR", "")

#: Result payload per benchmark module, dumped as BENCH_<module>.json.
_BENCH_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="session")
def deployment():
    deployment = build_deployment(BENCH_SF)
    if not TRACE_DIR:
        yield deployment
        return
    tracer = deployment.enable_tracing()
    yield deployment
    from repro.telemetry import write_chrome_trace, write_jsonl

    out = Path(TRACE_DIR)
    out.mkdir(parents=True, exist_ok=True)
    write_jsonl(tracer.traces, out / "bench-traces.jsonl", metrics=tracer.metrics)
    write_chrome_trace(tracer.traces, out / "bench-traces.chrome.json")


@pytest.fixture(scope="session")
def tpch_suite(deployment):
    """All 16 evaluated queries under hons/hos/vcs/scs (result cache)."""
    return run_tpch_suite(deployment, ("hons", "hos", "vcs", "scs"))


@pytest.fixture(scope="session")
def tpch_suite_vectorized(deployment):
    """The split configurations again, under the morsel executor."""
    from repro.core import RunConfig

    return run_tpch_suite(
        deployment, ("vcs", "scs"), run_config=RunConfig(vectorized=True)
    )


@pytest.fixture(scope="session")
def suite_by_number(tpch_suite):
    return {q.number: q for q in tpch_suite}


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiment's return value is kept, keyed by the calling benchmark
    module, so the smoke job can dump one ``BENCH_<module>.json`` per
    benchmark file.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    caller = sys._getframe(1).f_globals.get("__name__", "")
    if caller.startswith("bench_"):
        _BENCH_RESULTS[caller] = result
    return result


def pytest_sessionfinish(session, exitstatus):
    """Dump per-module benchmark payloads for the CI artifact upload."""
    if not (SMOKE or BENCH_OUT):
        return
    out = Path(BENCH_OUT or ".")
    out.mkdir(parents=True, exist_ok=True)
    for name, payload in sorted(_BENCH_RESULTS.items()):
        document = {
            "bench": name,
            "scale_factor": BENCH_SF,
            "smoke": SMOKE,
            "result": payload,
        }
        path = out / f"BENCH_{name}.json"
        path.write_text(json.dumps(document, indent=2, default=str) + "\n")

"""Shared fixtures for the benchmark harness.

One deployment (and one full TPC-H suite run) is shared across every
figure's benchmark — Figures 6, 7, 8, 10, 11 and 12 are different views
of the same 16-query execution, exactly as in the paper.

Scale: ``REPRO_BENCH_SF`` (default 0.002) sets the TPC-H scale factor.
The simulated database stands in for the paper's SF-3 instance; EPC size
and storage memory scale by the data ratio (see repro.bench.harness).

Tracing: set ``REPRO_TRACE_DIR`` to a directory to record every
benchmark query as telemetry spans; on teardown the fixture writes
``bench-traces.jsonl`` (replayable with ``repro-trace``) and
``bench-traces.chrome.json`` (loadable in Perfetto / chrome://tracing)
there.  Tracing never charges the simulated clock, so the recorded
numbers match an untraced run exactly.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import build_deployment, run_tpch_suite

BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.002"))
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR", "")


@pytest.fixture(scope="session")
def deployment():
    deployment = build_deployment(BENCH_SF)
    if not TRACE_DIR:
        yield deployment
        return
    tracer = deployment.enable_tracing()
    yield deployment
    from repro.telemetry import write_chrome_trace, write_jsonl

    out = Path(TRACE_DIR)
    out.mkdir(parents=True, exist_ok=True)
    write_jsonl(tracer.traces, out / "bench-traces.jsonl", metrics=tracer.metrics)
    write_chrome_trace(tracer.traces, out / "bench-traces.chrome.json")


@pytest.fixture(scope="session")
def tpch_suite(deployment):
    """All 16 evaluated queries under hons/hos/vcs/scs (result cache)."""
    return run_tpch_suite(deployment, ("hons", "hos", "vcs", "scs"))


@pytest.fixture(scope="session")
def suite_by_number(tpch_suite):
    return {q.number: q for q in tpch_suite}


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

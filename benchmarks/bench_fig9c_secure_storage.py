"""Figure 9c: secure-storage overhead breakdown on the storage server.

Paper: with queries running entirely on the storage server (sos), Q2 and
Q9 spend ~70% / ~80% of their time verifying the freshness of database
pages and ~15% decrypting them; Q9 issues vastly more page requests than
Q2 (≈23M vs ≈200K on the authors' testbed), which is why its share is
higher.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table
from repro.tpch import ALL_QUERIES


def test_fig9c_secure_storage_breakdown(benchmark, deployment):
    def experiment():
        rows = []
        for number in (2, 9):
            result = deployment.run_query(ALL_QUERIES[number].sql, "sos")
            total = result.total_ms
            fresh = result.breakdown.ms("freshness")
            dec = result.breakdown.ms("decryption")
            rows.append(
                [
                    f"Q{number}",
                    result.storage_meter.pages_read,
                    total,
                    fresh,
                    100 * fresh / total,
                    dec,
                    100 * dec / total,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "page requests", "total ms", "freshness ms", "fresh %",
             "decrypt ms", "dec %"],
            rows,
            title="Figure 9c — sos secure-storage overheads (Q2 vs Q9)",
        )
    )

    q2, q9 = rows
    assert q9[1] > q2[1], "Q9 must issue more page requests than Q2"
    for row in rows:
        assert 40 <= row[4] <= 90, f"{row[0]}: freshness share should dominate"
        assert row[6] <= 30, f"{row[0]}: decryption share should stay modest"
        assert row[4] > row[6], f"{row[0]}: freshness must outweigh decryption"

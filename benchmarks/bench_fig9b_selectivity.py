"""Figure 9b: Q1 execution time vs filter selectivity (hos / scs / sos).

Paper: selectivity of Q1's single filter predicate varied from 10% to 20%
at scale factor 3; IronSafe (scs) is best at every point — the less the
filter passes, the less the host receives, while the host-only baselines
process every page regardless.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import format_table
from repro.tpch import q1_with_selectivity

#: scs carries a fixed control-path cost (monitor admission + session setup,
#: invisible at the paper's second-scale runtimes) that can tie it with sos
#: at the lowest selectivities.  The allowance is 2% at the default SF 0.002
#: and grows inversely with scale — the fixed cost stays put as the scanned
#: data shrinks.
SOS_TIE_BAND = 1.0 + 0.02 * (0.002 / BENCH_SF)


def test_fig9b_selectivity(benchmark, deployment):
    def experiment():
        rows = []
        for selectivity in (0.10, 0.125, 0.15, 0.175, 0.20):
            query = q1_with_selectivity(selectivity)
            res = {c: deployment.run_query(query.sql, c) for c in ("hos", "scs", "sos")}
            passed = res["scs"].host_meter.rows_scanned
            rows.append(
                [
                    f"{selectivity:.1%}",
                    passed,
                    res["hos"].total_ms,
                    res["scs"].total_ms,
                    res["sos"].total_ms,
                    res["hos"].total_ms / res["scs"].total_ms,
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["selectivity", "rows to host", "hos ms", "scs ms", "sos ms", "hos/scs x"],
            rows,
            title="Figure 9b — Q1 runtime vs filter selectivity (lower is better)",
        )
    )

    for row in rows:
        assert row[3] <= row[2], f"{row[0]}: scs must beat hos"
        assert row[3] <= row[4] * SOS_TIE_BAND, f"{row[0]}: scs must not lose to sos"
    # More selective filters ship fewer rows to the host.
    shipped = [row[1] for row in rows]
    assert shipped == sorted(shipped), "rows shipped must grow with selectivity"

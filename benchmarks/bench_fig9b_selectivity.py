"""Figure 9b: Q1 execution time vs filter selectivity (hos / scs / sos).

Paper: selectivity of Q1's single filter predicate varied from 10% to 20%
at scale factor 3; IronSafe (scs) is best at every point — the less the
filter passes, the less the host receives, while the host-only baselines
process every page regardless.

Zone-map arm: Q1's ship-date filter is uniform per page and cannot be
pruned, so each selectivity point also runs a page-clustered filter of
the *same* selectivity (``l_orderkey <= K`` — lineitem is generated in
orderkey order) with skip-scans on, reporting how many pages the zone
maps scanned vs skipped at that point.
"""

from __future__ import annotations

from conftest import BENCH_SF, run_once

from repro.bench import format_table
from repro.core import RunConfig
from repro.tpch import Cardinalities, q1_with_selectivity

#: scs carries a fixed control-path cost (monitor admission + session setup,
#: invisible at the paper's second-scale runtimes) that can tie it with sos
#: at the lowest selectivities.  The allowance is 2% at the default SF 0.002
#: and grows inversely with scale — the fixed cost stays put as the scanned
#: data shrinks.
SOS_TIE_BAND = 1.0 + 0.02 * (0.002 / BENCH_SF)


def _clustered_filter(selectivity: float) -> str:
    orders = Cardinalities.for_scale(BENCH_SF).orders
    cutoff = max(1, round(orders * selectivity))
    return f"SELECT count(*) FROM lineitem WHERE l_orderkey <= {cutoff}"


def test_fig9b_selectivity(benchmark, deployment):
    def experiment():
        rows = []
        for selectivity in (0.10, 0.125, 0.15, 0.175, 0.20):
            query = q1_with_selectivity(selectivity)
            res = {c: deployment.run_query(query.sql, c) for c in ("hos", "scs", "sos")}
            passed = res["scs"].host_meter.rows_scanned
            zm = deployment.run_query(
                _clustered_filter(selectivity),
                "sos",
                run_config=RunConfig(zone_maps=True),
            )
            rows.append(
                [
                    f"{selectivity:.1%}",
                    passed,
                    res["hos"].total_ms,
                    res["scs"].total_ms,
                    res["sos"].total_ms,
                    res["hos"].total_ms / res["scs"].total_ms,
                    zm.storage_meter.extra.get("pages_scanned", 0),
                    zm.storage_meter.extra.get("pages_skipped", 0),
                ]
            )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            [
                "selectivity",
                "rows to host",
                "hos ms",
                "scs ms",
                "sos ms",
                "hos/scs x",
                "zm scanned",
                "zm skipped",
            ],
            rows,
            title="Figure 9b — Q1 runtime vs filter selectivity (lower is better)",
        )
    )

    for row in rows:
        assert row[3] <= row[2], f"{row[0]}: scs must beat hos"
        assert row[3] <= row[4] * SOS_TIE_BAND, f"{row[0]}: scs must not lose to sos"
        assert row[6] + row[7] > 0, f"{row[0]}: zone maps were not consulted"
    # More selective filters ship fewer rows to the host.
    shipped = [row[1] for row in rows]
    assert shipped == sorted(shipped), "rows shipped must grow with selectivity"
    # The clustered arm reads more pages as the filter admits more keys.
    scanned = [row[6] for row in rows]
    assert scanned == sorted(scanned), "zone-map pages read must grow with selectivity"

"""Ablation: what each layer of the secure storage design costs.

DESIGN.md calls out the secure-storage stack's design choices; this bench
peels them off one at a time for a storage-resident run (sos):

* full IronSafe — encryption + per-page MAC + Merkle path + RPMB anchor;
* no-Merkle — encryption + per-page MAC only (loses anti-displacement
  and rollback protection);
* encryption-only — loses all integrity;
* plain — the vanilla (vcs-equivalent) storage path.

Also compares the two key-management schemes the paper mentions (§4.1):
one key for all units vs one derived key per unit.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table
from repro.sim import Meter
from repro.tpch import ALL_QUERIES


def _variant_ms(deployment, meter: Meter, *, macs: bool, merkle: bool, crypto: bool) -> float:
    """Re-cost an sos run with security layers toggled off."""
    m = meter.copy()
    if not merkle:
        m.merkle_nodes_hashed = 0
        m.rpmb_reads = m.rpmb_writes = 0
    if not macs:
        m.page_macs_verified = 0
    if not crypto:
        m.pages_decrypted = m.pages_encrypted = 0
    return deployment.cost_model.phase_breakdown(
        m, platform="arm", cores=1
    ).total_ns / 1e6


def test_ablation_secure_storage_layers(benchmark, deployment):
    def experiment():
        rows = []
        for number in (2, 6, 9):
            result = deployment.run_query(ALL_QUERIES[number].sql, "sos")
            meter = result.storage_meter
            full = _variant_ms(deployment, meter, macs=True, merkle=True, crypto=True)
            no_merkle = _variant_ms(deployment, meter, macs=True, merkle=False, crypto=True)
            enc_only = _variant_ms(deployment, meter, macs=False, merkle=False, crypto=True)
            plain = _variant_ms(deployment, meter, macs=False, merkle=False, crypto=False)
            rows.append([f"Q{number}", plain, enc_only, no_merkle, full, full / plain])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query", "plain ms", "+encryption", "+page MACs", "+Merkle/RPMB (full)", "full/plain x"],
            rows,
            title="Ablation — secure storage layers (sos, simulated ms)",
        )
    )
    for row in rows:
        plain, enc_only, no_merkle, full = row[1], row[2], row[3], row[4]
        assert plain < enc_only < no_merkle < full, f"{row[0]}: layers must be monotone"
        # The Merkle walk (freshness) must be the single largest increment,
        # matching Figure 8's finding.
        increments = [enc_only - plain, no_merkle - enc_only, full - no_merkle]
        assert increments[2] == max(increments), f"{row[0]}: freshness must dominate"


def test_ablation_key_schemes(benchmark):
    """One key for all units vs one key per unit: same protection flow,
    same simulated cost, small real-time overhead for derivation."""
    from repro.crypto import Rng
    from repro.storage import BlockDevice, InMemoryAnchor, SecurePager

    def experiment():
        results = {}
        for scheme in ("single", "per-page"):
            rng = Rng(f"keys-{scheme}")
            pager = SecurePager(
                BlockDevice(), rng.bytes(32), InMemoryAnchor(), rng.fork("iv"),
                key_scheme=scheme,
            )
            pages = [pager.allocate_page() for _ in range(64)]
            for p in pages:
                pager.write_page(p, bytes([p % 251]) * 1000)
            for p in pages:
                assert pager.read_page(p) == bytes([p % 251]) * 1000
            results[scheme] = pager.meter.pages_decrypted
        return results

    results = run_once(benchmark, experiment)
    print(f"\nkey-scheme ablation: both schemes verified on 64 pages {results}")
    assert results["single"] == results["per-page"] == 64

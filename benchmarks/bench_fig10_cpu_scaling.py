"""Figure 10: hos→scs speedup with 1/2/4/8/16 storage-server CPUs.

Paper: CPUs are hot-plugged on the storage server; relative performance
generally improves with more CPUs, and queries whose offloaded portions
are light (2, 3, 4, 5, 7, 10) already beat hos with a single CPU.

Each offloaded portion runs single-threaded (one engine instance), so
extra CPUs help by running *different* portions concurrently — the sweep
re-costs the recorded portion meters under an LPT schedule, without
re-executing the queries.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, recost_split

CPU_COUNTS = (1, 2, 4, 8, 16)


def test_fig10_cpu_scaling(benchmark, deployment, tpch_suite):
    def experiment():
        rows = []
        for q in tpch_suite:
            hos_ms = q.ms("hos")
            speedups = [
                hos_ms
                / recost_split(
                    q.runs["scs"],
                    deployment.cost_model,
                    cpus=cpus,
                    memory_bytes=deployment.storage_memory_bytes,
                )
                for cpus in CPU_COUNTS
            ]
            rows.append([f"Q{q.number}", *speedups])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query"] + [f"{c} cpu" for c in CPU_COUNTS],
            rows,
            title="Figure 10 — hos/scs speedup vs storage CPUs (higher is better)",
        )
    )

    # Monotone (never hurts) and some queries win at 1 CPU already.
    for row in rows:
        speedups = row[1:]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])), (
            f"{row[0]}: more CPUs must not slow the split down"
        )
    at_one = sum(1 for row in rows if row[1] > 1.0)
    print(f"\nqueries already faster than hos with 1 storage CPU: {at_one}/{len(rows)}")
    assert at_one >= 4, "several light offloads must win with a single CPU"
    improved = sum(1 for row in rows if row[len(CPU_COUNTS)] > row[1])
    assert improved >= len(rows) // 3, "many queries should benefit from more CPUs"

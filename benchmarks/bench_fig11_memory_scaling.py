"""Figure 11: scs speedup vs storage-side memory (128 MiB / 256 MiB / 2 GiB).

Paper: speedups normalized to the 128 MiB configuration.  Offloaded
portions that are not memory-intensive (2, 4, 6, 12, 16, 18) are flat;
most others improve at 256 MiB and then plateau; Q13's offloaded portion
performs a memory-intensive join and keeps improving up to 2 GiB.

Memory limits scale by our-data/paper-data so pressure points land where
the paper's did (the simulated DB stands in for the SF-3 instance).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, recost_split
from repro.sim import MIB, PAGE_SIZE

PAPER_SF3_BYTES = 3.2e9
MEMORY_POINTS_MIB = (128, 256, 2048)


def test_fig11_memory_scaling(benchmark, deployment, tpch_suite):
    data_bytes = deployment.secure_device.num_pages * PAGE_SIZE
    ratio = data_bytes / PAPER_SF3_BYTES

    def experiment():
        rows = []
        for q in tpch_suite:
            base_ms = None
            speedups = []
            for mib in MEMORY_POINTS_MIB:
                limit = max(PAGE_SIZE, int(mib * MIB * ratio))
                ms = recost_split(
                    q.runs["scs"], deployment.cost_model, cpus=16, memory_bytes=limit
                )
                if base_ms is None:
                    base_ms = ms
                speedups.append(base_ms / ms)
            rows.append([f"Q{q.number}", *speedups])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["query"] + [f"{m} MiB" for m in MEMORY_POINTS_MIB],
            rows,
            title="Figure 11 — scs speedup vs storage memory, normalized to 128 MiB",
        )
    )

    by_query = {row[0]: row[1:] for row in rows}
    # Light offloads fit in 128 MiB: flat lines.
    flat = [q for q, s in by_query.items() if abs(s[-1] - 1.0) < 1e-6]
    print(f"\nmemory-insensitive offloads: {', '.join(flat) or '(none)'}")
    assert len(flat) >= 3, "several offloaded portions must fit in 128 MiB"
    # Q13's offloaded join is the memory-hungry one.
    q13 = by_query["Q13"]
    assert q13[-1] > 1.0, "Q13 must benefit from more storage memory"
    assert q13[-1] >= max(s[-1] for q, s in by_query.items() if q != "Q13") - 1e-9, (
        "Q13 should benefit the most from added memory"
    )
    # Nobody slows down with more memory.
    for q, s in by_query.items():
        assert all(b >= a - 1e-9 for a, b in zip(s, s[1:])), f"{q}: non-monotone"

"""Component microbenchmarks (real wall-clock, via pytest-benchmark).

These complement the simulated-time experiment harness with genuine
throughput measurements of the building blocks: page encryption, Merkle
verification, record codecs and SQL execution.  They have no paper
counterpart; they document the reproduction's own performance envelope.
"""

from __future__ import annotations

import pytest

from repro.crypto import AES, Rng, hash_ctr_crypt, hmac_sha512
from repro.sql import memory_database
from repro.storage import BlockDevice, InMemoryAnchor, MerkleTree, SecurePager

_RNG = Rng(99)
_PAGE = _RNG.bytes(3996)
_KEY = _RNG.bytes(32)
_IV = _RNG.bytes(16)


def test_micro_hash_ctr_page(benchmark):
    out = benchmark(hash_ctr_crypt, _KEY, _IV, _PAGE)
    assert hash_ctr_crypt(_KEY, _IV, out) == _PAGE


def test_micro_hmac_sha512_page(benchmark):
    mac = benchmark(hmac_sha512, _KEY, _PAGE)
    assert len(mac) == 64


def test_micro_aes_block(benchmark):
    cipher = AES(_KEY)
    block = _PAGE[:16]
    out = benchmark(cipher.encrypt_block, block)
    assert cipher.decrypt_block(out) == block


def test_micro_merkle_update(benchmark):
    tree = MerkleTree(_KEY, 4096)
    digest = _RNG.bytes(32)

    def update():
        tree.update_leaf(1234, digest)

    benchmark(update)


def test_micro_secure_page_roundtrip(benchmark):
    device = BlockDevice()
    pager = SecurePager(device, _KEY, InMemoryAnchor(), Rng(5))
    pgno = pager.allocate_page()
    pager.write_page(pgno, _PAGE[:1000])

    result = benchmark(pager.read_page, pgno)
    assert result == _PAGE[:1000]


@pytest.fixture(scope="module")
def small_db():
    db = memory_database()
    db.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
    rng = Rng(3)
    rows = [(i, i * 1.5, f"row-{i % 97}") for i in range(5000)]
    db.store.insert_rows("t", rows)
    return db


def test_micro_sql_filter_scan(benchmark, small_db):
    result = benchmark(small_db.execute, "SELECT count(*) FROM t WHERE a % 7 = 0 AND b > 100")
    assert result.rows[0][0] > 0


def test_micro_sql_group_by(benchmark, small_db):
    result = benchmark(small_db.execute, "SELECT c, count(*), sum(b) FROM t GROUP BY c")
    assert len(result.rows) == 97

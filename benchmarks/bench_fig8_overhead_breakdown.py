"""Figure 8: relative cost breakdown of running each query with IronSafe.

Paper: per-query scs time splits into "ndp" (the vanilla-CS cost),
freshness verification, decryption, and "other" (channel encryption +
storage-side service instantiation).  "Most of the overhead comes from
guaranteeing the freshness of pages read from untrusted storage"; "other"
is negligible.

The vectorized arm (ISSUE 9) recomputes the breakdown under the morsel
executor: vectorization shrinks the ndp (CPU) share only, so the
security costs' *absolute* ms stay put while their *relative* share
grows — the freshness-dominates shape must survive.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, geomean, overhead_breakdown


def test_fig8_overhead_breakdown(benchmark, tpch_suite, tpch_suite_vectorized):
    def experiment():
        vec_by_number = {q.number: q for q in tpch_suite_vectorized}
        return {
            "row": [
                overhead_breakdown(q.number, q.runs["scs"], q.runs["vcs"])
                for q in tpch_suite
            ],
            "vec": [
                overhead_breakdown(q.number, q.runs["scs"], q.runs["vcs"])
                for q in (vec_by_number[q.number] for q in tpch_suite)
            ],
        }

    outcome = run_once(benchmark, experiment)
    breakdowns = outcome["row"]
    rows = []
    for b in breakdowns:
        rows.append(
            [
                f"Q{b.number}",
                b.ndp_ms,
                b.freshness_ms,
                b.decryption_ms,
                b.other_ms,
                b.total_ms,
                100 * b.fraction(b.freshness_ms),
                100 * b.fraction(b.decryption_ms),
            ]
        )
    print()
    print(
        format_table(
            ["query", "ndp ms", "freshness ms", "decrypt ms", "other ms",
             "total ms", "fresh %", "dec %"],
            rows,
            title="Figure 8 — IronSafe (scs) cost breakdown per TPC-H query",
        )
    )

    dominant = sum(1 for b in breakdowns if b.freshness_ms > b.decryption_ms)
    print(f"\nfreshness dominates decryption in {dominant}/{len(breakdowns)} queries")
    assert dominant >= 0.9 * len(breakdowns), "freshness must be the main security cost"
    for b in breakdowns:
        assert b.other_ms < 0.25 * b.total_ms, f"Q{b.number}: 'other' should stay small"

    # Vectorized arm: the CPU (ndp) share shrinks, the security tax does
    # not — the paper's freshness-dominates shape must survive morsels.
    vec = outcome["vec"]
    ndp_speedups = [
        row.ndp_ms / v.ndp_ms for row, v in zip(breakdowns, vec) if v.ndp_ms > 0
    ]
    print(f"vectorized ndp speedup: geomean {geomean(ndp_speedups):.2f}x")
    benchmark.extra_info["vectorized_ndp_geomean_speedup"] = geomean(ndp_speedups)
    vec_dominant = sum(1 for b in vec if b.freshness_ms > b.decryption_ms)
    assert vec_dominant >= 0.9 * len(vec), (
        "freshness must stay the main security cost under vectorization"
    )
    for row, v in zip(breakdowns, vec):
        assert v.freshness_ms <= row.freshness_ms * 1.01, (
            f"Q{v.number}: vectorization must not add freshness work"
        )

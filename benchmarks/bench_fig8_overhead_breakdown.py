"""Figure 8: relative cost breakdown of running each query with IronSafe.

Paper: per-query scs time splits into "ndp" (the vanilla-CS cost),
freshness verification, decryption, and "other" (channel encryption +
storage-side service instantiation).  "Most of the overhead comes from
guaranteeing the freshness of pages read from untrusted storage"; "other"
is negligible.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import format_table, overhead_breakdown


def test_fig8_overhead_breakdown(benchmark, tpch_suite):
    def experiment():
        return [
            overhead_breakdown(q.number, q.runs["scs"], q.runs["vcs"])
            for q in tpch_suite
        ]

    breakdowns = run_once(benchmark, experiment)
    rows = []
    for b in breakdowns:
        rows.append(
            [
                f"Q{b.number}",
                b.ndp_ms,
                b.freshness_ms,
                b.decryption_ms,
                b.other_ms,
                b.total_ms,
                100 * b.fraction(b.freshness_ms),
                100 * b.fraction(b.decryption_ms),
            ]
        )
    print()
    print(
        format_table(
            ["query", "ndp ms", "freshness ms", "decrypt ms", "other ms",
             "total ms", "fresh %", "dec %"],
            rows,
            title="Figure 8 — IronSafe (scs) cost breakdown per TPC-H query",
        )
    )

    dominant = sum(1 for b in breakdowns if b.freshness_ms > b.decryption_ms)
    print(f"\nfreshness dominates decryption in {dominant}/{len(breakdowns)} queries")
    assert dominant >= 0.9 * len(breakdowns), "freshness must be the main security cost"
    for b in breakdowns:
        assert b.other_ms < 0.25 * b.total_ms, f"Q{b.number}: 'other' should stay small"

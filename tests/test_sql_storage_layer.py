"""SQL storage: record codec, catalog, memory and paged stores."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import Rng
from repro.errors import CatalogError, StorageError
from repro.sql.catalog import Catalog, TableSchema
from repro.sql.records import decode_row, encode_row, pack_page, unpack_page
from repro.sql.stores import MemoryStore, PagedStore
from repro.storage import BlockDevice, InMemoryAnchor, Pager, SecurePager

sql_value = st.one_of(
    st.none(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.dates(min_value=datetime.date(1, 1, 1)),
)


class TestRecords:
    def test_roundtrip_all_types(self):
        row = (1, -5, 2.5, "text", None, datetime.date(1995, 6, 17))
        decoded, offset = decode_row(encode_row(row))
        assert decoded == row
        assert offset == len(encode_row(row))

    def test_page_roundtrip(self):
        rows = [(i, f"row{i}") for i in range(50)]
        payload = pack_page([encode_row(r) for r in rows])
        assert unpack_page(payload) == rows

    def test_empty_page(self):
        assert unpack_page(pack_page([])) == []
        assert unpack_page(b"") == []

    def test_bool_becomes_int(self):
        decoded, _ = decode_row(encode_row((True, False)))
        assert decoded == (1, 0)

    def test_oversized_text_rejected(self):
        with pytest.raises(StorageError):
            encode_row(("x" * 70_000,))

    def test_unsupported_type_rejected(self):
        with pytest.raises(StorageError):
            encode_row(([1, 2],))

    def test_corrupt_tag_rejected(self):
        data = bytes([1, 99])  # one column with unknown tag 99
        with pytest.raises(StorageError):
            decode_row(data)

    @settings(max_examples=60, deadline=None)
    @given(row=st.lists(sql_value, max_size=10).map(tuple))
    def test_roundtrip_property(self, row):
        decoded, _ = decode_row(encode_row(row))
        assert decoded == row


class TestCatalog:
    def _schema(self, name="t"):
        return TableSchema(name=name, columns=[("a", "INTEGER"), ("b", "TEXT")])

    def test_create_and_lookup(self):
        cat = Catalog()
        cat.create_table(self._schema())
        assert cat.table("t").column_names == ["a", "b"]
        assert cat.has_table("t")
        assert not cat.has_table("u")

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.create_table(self._schema())
        with pytest.raises(CatalogError):
            cat.create_table(self._schema())

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema(name="t", columns=[("a", "INTEGER"), ("a", "TEXT")])

    def test_unknown_type_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema(name="t", columns=[("a", "BLOB")])

    def test_drop(self):
        cat = Catalog()
        cat.create_table(self._schema())
        cat.drop_table("t")
        with pytest.raises(CatalogError):
            cat.table("t")
        with pytest.raises(CatalogError):
            cat.drop_table("t")

    def test_column_index_and_type(self):
        schema = self._schema()
        assert schema.column_index("b") == 1
        assert schema.column_type("b") == "TEXT"
        with pytest.raises(CatalogError):
            schema.column_index("z")

    def test_owner_of_column(self):
        cat = Catalog()
        cat.create_table(self._schema("t1"))
        cat.create_table(
            TableSchema(name="t2", columns=[("a", "INTEGER"), ("c", "TEXT")])
        )
        assert cat.owner_of_column("b") == "t1"
        assert cat.owner_of_column("c") == "t2"
        assert cat.owner_of_column("a") is None  # ambiguous
        assert cat.owner_of_column("zzz") is None

    def test_serialize_roundtrip(self):
        cat = Catalog()
        schema = self._schema()
        schema.pages = [1, 5, 9]
        schema.row_count = 42
        cat.create_table(schema)
        restored = Catalog.deserialize(cat.serialize())
        assert restored.table("t").pages == [1, 5, 9]
        assert restored.table("t").row_count == 42


def _make_paged(secure: bool = False) -> PagedStore:
    device = BlockDevice()
    if secure:
        rng = Rng("store")
        pager = SecurePager(device, rng.bytes(32), InMemoryAnchor(), rng.fork("iv"))
    else:
        pager = Pager(device)
    return PagedStore(pager)


@pytest.mark.parametrize("make_store", [MemoryStore, _make_paged, lambda: _make_paged(True)],
                         ids=["memory", "paged-plain", "paged-secure"])
class TestStores:
    def _schema(self):
        return TableSchema(
            name="t", columns=[("a", "INTEGER"), ("b", "TEXT"), ("c", "REAL")]
        )

    def test_insert_and_scan(self, make_store):
        store = make_store()
        store.create_table(self._schema())
        store.insert_rows("t", [(1, "x", 1.5), (2, "y", 2.5)])
        assert list(store.scan("t")) == [(1, "x", 1.5), (2, "y", 2.5)]
        assert store.catalog.table("t").row_count == 2

    def test_coercion_on_insert(self, make_store):
        store = make_store()
        store.create_table(self._schema())
        store.insert_rows("t", [("7", 123, 1)])
        assert list(store.scan("t")) == [(7, "123", 1.0)]

    def test_wrong_width_rejected(self, make_store):
        store = make_store()
        store.create_table(self._schema())
        with pytest.raises(StorageError):
            store.insert_rows("t", [(1,)])

    def test_replace_rows(self, make_store):
        store = make_store()
        store.create_table(self._schema())
        store.insert_rows("t", [(i, "r", 0.0) for i in range(100)])
        store.replace_rows("t", [(999, "only", 9.9)])
        assert list(store.scan("t")) == [(999, "only", 9.9)]
        assert store.catalog.table("t").row_count == 1

    def test_scan_unknown_table(self, make_store):
        store = make_store()
        with pytest.raises(CatalogError):
            list(store.scan("missing"))

    def test_many_rows_span_pages(self, make_store):
        store = make_store()
        store.create_table(self._schema())
        rows = [(i, "data" * 20, float(i)) for i in range(500)]
        store.insert_rows("t", rows)
        assert list(store.scan("t")) == rows


class TestPagedStorePersistence:
    def test_reopen_preserves_data(self):
        device = BlockDevice()
        store = PagedStore(Pager(device))
        store.create_table(TableSchema(name="t", columns=[("a", "INTEGER")]))
        store.insert_rows("t", [(1,), (2,)])
        store.commit()

        reopened = PagedStore(Pager(device))
        assert list(reopened.scan("t")) == [(1,), (2,)]

    def test_incremental_insert_reuses_last_page(self):
        device = BlockDevice()
        store = PagedStore(Pager(device))
        store.create_table(TableSchema(name="t", columns=[("a", "INTEGER")]))
        store.insert_rows("t", [(1,)])
        pages_after_first = len(store.catalog.table("t").pages)
        store.insert_rows("t", [(2,)])
        assert len(store.catalog.table("t").pages) == pages_after_first
        assert list(store.scan("t")) == [(1,), (2,)]

    def test_replace_reuses_freed_pages(self):
        device = BlockDevice()
        store = PagedStore(Pager(device))
        store.create_table(TableSchema(name="t", columns=[("a", "TEXT")]))
        store.insert_rows("t", [("x" * 1000,) for _ in range(50)])
        allocated_before = store.pager.page_count
        store.replace_rows("t", [("y" * 1000,) for _ in range(50)])
        assert store.pager.page_count == allocated_before  # freelist reuse

    def test_row_larger_than_page_rejected(self):
        store = _make_paged()
        store.create_table(TableSchema(name="t", columns=[("a", "TEXT")]))
        with pytest.raises(StorageError):
            store.insert_rows("t", [("z" * 5000,)])

    def test_secure_store_data_encrypted_at_rest(self):
        device = BlockDevice()
        rng = Rng("enc")
        pager = SecurePager(device, rng.bytes(32), InMemoryAnchor(), rng.fork("iv"))
        store = PagedStore(pager)
        store.create_table(TableSchema(name="t", columns=[("secret", "TEXT")]))
        store.insert_rows("t", [("CONFIDENTIAL-VALUE-123",)])
        store.commit()
        for pgno in range(device.num_pages):
            assert b"CONFIDENTIAL-VALUE-123" not in device.raw_page(pgno)

"""Integration: engines + deployment across all five configurations."""

from __future__ import annotations

import pytest

from repro.errors import EnclaveError, IronSafeError, SecureBootError
from repro.tpch import ALL_QUERIES

SMOKE_QUERIES = [3, 6, 13]


class TestHostEngine:
    def test_session_lifecycle(self, tiny_deployment):
        engine = tiny_deployment.host_engine
        engine.begin_session()
        engine.receive_table("tmp", [("a", "INTEGER")], [(1,), (2,)])
        result = engine.run(__import__("repro.sql.parser", fromlist=["parse"]).parse("SELECT sum(a) FROM tmp"))
        assert result.rows == [(3,)]
        engine.end_session()

    def test_enclave_state_hidden_from_outside(self, tiny_deployment):
        engine = tiny_deployment.host_engine
        engine.begin_session()
        with pytest.raises(EnclaveError):
            tiny_deployment.host_enclave.get("session_db")
        engine.end_session()

    def test_wipe_on_session_end(self, tiny_deployment):
        engine = tiny_deployment.host_engine
        engine.begin_session()
        engine.receive_table("tmp", [("a", "INTEGER")], [(1,)])
        engine.end_session()
        assert tiny_deployment.host_enclave.memory_in_use == 0

    def test_receive_without_session_rejected(self, tiny_deployment):
        engine = tiny_deployment.host_engine
        engine.end_session() if engine._db else None
        with pytest.raises(EnclaveError):
            engine.receive_table("tmp", [("a", "INTEGER")], [(1,)])


class TestStorageEngine:
    def test_requires_secure_boot(self, tiny_deployment):
        from repro.core import StorageEngine
        from repro.crypto import Rng
        from repro.storage import BlockDevice

        cold = tiny_deployment.vendor.provision_device("cold-dev", location="eu")
        with pytest.raises(SecureBootError):
            StorageEngine(cold, BlockDevice(), Rng(1), secure=True)

    def test_scan_projects_and_filters(self, tiny_deployment):
        from repro.core.partitioner import TableScanSpec
        from repro.sql.parser import parse_expression

        spec = TableScanSpec(
            table="nation",
            columns=["n_name", "n_regionkey"],
            where=parse_expression("n_regionkey = 3"),
        )
        columns, rows, nbytes, encoded = tiny_deployment.storage_engine.execute_scan(spec)
        assert columns == ["n_name", "n_regionkey"]
        assert rows and all(r[1] == 3 for r in rows)
        assert nbytes > 0
        # Rows are serialized exactly once; the ship loop reuses these.
        assert len(encoded) == len(rows)
        assert sum(map(len, encoded)) == nbytes

    def test_fresh_meter_rebinds(self, tiny_deployment):
        engine = tiny_deployment.storage_engine
        meter = engine.fresh_meter()
        list(engine.db.store.scan("region"))
        assert meter.pages_read > 0


class TestDeploymentConfigs:
    @pytest.mark.parametrize("number", SMOKE_QUERIES)
    def test_all_configs_agree(self, tiny_deployment, number):
        sql = ALL_QUERIES[number].sql
        reference = None
        for config in ("hons", "hos", "vcs", "scs", "sos"):
            result = tiny_deployment.run_query(sql, config)
            if reference is None:
                reference = sorted(result.rows)
            assert sorted(result.rows) == reference, f"{config} differs"

    def test_unknown_config_rejected(self, tiny_deployment):
        with pytest.raises(IronSafeError):
            tiny_deployment.run_query("SELECT 1", "warp-drive")

    def test_non_select_rejected(self, tiny_deployment):
        with pytest.raises(IronSafeError):
            tiny_deployment.run_query("DELETE FROM region", "scs")

    def test_breakdown_totals_positive(self, tiny_deployment):
        result = tiny_deployment.run_query(ALL_QUERIES[6].sql, "scs")
        assert result.total_ms > 0
        assert result.breakdown.total_ns == pytest.approx(
            sum(result.breakdown.by_category.values())
        )

    def test_secure_run_has_crypto_costs(self, tiny_deployment):
        result = tiny_deployment.run_query(ALL_QUERIES[6].sql, "scs")
        assert result.breakdown.ms("freshness") > 0
        assert result.breakdown.ms("decryption") > 0
        nonsecure = tiny_deployment.run_query(ALL_QUERIES[6].sql, "vcs")
        assert nonsecure.breakdown.ms("freshness") == 0
        assert nonsecure.breakdown.ms("decryption") == 0

    def test_split_ships_fewer_bytes_than_hostonly_reads(self, tiny_deployment):
        hons = tiny_deployment.run_query(ALL_QUERIES[6].sql, "hons")
        vcs = tiny_deployment.run_query(ALL_QUERIES[6].sql, "vcs")
        assert vcs.bytes_shipped < hons.host_meter.pages_read * 4096

    def test_deterministic_timings(self, tiny_deployment):
        a = tiny_deployment.run_query(ALL_QUERIES[6].sql, "scs")
        b = tiny_deployment.run_query(ALL_QUERIES[6].sql, "scs")
        assert a.total_ms == pytest.approx(b.total_ms)

    def test_storage_cpu_knob(self, tiny_deployment):
        slow = tiny_deployment.run_query(ALL_QUERIES[3].sql, "vcs", storage_cpus=1)
        fast = tiny_deployment.run_query(ALL_QUERIES[3].sql, "vcs", storage_cpus=16)
        assert fast.total_ms <= slow.total_ms

    def test_storage_memory_knob(self, tiny_deployment):
        from repro.core.manual_partitions import MANUAL_PARTITIONS

        roomy = tiny_deployment.run_query(
            ALL_QUERIES[13].sql, "scs", manual_partition=MANUAL_PARTITIONS[13]
        )
        tight = tiny_deployment.run_query(
            ALL_QUERIES[13].sql,
            "scs",
            manual_partition=MANUAL_PARTITIONS[13],
            storage_memory_bytes=4096,
        )
        assert tight.total_ms > roomy.total_ms

    def test_monitor_session_opened_for_scs(self, tiny_deployment):
        before = len(tiny_deployment.monitor.key_manager.active_sessions())
        tiny_deployment.run_query(ALL_QUERIES[6].sql, "scs")
        after = len(tiny_deployment.monitor.key_manager.active_sessions())
        assert after == before + 1

    def test_attestation_breakdown(self, tiny_deployment):
        # attest_all ran in the fixture; Table 4 anchors must be present.
        attestation_ms = tiny_deployment.clock.breakdown.ms("attestation")
        assert attestation_ms >= 689.0  # 140 + 453 + 54 + 42

    def test_pages_transferred_metric(self, tiny_deployment):
        vcs = tiny_deployment.run_query(ALL_QUERIES[6].sql, "vcs")
        assert vcs.pages_transferred >= 1
        hons = tiny_deployment.run_query(ALL_QUERIES[6].sql, "hons")
        assert hons.pages_transferred == hons.host_meter.pages_read

# expect: none
"""Known-good: rows are channel-encrypted before they touch the link."""
from repro.crypto import hash_ctr_crypt


def ship(pager, link, enc_key: bytes, nonce: bytes, pgnos: list) -> None:
    for payload in pager.read_pages(pgnos):
        link.send(hash_ctr_crypt(enc_key, nonce, payload))

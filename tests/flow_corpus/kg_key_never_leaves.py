# expect: none
"""Known-good: the key is only used to encrypt; ciphertext may ship."""
from repro.crypto import hash_ctr_crypt, hkdf


def ship(link, root: bytes, nonce: bytes, payload: bytes) -> None:
    key = hkdf(root, b"channel-enc", 32)
    link.send(hash_ctr_crypt(key, nonce, payload))

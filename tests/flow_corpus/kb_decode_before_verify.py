# expect: TAINT002
"""Known-bad: device bytes are decoded before the Merkle walk runs."""
from repro.sql.records import unpack_page


def scan(device, tree, pgno: int, digest: bytes, root: bytes):
    raw = device.read_page(pgno)
    rows = unpack_page(raw)  # decode first ...
    tree.verify_leaf(pgno, digest, root)  # ... verify too late
    return rows

# expect: none
"""Known-good: the helper declassifies with a digest before returning."""
import logging

from repro.crypto import hkdf, sha256


def derive_fingerprint(root: bytes, purpose: bytes) -> bytes:
    return sha256(hkdf(root, purpose, 32))


def audit(root: bytes) -> None:
    logging.debug("audit fp=%r", derive_fingerprint(root, b"audit"))

# expect: TAINT003
"""Known-bad: a detected integrity failure is silently swallowed."""
from repro.errors import IntegrityError


def read_all(pager, count: int) -> list:
    pages = []
    for pgno in range(count):
        try:
            pages.append(pager.read_page(pgno))
        except IntegrityError:
            continue  # pretend the page never existed
    return pages

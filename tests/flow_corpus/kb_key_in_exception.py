# expect: TAINT001
"""Known-bad: key material interpolated into an exception message."""
from repro.crypto import hkdf


def check(root: bytes, expected: bytes) -> None:
    key = hkdf(root, b"attest", 32)
    if key != expected:
        raise ValueError(f"attestation failed for key {key.hex()}")

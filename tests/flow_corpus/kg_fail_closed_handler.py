# expect: none
"""Known-good: integrity failures are audited and re-raised."""
from repro.errors import IntegrityError


def read_all(pager, monitor, count: int) -> list:
    pages = []
    for pgno in range(count):
        try:
            pages.append(pager.read_page(pgno))
        except IntegrityError as exc:
            monitor.record_integrity_violation(pgno, exc)
            raise
    return pages

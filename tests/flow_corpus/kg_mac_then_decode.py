# expect: none
"""Known-good: MAC first, decode after."""
import json

from repro.crypto import constant_time_eq, hmac_sha256


def receive(link, mac_key: bytes):
    frame = link.receive()
    body, mac = frame[:-32], frame[-32:]
    if not constant_time_eq(hmac_sha256(mac_key, body), mac):
        raise ValueError("bad frame")
    return json.loads(body)

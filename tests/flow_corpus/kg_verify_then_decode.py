# expect: none
"""Known-good: the Merkle walk authenticates the page before decode."""
from repro.sql.records import unpack_page


def scan(device, tree, pgno: int, digest: bytes, root: bytes):
    raw = device.read_page(pgno)
    tree.verify_leaf(pgno, digest, root)
    return unpack_page(raw)

# expect: TAINT002
"""Known-bad: a channel frame is JSON-decoded before its MAC check."""
import json

from repro.crypto import constant_time_eq, hmac_sha256


def receive(link, mac_key: bytes):
    frame = link.receive()
    body, mac = frame[:-32], frame[-32:]
    request = json.loads(body)  # decode first ...
    if not constant_time_eq(hmac_sha256(mac_key, body), mac):  # ... MAC too late
        raise ValueError("bad frame")
    return request

# expect: TAINT001
"""Known-bad: a derived key is interpolated into a log message."""
import logging

from repro.crypto import hkdf


def open_session(root: bytes, session_id: str) -> bytes:
    key = hkdf(root, session_id.encode(), 32)
    logging.info("session %s key %s", session_id, key)
    return key

# expect: TAINT001
"""Known-bad: keys never ride the data channel, even encrypted."""
from repro.crypto import hkdf


class SecureChannel:
    def send(self, payload: bytes) -> None:
        self.last = payload


def rekey(channel: SecureChannel, root: bytes) -> None:
    fresh = hkdf(root, b"rekey", 32)
    channel.send(fresh)

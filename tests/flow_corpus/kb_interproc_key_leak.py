# expect: TAINT001
"""Known-bad: the leak crosses a function boundary (summary transfer)."""
import logging

from repro.crypto import hkdf


def derive(root: bytes, purpose: bytes) -> bytes:
    return hkdf(root, purpose, 32)


def audit(root: bytes) -> None:
    material = derive(root, b"audit")
    logging.debug("audit material=%r", material)

# expect: none
"""Known-good: only a one-way digest of the key is logged."""
import logging

from repro.crypto import hkdf, sha256


def open_session(root: bytes, session_id: str) -> bytes:
    key = hkdf(root, session_id.encode(), 32)
    logging.info("session %s key-digest %s", session_id, sha256(key).hex()[:8])
    return key

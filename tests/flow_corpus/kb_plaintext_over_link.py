# expect: FLOW001
"""Known-bad: decrypted rows leave the enclave over the raw link."""


def ship(pager, link, pgnos: list) -> None:
    for payload in pager.read_pages(pgnos):
        link.send(payload)

"""SQL front end: lexer, parser, AST rendering."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import ParseError
from repro.sql import ast_nodes as A
from repro.sql.lexer import TT_IDENT, TT_KEYWORD, TT_NUMBER, TT_OP, TT_STRING, tokenize
from repro.sql.parser import parse, parse_expression


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t WHERE b = 'x'")
        kinds = [t.type for t in tokens[:-1]]
        assert kinds == [
            TT_KEYWORD, TT_IDENT, TT_OP, TT_NUMBER, TT_KEYWORD, TT_IDENT,
            TT_KEYWORD, TT_IDENT, TT_OP, TT_STRING,
        ]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].is_kw("SELECT")
        assert tokenize("SeLeCt")[0].is_kw("SELECT")

    def test_identifiers_lowercased(self):
        assert tokenize("MyTable")[0].value == "mytable"

    def test_quoted_identifier_preserves_case(self):
        assert tokenize('"MyTable"')[0].value == "MyTable"

    def test_string_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment here\n + 2")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1", "+", "2"]

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 1.5e-2")[:-1]]
        assert values == ["1", "2.5", "1e3", "1.5e-2"]

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("<= >= <> != ||")[:-1]]
        assert values == ["<=", ">=", "<>", "!=", "||"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, A.Binary) and expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_precedence_and_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, A.Binary) and expr.op == "OR"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "AND"

    def test_not_between_like_in(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2") == A.Between(
            A.Column("a"), A.Literal(1), A.Literal(2), negated=True
        )
        assert parse_expression("a NOT LIKE 'x%'") == A.Like(
            A.Column("a"), A.Literal("x%"), negated=True
        )
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, A.InList) and expr.negated

    def test_is_null(self):
        assert parse_expression("a IS NULL") == A.IsNull(A.Column("a"))
        assert parse_expression("a IS NOT NULL") == A.IsNull(A.Column("a"), True)

    def test_date_literal(self):
        expr = parse_expression("DATE '2020-05-17'")
        assert expr == A.Literal(datetime.date(2020, 5, 17))

    def test_bad_date_literal(self):
        with pytest.raises(ParseError):
            parse_expression("DATE 'not-a-date'")

    def test_interval(self):
        expr = parse_expression("d + INTERVAL '3' MONTH")
        assert isinstance(expr, A.Binary)
        assert expr.right == A.Interval(3, "MONTH")

    def test_case(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, A.Case)
        assert expr.default == A.Literal("y")

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_extract(self):
        expr = parse_expression("EXTRACT(YEAR FROM d)")
        assert expr == A.Extract("YEAR", A.Column("d"))

    def test_substring_both_syntaxes(self):
        a = parse_expression("SUBSTRING(s FROM 1 FOR 2)")
        b = parse_expression("SUBSTRING(s, 1, 2)")
        assert a == b == A.Substring(A.Column("s"), A.Literal(1), A.Literal(2))

    def test_aggregates(self):
        assert parse_expression("count(*)") == A.AggCall("count", None)
        assert parse_expression("sum(DISTINCT x)") == A.AggCall(
            "sum", A.Column("x"), distinct=True
        )

    def test_qualified_column(self):
        assert parse_expression("t1.col") == A.Column("col", "t1")

    def test_unary_minus(self):
        assert parse_expression("-x") == A.Unary("-", A.Column("x"))

    def test_params(self):
        expr = parse_expression("a = ?")
        assert isinstance(expr.right, A.Param)

    def test_concat(self):
        expr = parse_expression("a || b")
        assert isinstance(expr, A.Binary) and expr.op == "||"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")


class TestStatementParsing:
    def test_select_shape(self):
        stmt = parse(
            "SELECT a, b AS total FROM t1, t2 x WHERE a = 1 "
            "GROUP BY a HAVING count(*) > 2 ORDER BY total DESC LIMIT 5"
        )
        assert isinstance(stmt, A.Select)
        assert stmt.items[1].alias == "total"
        assert stmt.from_items[1].alias == "x"
        assert stmt.limit == 5
        assert stmt.order_by[0].descending

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, A.Star)

    def test_table_dot_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr == A.Star(table="t")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_joins(self):
        stmt = parse("SELECT a FROM t LEFT OUTER JOIN u ON t.a = u.a AND u.b > 1")
        assert stmt.joins[0].kind == "LEFT"
        stmt = parse("SELECT a FROM t JOIN u ON t.a = u.a")
        assert stmt.joins[0].kind == "INNER"

    def test_derived_table(self):
        stmt = parse("SELECT s FROM (SELECT a AS s FROM t) sub")
        assert isinstance(stmt.from_items[0], A.SubqueryRef)
        assert stmt.from_items[0].alias == "sub"

    def test_subqueries(self):
        stmt = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u) AND a IN (SELECT b FROM v)")
        conjuncts = stmt.where
        assert isinstance(conjuncts, A.Binary)

    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (a INTEGER, b VARCHAR(10), c DECIMAL(15,2), "
            "d DATE, PRIMARY KEY (a))"
        )
        assert isinstance(stmt, A.CreateTable)
        assert [c.type_name for c in stmt.columns] == ["INTEGER", "TEXT", "REAL", "DATE"]
        assert stmt.primary_key == ("a",)

    def test_create_table_needs_columns(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (PRIMARY KEY (a))")

    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, A.Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, A.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a IS NULL")
        assert isinstance(stmt, A.Delete)

    def test_drop(self):
        assert isinstance(parse("DROP TABLE t"), A.DropTable)

    def test_trailing_semicolon_ok(self):
        parse("SELECT 1;")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("VACUUM")

    def test_limit_needs_number(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 LIMIT x")


class TestToSqlRoundtrip:
    """`to_sql` output must re-parse to the same AST (the monitor ships
    rewritten queries as text, so this is load-bearing)."""

    CASES = [
        "SELECT a, b + 1 AS c FROM t WHERE a = 1 AND b <> 2",
        "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3",
        "SELECT count(*), sum(a) FROM t GROUP BY b HAVING count(*) > 1",
        "SELECT a FROM t WHERE b BETWEEN 1 AND 2 OR c LIKE 'x%'",
        "SELECT a FROM t WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY",
        "SELECT a FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)",
        "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
        "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
        "SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 0",
        "SELECT a FROM t LEFT OUTER JOIN u ON t.a = u.a",
        "SELECT EXTRACT(YEAR FROM d), SUBSTRING(s FROM 1 FOR 2) FROM t",
        "INSERT INTO t (a, b) VALUES (1, 'x')",
        "UPDATE t SET a = 2 WHERE b = 'y'",
        "DELETE FROM t WHERE a < 0",
        "CREATE TABLE t (a INTEGER, b TEXT)",
        "DROP TABLE t",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_roundtrip(self, sql):
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second

    def test_tpch_queries_roundtrip(self):
        from repro.tpch import ALL_QUERIES

        for query in ALL_QUERIES.values():
            first = parse(query.sql)
            assert parse(first.to_sql()) == first, f"Q{query.number} round-trip"

"""Client library: identity, submission workflow, proof verification."""

from __future__ import annotations

import pytest

from repro.core import Deployment, register_client
from repro.errors import AccessDenied, SignatureError


@pytest.fixture(scope="module")
def shared():
    deployment = Deployment(workload="none", database_name="appdb", seed=31)
    deployment.attest_all()
    producer = register_client(deployment, "producer")
    consumer = register_client(deployment, "consumer")
    deployment.monitor.provision_database(
        "appdb",
        policy_text=(
            f"read :- sessionKeyIs('{producer.fingerprint}')\n"
            f"write :- sessionKeyIs('{producer.fingerprint}')\n"
            f"read :- sessionKeyIs('{consumer.fingerprint}') & logUpdate(reads)\n"
        ),
    )
    db = deployment.storage_engine.db
    db.execute("CREATE TABLE items (id INTEGER, label TEXT)")
    db.store.insert_rows("items", [(i, f"item-{i}") for i in range(50)])
    db.commit()
    return deployment, producer, consumer


class TestClientIdentity:
    def test_fingerprints_distinct_and_stable(self, shared):
        _, producer, consumer = shared
        assert producer.fingerprint != consumer.fingerprint
        assert producer.fingerprint == producer.fingerprint

    def test_request_signatures_verify(self, shared):
        _, producer, _ = shared
        signature = producer.sign_request("SELECT 1")
        assert producer.public_key.verify(b"SELECT 1", signature)
        assert not producer.public_key.verify(b"SELECT 2", signature)


class TestSubmission:
    def test_producer_reads(self, shared):
        deployment, producer, _ = shared
        response = producer.submit(deployment, "SELECT count(*) FROM items")
        assert response.rows == [(50,)]
        assert response.total_ms > 0

    def test_consumer_reads_are_audited(self, shared):
        deployment, _, consumer = shared
        before = len(deployment.monitor.audit_log("reads").entries) if _has_log(deployment) else 0
        consumer.submit(deployment, "SELECT id FROM items WHERE id < 3")
        log = deployment.monitor.audit_log("reads")
        assert len(log.entries) == before + 1

    def test_unauthorized_client_denied(self, shared):
        deployment, _, _ = shared
        mallory = register_client(deployment, "mallory")
        with pytest.raises(AccessDenied):
            mallory.submit(deployment, "SELECT * FROM items")

    def test_proof_travels_with_response(self, shared):
        deployment, producer, _ = shared
        from repro.monitor import verify_proof

        response = producer.submit(deployment, "SELECT max(id) FROM items")
        verify_proof(response.proof, deployment.monitor.public_key)
        with pytest.raises(SignatureError):
            from repro.crypto import Rng, generate_keypair

            verify_proof(response.proof, generate_keypair(Rng("x")).public_key)

    def test_host_only_fallback(self, shared):
        deployment, producer, _ = shared
        response = producer.submit(
            deployment,
            "SELECT count(*) FROM items",
            exec_policy="storageLocIs(mars-base)",
        )
        assert response.rows == [(50,)]

    def test_session_closed_after_submit(self, shared):
        deployment, producer, _ = shared
        producer.submit(deployment, "SELECT 1 FROM items LIMIT 1")
        # No sessions should remain active beyond the harness's own.
        active = deployment.monitor.key_manager.active_sessions()
        assert all(s.client_key != producer.fingerprint for s in active)


def _has_log(deployment) -> bool:
    try:
        deployment.monitor.audit_log("reads")
        return True
    except Exception:
        return False

"""Extra GDPR coverage: writes, deletion rights, and cross-client isolation."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied
from repro.gdpr import GDPRWorkbench
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def workbench():
    return GDPRWorkbench(seed=20, rows=300)


class TestWritePath:
    def test_owner_insert_gets_policy_columns(self, workbench):
        auth = workbench.deployment.monitor.authorize(
            "persons-db",
            client_key=workbench.alice,
            statement=parse(
                "INSERT INTO persons (person_id, name, email, country, salary) "
                "VALUES (99001, 'new', 'n@x.com', 'DE', 1.0)"
            ),
            host_id="host-1",
            now=5000,
        )
        assert "expiry_ts" in auth.statement.columns
        assert "reuse_map" in auth.statement.columns
        workbench.deployment.storage_engine.db.execute_statement(auth.statement)
        row = workbench.deployment.storage_engine.db.execute(
            "SELECT expiry_ts, reuse_map FROM persons WHERE person_id = 99001"
        ).rows[0]
        assert row[0] == 5000 + workbench.policy.default_ttl
        assert row[1] == workbench.policy.default_reuse_map

    def test_consumer_cannot_write(self, workbench):
        with pytest.raises(AccessDenied):
            workbench.deployment.monitor.authorize(
                "persons-db",
                client_key=workbench.bob,
                statement=parse("DELETE FROM persons WHERE person_id = 1"),
                host_id="host-1",
            )

    def test_owner_can_delete(self, workbench):
        """GDPR right to erasure: the controller deletes on request."""
        db = workbench.deployment.storage_engine.db
        before = db.execute("SELECT count(*) FROM persons").scalar()
        auth = workbench.deployment.monitor.authorize(
            "persons-db",
            client_key=workbench.alice,
            statement=parse("DELETE FROM persons WHERE person_id = 0"),
            host_id="host-1",
        )
        result = db.execute_statement(auth.statement)
        assert result.rowcount == 1
        assert db.execute("SELECT count(*) FROM persons").scalar() == before - 1


class TestViewIsolation:
    def test_consumer_view_is_subset_of_owner_view(self, workbench):
        sql = "SELECT person_id FROM persons"
        owner, _, _ = workbench.run_ironsafe(sql, workbench.alice)
        consumer, _, _ = workbench.run_ironsafe(sql, workbench.bob)
        owner_ids = {r[0] for r in owner.rows}
        consumer_ids = {r[0] for r in consumer.rows}
        assert consumer_ids < owner_ids

    def test_rewrites_do_not_leak_into_owner_queries(self, workbench):
        sql = "SELECT count(*) FROM persons WHERE expiry_ts < 5000"
        owner, _, auth = workbench.run_ironsafe(sql, workbench.alice)
        # Owner's query text is untouched (no extra policy predicates).
        assert auth.statement.to_sql().count("expiry_ts") == 1

    def test_aggregates_respect_policy_view(self, workbench):
        owner, _, _ = workbench.run_ironsafe(
            "SELECT sum(salary) FROM persons", workbench.alice
        )
        consumer, _, _ = workbench.run_ironsafe(
            "SELECT sum(salary) FROM persons", workbench.bob
        )
        assert consumer.scalar() < owner.scalar()

    def test_policy_filters_follow_subqueries(self, workbench):
        """A consumer cannot smuggle hidden rows out through a subquery."""
        sql = (
            "SELECT count(*) FROM persons WHERE person_id IN "
            "(SELECT person_id FROM persons)"
        )
        consumer, _, _ = workbench.run_ironsafe(sql, workbench.bob)
        direct, _, _ = workbench.run_ironsafe(
            "SELECT count(*) FROM persons", workbench.bob
        )
        assert consumer.scalar() == direct.scalar()

"""Oblivious execution tiers: padding, shuffle kernels, trace identity.

Four contracts under test.  The ``off`` tier is byte-identical to the
seed behaviour in every deployment configuration (rows, meters, simulated
time, observable trace).  The ``padded``/``full`` tiers never change
query results, only trace shapes — and the ``full`` tier's shapes are
identical across arbitrary predicate constants (a seeded property test).
Dummy page reads ride the real read→MAC→Merkle→decrypt pipeline, so
tampering with a page the query didn't even need still raises and leaves
exactly one flight-recorder incident.  And the kernels themselves
(bitonic sort/join/group, frame padding, fixed schedules) match their
non-oblivious twins row for row while charging data-independent work.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Deployment, RunConfig
from repro.errors import IntegrityError, IronSafeError, StreamError
from repro.oblivious import (
    FRAME_HEADER_BYTES,
    PAD_QUANTUM,
    TIERS,
    batch_schedule,
    bitonic_ops,
    dummy_frame,
    fixed_ship_schedule,
    oblivious_group_runs,
    oblivious_join,
    oblivious_operators,
    oblivious_sort,
    pad_frame,
    pads_channel,
    pads_pages,
    quantize,
    record_schedule,
    unpad_frame,
    validate_tier,
)
from repro.sim import Meter
from repro.stream import BatchAssembler
from repro.tpch import Cardinalities

ALL_CONFIGS = ("hons", "hos", "vcs", "scs", "sos")

SCALE = 0.001
SEED = 29

#: Channel ciphertext overhead on top of the padded frame (seq + MAC).
CHANNEL_OVERHEAD = 8 + 32


def _window_query(lo: int, hi: int) -> str:
    return (
        "SELECT count(*), sum(l_extendedprice) FROM lineitem "
        f"WHERE l_orderkey >= {lo} AND l_orderkey <= {hi}"
    )


def _groupby_query(lo: int, hi: int) -> str:
    return (
        "SELECT l_suppkey, count(*), sum(l_extendedprice) FROM lineitem "
        f"WHERE l_orderkey >= {lo} AND l_orderkey <= {hi} "
        "GROUP BY l_suppkey"
    )


@pytest.fixture(scope="module")
def observed():
    deployment = Deployment(scale_factor=SCALE, seed=SEED)
    deployment.attest_all()
    recorder = deployment.enable_observability()
    return deployment, recorder


# ---------------------------------------------------------------------------
# Tier knob
# ---------------------------------------------------------------------------


class TestTierKnob:
    def test_ladder_predicates(self):
        assert TIERS == ("off", "padded", "full")
        assert not pads_pages("off") and not pads_channel("off")
        assert pads_pages("padded") and pads_channel("padded")
        assert pads_pages("full") and pads_channel("full")
        assert not fixed_ship_schedule("padded") and fixed_ship_schedule("full")
        assert not oblivious_operators("padded") and oblivious_operators("full")

    def test_unknown_tier_rejected(self):
        with pytest.raises(IronSafeError):
            validate_tier("extra-oblivious")
        with pytest.raises(IronSafeError):
            RunConfig(oblivious="extra-oblivious")

    def test_run_config_defaults_off(self):
        assert RunConfig().oblivious == "off"


# ---------------------------------------------------------------------------
# Frame padding
# ---------------------------------------------------------------------------


class TestFramePadding:
    def test_quantized_roundtrip(self):
        for size in (0, 1, PAD_QUANTUM - FRAME_HEADER_BYTES, PAD_QUANTUM, 10_000):
            inner = bytes(range(256)) * (size // 256) + bytes(size % 256)
            frame = pad_frame(inner)
            assert len(frame) % PAD_QUANTUM == 0
            assert unpad_frame(frame) == inner

    def test_fixed_target_roundtrip_and_fail_closed(self):
        inner = b"x" * 100
        frame = pad_frame(inner, target=512)
        assert len(frame) == 512
        assert unpad_frame(frame) == inner
        with pytest.raises(IronSafeError):
            pad_frame(b"y" * 512, target=512)  # header no longer fits

    def test_dummy_frame_is_droppable(self):
        frame = dummy_frame(256)
        assert len(frame) == 256
        assert unpad_frame(frame) is None
        with pytest.raises(IronSafeError):
            dummy_frame(FRAME_HEADER_BYTES - 1)

    def test_malformed_frames_rejected(self):
        with pytest.raises(IronSafeError):
            unpad_frame(b"\x0b\x00")  # truncated header
        with pytest.raises(IronSafeError):
            unpad_frame(b"\xee" + (0).to_bytes(4, "big"))  # unknown marker
        lying = bytes([0x0B]) + (99).to_bytes(4, "big") + b"short"
        with pytest.raises(IronSafeError):
            unpad_frame(lying)  # declares more bytes than it holds

    def test_schedules_are_predicate_independent(self):
        # Same catalog stats -> same schedule, whatever the query did.
        a = batch_schedule(10_000, 400_000, 64 * 1024)
        b = batch_schedule(10_000, 400_000, 64 * 1024)
        assert a == b
        assert a.units >= 1 and a.frame_bytes % PAD_QUANTUM == 0
        assert a.units * a.rows_per_unit >= 10_000
        r = record_schedule(10_000, 400_000, 256)
        assert r.rows_per_unit == 256
        assert r.units == -(-10_000 // 256)
        with pytest.raises(IronSafeError):
            batch_schedule(10, 100, 0)
        with pytest.raises(IronSafeError):
            record_schedule(10, 100, 0)

    def test_empty_table_still_ships_one_unit(self):
        schedule = batch_schedule(0, 0, 64 * 1024)
        assert schedule.units == 1


# ---------------------------------------------------------------------------
# Bitonic kernels
# ---------------------------------------------------------------------------


class TestBitonicKernels:
    def test_sort_matches_sorted_and_charges_fixed_ops(self):
        rows = [(5,), (1,), (None,), (3,), (1,), (9,), (None,), (2,)]
        meter = Meter()
        out = oblivious_sort(rows, lambda r: tuple(r), meter=None)
        # None sorts last; ties keep all duplicates.
        assert [r[0] for r in out] == [1, 1, 2, 3, 5, 9, None, None]
        before = meter.sort_ops
        oblivious_sort(rows, lambda r: tuple(r), meter)
        assert meter.sort_ops - before == bitonic_ops(len(rows))

    def test_ops_depend_on_size_only(self):
        a = [(i,) for i in range(13)]
        b = [(13 - i,) for i in range(13)]
        ma, mb = Meter(), Meter()
        oblivious_sort(a, lambda r: tuple(r), ma)
        oblivious_sort(b, lambda r: tuple(r), mb)
        assert ma.sort_ops == mb.sort_ops == bitonic_ops(13)
        assert bitonic_ops(0) == bitonic_ops(1) == 0

    def test_join_matches_nested_loop_semantics(self):
        left = [(1, "a"), (2, "b"), (None, "n"), (2, "c"), (4, "d")]
        right = [(2, 20.0), (2, 21.0), (1, 10.0), (None, 0.0), (5, 50.0)]

        def reference(kind):
            out = []
            for lrow in sorted(left, key=lambda r: (r[0] is None, r[0] or 0)):
                matched = False
                for rrow in right:
                    if lrow[0] is not None and lrow[0] == rrow[0]:
                        matched = True
                        out.append(lrow + rrow)
                if not matched and kind == "left":
                    out.append(lrow + (None, None))
            return out

        for kind in ("inner", "left"):
            got = list(
                oblivious_join(
                    left, right,
                    lambda r: (r[0],), lambda r: (r[0],),
                    kind=kind, pad_width=2,
                )
            )
            assert sorted(got, key=repr) == sorted(reference(kind), key=repr)

    def test_join_residual_filters_combined_rows(self):
        left = [(1, 5), (1, 50)]
        right = [(1, 10)]
        got = list(
            oblivious_join(
                left, right,
                lambda r: (r[0],), lambda r: (r[0],),
                accept=lambda combined: combined[1] > combined[3],
            )
        )
        assert got == [(1, 50, 1, 10)]

    def test_group_runs_cover_every_row_once(self):
        rows = [(2, 1), (1, 2), (2, 3), (None, 4), (1, 5)]
        runs = list(oblivious_group_runs(rows, lambda r: (r[0],)))
        assert [key for key, _ in runs] == [(1,), (2,), (None,)]
        assert sorted(v for _, run in runs for _, v in run) == [1, 2, 3, 4, 5]


# ---------------------------------------------------------------------------
# Fixed-rows batch assembly
# ---------------------------------------------------------------------------


class TestFixedRowsAssembler:
    def test_fixed_rows_pins_batch_boundaries(self):
        assembler = BatchAssembler(target_bytes=64, fixed_rows=3)
        rows = [(i, "x" * (i % 7)) for i in range(10)]
        sizes = [b.row_count for b in assembler.batches(iter(rows))]
        assert sizes == [3, 3, 3, 1]
        assert assembler.row_target == 3  # never retargets

    def test_fixed_rows_validated(self):
        with pytest.raises(StreamError):
            BatchAssembler(fixed_rows=0)
        with pytest.raises(StreamError):
            BatchAssembler(fixed_rows=1_000_000)


# ---------------------------------------------------------------------------
# Off tier == seed, in every configuration
# ---------------------------------------------------------------------------


class TestOffTierIdentity:
    def test_off_tier_byte_identical_across_configs(self):
        """`oblivious="off"` is not a near-miss of the seed: rows, meters,
        simulated time and the observable trace all match the default
        config exactly, in all five deployment configurations."""
        default = Deployment(scale_factor=SCALE, seed=SEED)
        explicit = Deployment(scale_factor=SCALE, seed=SEED)
        default.attest_all()
        explicit.attest_all()
        rec_default = default.enable_observability()
        rec_explicit = explicit.enable_observability()
        sql = _groupby_query(1, 60)
        for config in ALL_CONFIGS:
            base = default.run_query(
                sql, config, run_config=RunConfig(zone_maps=True)
            )
            off = explicit.run_query(
                sql, config,
                run_config=RunConfig(zone_maps=True, oblivious="off"),
            )
            assert off.rows == base.rows, config
            assert off.storage_meter == base.storage_meter, config
            assert off.host_meter == base.host_meter, config
            assert off.breakdown.total_ns == base.breakdown.total_ns, config
            assert (
                rec_explicit.last_trace().fingerprint()
                == rec_default.last_trace().fingerprint()
            ), config
            assert off.storage_meter.get("oblivious_dummy_reads") == 0
            assert off.storage_meter.get("oblivious_pad_bytes") == 0


class TestVectorizedComposition:
    """ISSUE 9: the morsel executor must compose with the oblivious
    tiers without widening the observable channel.  Vectorized scans
    consume the very pages the row scan reads (``scan_morsels`` wraps
    ``scan``), and the full tier's fixed ship schedule is sized by the
    table, not the executor — so the adversary's view cannot move."""

    def test_full_tier_trace_unchanged_by_vectorization(self, observed):
        deployment, recorder = observed
        sql = _groupby_query(1, 60)
        for config in ("sos", "scs"):
            row = deployment.run_query(
                sql, config,
                run_config=RunConfig(zone_maps=True, oblivious="full"),
            )
            row_fingerprint = recorder.last_trace().fingerprint()
            vec = deployment.run_query(
                sql, config,
                run_config=RunConfig(
                    zone_maps=True, oblivious="full", vectorized=True
                ),
            )
            assert recorder.last_trace().fingerprint() == row_fingerprint, config
            assert sorted(vec.rows) == sorted(row.rows), config

    def test_full_tier_vectorized_trace_constant_independent(self, observed):
        deployment, recorder = observed
        fingerprints = set()
        for lo in (1, 40, 111):
            deployment.run_query(
                _groupby_query(lo, lo + 50), "sos",
                run_config=RunConfig(
                    zone_maps=True, oblivious="full", vectorized=True
                ),
            )
            fingerprints.add(recorder.last_trace().fingerprint())
        assert len(fingerprints) == 1, "vectorized full-tier trace leaks the constant"


# ---------------------------------------------------------------------------
# Trace identity across predicate constants (property test)
# ---------------------------------------------------------------------------

#: Reference fingerprints per (config, tier), filled by the first example.
_REFERENCE: dict = {}


class TestTraceIdentity:
    @settings(max_examples=8, deadline=None)
    @given(lo=st.integers(min_value=1, max_value=200), seed=st.randoms())
    def test_padded_and_full_traces_constant_independent(self, observed, lo, seed):
        """Whatever the predicate constant, the padded/full sos traces
        (and the full scs trace, channel included) are byte-identical."""
        deployment, recorder = observed
        orders = Cardinalities.for_scale(SCALE).orders
        width = 1 + int(seed.random() * 0.2 * orders)
        sql = _groupby_query(lo, lo + width)
        for config, tier in (("sos", "padded"), ("sos", "full"), ("scs", "full")):
            deployment.run_query(
                sql, config,
                run_config=RunConfig(zone_maps=True, oblivious=tier),
            )
            fingerprint = recorder.last_trace().fingerprint()
            reference = _REFERENCE.setdefault((config, tier), fingerprint)
            assert fingerprint == reference, (
                f"{config}/{tier}: trace depends on the predicate constant"
            )

    def test_padded_channel_sizes_are_quantized(self, observed):
        """scs padded tier: every channel ciphertext is a pad quantum
        multiple plus the fixed seq+MAC overhead — sizes leak at quantum
        granularity only."""
        deployment, recorder = observed
        deployment.run_query(
            _window_query(1, 40), "scs",
            run_config=RunConfig(zone_maps=True, oblivious="padded"),
        )
        sends = [
            e for e in recorder.last_trace().events
            if e.channel == "channel" and e.op == "send"
        ]
        assert sends
        for event in sends:
            assert (event.nbytes - CHANNEL_OVERHEAD) % PAD_QUANTUM == 0

    def test_dummy_work_is_metered(self, observed):
        deployment, _ = observed
        padded = deployment.run_query(
            _window_query(1, 40), "sos",
            run_config=RunConfig(zone_maps=True, oblivious="padded"),
        )
        assert padded.storage_meter.get("oblivious_dummy_reads") > 0
        full_scs = deployment.run_query(
            _window_query(1, 40), "scs",
            run_config=RunConfig(zone_maps=True, oblivious="full"),
        )
        assert full_scs.storage_meter.get("oblivious_pad_bytes") > 0
        assert full_scs.storage_meter.get("oblivious_dummy_batches") > 0

    def test_tiers_never_change_results(self, observed):
        deployment, _ = observed
        sql = _groupby_query(1, 80)
        for config in ALL_CONFIGS:
            base = deployment.run_query(
                sql, config, run_config=RunConfig(zone_maps=True)
            )
            for tier in ("padded", "full"):
                run = deployment.run_query(
                    sql, config,
                    run_config=RunConfig(zone_maps=True, oblivious=tier),
                )
                assert sorted(run.rows) == sorted(base.rows), (config, tier)


# ---------------------------------------------------------------------------
# Tamper under padding
# ---------------------------------------------------------------------------


class TestTamperUnderPadding:
    def test_tampered_dummy_page_still_raises_one_incident(self, tmp_path):
        """Dummy reads are real reads: corrupt a page the query's pruned
        scan would never touch, and the padded tier — which reads it only
        to hide the skip — still detects the tamper and dumps exactly one
        flight-recorder incident."""
        deployment = Deployment(scale_factor=SCALE, seed=11)
        deployment.attest_all()
        recorder = deployment.enable_observability(flight_dir=str(tmp_path))
        victim = deployment.storage_engine.db.store.pages_of("lineitem")[-1]
        deployment.secure_device.corrupt(victim, offset=100)

        # The off tier's pruned scan skips the victim page: the corrupted
        # page is invisible, the query succeeds.
        sql = _window_query(1, 10)
        result = deployment.run_query(
            sql, "sos", run_config=RunConfig(zone_maps=True, oblivious="off")
        )
        assert result.rows
        assert not recorder.flight.incidents

        # The padded tier reads it as a dummy — through the same
        # MAC+Merkle verification — so the tamper surfaces.
        with pytest.raises(IntegrityError):
            deployment.run_query(
                sql, "sos",
                run_config=RunConfig(zone_maps=True, oblivious="padded"),
            )
        assert len(recorder.flight.incidents) == 1
        assert recorder.flight.incidents[0]["page"] == victim
        assert recorder.meter_snapshot()["flight_dump_count"] == 1
        assert recorder.last_trace().status == "error"

"""CBC / CTR chaining modes and PKCS#7 padding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    Rng,
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import CryptoError

_RNG = Rng("modes")
KEY = _RNG.bytes(32)
IV = _RNG.bytes(16)


class TestPadding:
    @pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 31, 100])
    def test_roundtrip(self, length):
        data = bytes(range(256))[:length]
        padded = pkcs7_pad(data)
        assert len(padded) % 16 == 0
        assert pkcs7_unpad(padded) == data

    def test_pad_always_adds(self):
        # Even block-aligned input gets a full padding block.
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_unpad_rejects_empty(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"")

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(bytes(17))

    def test_unpad_rejects_bad_byte(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(bytes(15) + b"\x00")

    def test_unpad_rejects_inconsistent_padding(self):
        data = bytes(14) + b"\x01\x02"  # claims 2 bytes but they differ
        with pytest.raises(CryptoError):
            pkcs7_unpad(data)


class TestCBC:
    def test_roundtrip(self):
        message = b"attack at dawn" * 20
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, message)) == message

    def test_empty_message(self):
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, b"")) == b""

    def test_ciphertext_differs_from_plaintext(self):
        message = b"A" * 64
        assert message not in cbc_encrypt(KEY, IV, message)

    def test_iv_matters(self):
        message = b"B" * 32
        other_iv = bytes(16)
        assert cbc_encrypt(KEY, IV, message) != cbc_encrypt(KEY, other_iv, message)

    def test_rejects_bad_iv(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(KEY, bytes(8), b"x")
        with pytest.raises(CryptoError):
            cbc_decrypt(KEY, bytes(8), bytes(16))

    def test_rejects_unaligned_ciphertext(self):
        with pytest.raises(CryptoError):
            cbc_decrypt(KEY, IV, bytes(20))

    def test_tampered_ciphertext_breaks_padding_or_content(self):
        message = b"C" * 48
        ct = bytearray(cbc_encrypt(KEY, IV, message))
        ct[-1] ^= 0xFF  # corrupt final block -> padding error or garbage
        try:
            out = cbc_decrypt(KEY, IV, bytes(ct))
            assert out != message
        except CryptoError:
            pass

    @settings(max_examples=25, deadline=None)
    @given(message=st.binary(max_size=200))
    def test_roundtrip_property(self, message):
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, message)) == message


class TestCTR:
    def test_symmetric(self):
        message = b"counter mode" * 10
        ct = ctr_crypt(KEY, IV, message)
        assert ctr_crypt(KEY, IV, ct) == message

    def test_length_preserved(self):
        for n in (0, 1, 16, 17, 1000):
            assert len(ctr_crypt(KEY, IV, bytes(n))) == n

    def test_rejects_bad_nonce(self):
        with pytest.raises(CryptoError):
            ctr_crypt(KEY, bytes(4), b"data")

    @settings(max_examples=25, deadline=None)
    @given(message=st.binary(max_size=300))
    def test_roundtrip_property(self, message):
        assert ctr_crypt(KEY, IV, ctr_crypt(KEY, IV, message)) == message

"""End-to-end SQL engine semantics (plans, joins, subqueries, DML)."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import CatalogError, ExecutionError, ParseError, PlanError
from repro.sql import memory_database


@pytest.fixture()
def db():
    database = memory_database()
    database.execute("CREATE TABLE emp (id INTEGER, name TEXT, dept INTEGER, salary REAL, hired DATE)")
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ada', 10, 3000.0, DATE '2019-01-15'), "
        "(2, 'bob', 10, 2500.0, DATE '2020-06-01'), "
        "(3, 'cyd', 20, 4000.0, DATE '2018-03-20'), "
        "(4, 'dee', 20, 3500.0, DATE '2021-11-11'), "
        "(5, 'eli', NULL, NULL, NULL)"
    )
    database.execute("CREATE TABLE dept (dept_id INTEGER, dept_name TEXT)")
    database.execute("INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'empty')")
    return database


class TestBasicSelect:
    def test_projection_and_alias(self, db):
        r = db.execute("SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1")
        assert r.columns == ["name", "double_pay"]
        assert r.rows == [("ada", 6000.0)]

    def test_star(self, db):
        r = db.execute("SELECT * FROM dept ORDER BY dept_id")
        assert r.rows[0] == (10, "eng")
        assert r.columns == ["dept_id", "dept_name"]

    def test_select_without_from(self, db):
        assert db.execute("SELECT 1 + 2").rows == [(3,)]

    def test_where_null_filtered(self, db):
        r = db.execute("SELECT id FROM emp WHERE salary > 0")
        assert len(r.rows) == 4  # eli's NULL salary never satisfies

    def test_order_by_nulls_last(self, db):
        r = db.execute("SELECT id, salary FROM emp ORDER BY salary")
        assert r.rows[-1][0] == 5
        r = db.execute("SELECT id, salary FROM emp ORDER BY salary DESC")
        assert r.rows[-1][0] == 5

    def test_multi_key_order(self, db):
        r = db.execute("SELECT dept, salary FROM emp WHERE dept IS NOT NULL ORDER BY dept DESC, salary")
        assert r.rows == [(20, 3500.0), (20, 4000.0), (10, 2500.0), (10, 3000.0)]

    def test_limit(self, db):
        assert len(db.execute("SELECT id FROM emp LIMIT 2").rows) == 2
        assert db.execute("SELECT id FROM emp LIMIT 0").rows == []

    def test_distinct(self, db):
        r = db.execute("SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL")
        assert sorted(r.rows) == [(10,), (20,)]

    def test_date_filtering(self, db):
        r = db.execute("SELECT id FROM emp WHERE hired >= DATE '2020-01-01' ORDER BY id")
        assert r.rows == [(2,), (4,)]

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT nonexistent FROM emp")

    def test_ambiguous_column(self, db):
        db.execute("CREATE TABLE emp2 (id INTEGER)")
        with pytest.raises(PlanError):
            db.execute("SELECT id FROM emp, emp2")


class TestJoins:
    def test_implicit_equi_join(self, db):
        r = db.execute(
            "SELECT name, dept_name FROM emp, dept WHERE dept = dept_id ORDER BY id"
        )
        assert r.rows == [
            ("ada", "eng"), ("bob", "eng"), ("cyd", "ops"), ("dee", "ops"),
        ]

    def test_explicit_inner_join(self, db):
        r = db.execute(
            "SELECT name FROM emp JOIN dept ON dept = dept_id WHERE dept_name = 'eng' ORDER BY name"
        )
        assert r.rows == [("ada",), ("bob",)]

    def test_left_outer_join(self, db):
        r = db.execute(
            "SELECT dept_name, count(id) AS n FROM dept "
            "LEFT OUTER JOIN emp ON dept = dept_id GROUP BY dept_name ORDER BY dept_name"
        )
        assert r.rows == [("empty", 0), ("eng", 2), ("ops", 2)]

    def test_left_join_on_residual(self, db):
        r = db.execute(
            "SELECT dept_name, count(id) FROM dept "
            "LEFT OUTER JOIN emp ON dept = dept_id AND salary > 2600 "
            "GROUP BY dept_name ORDER BY dept_name"
        )
        assert r.rows == [("empty", 0), ("eng", 1), ("ops", 2)]

    def test_cross_join_fallback(self, db):
        r = db.execute("SELECT count(*) FROM emp, dept")
        assert r.rows == [(15,)]

    def test_non_equi_join_condition(self, db):
        r = db.execute(
            "SELECT count(*) FROM emp e, dept d WHERE e.dept < d.dept_id"
        )
        assert r.rows == [(6,)]  # dept 10 < {20,30} x2 emps, 20 < 30 x2

    def test_self_join_with_aliases(self, db):
        r = db.execute(
            "SELECT a.name, b.name FROM emp a, emp b "
            "WHERE a.dept = b.dept AND a.id < b.id ORDER BY a.id"
        )
        assert r.rows == [("ada", "bob"), ("cyd", "dee")]

    def test_null_keys_never_join(self, db):
        db.execute("CREATE TABLE n1 (k INTEGER)")
        db.execute("CREATE TABLE n2 (k INTEGER)")
        db.execute("INSERT INTO n1 VALUES (NULL), (1)")
        db.execute("INSERT INTO n2 VALUES (NULL), (1)")
        r = db.execute("SELECT count(*) FROM n1, n2 WHERE n1.k = n2.k")
        assert r.rows == [(1,)]

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE loc (dept_id INTEGER, city TEXT)")
        db.execute("INSERT INTO loc VALUES (10, 'berlin'), (20, 'lisbon')")
        r = db.execute(
            "SELECT name, city FROM emp, dept, loc "
            "WHERE emp.dept = dept.dept_id AND dept.dept_id = loc.dept_id "
            "AND name = 'cyd'"
        )
        assert r.rows == [("cyd", "lisbon")]


class TestAggregation:
    def test_global_aggregates(self, db):
        r = db.execute("SELECT count(*), count(salary), sum(salary), avg(salary), min(salary), max(salary) FROM emp")
        assert r.rows == [(5, 4, 13000.0, 3250.0, 2500.0, 4000.0)]

    def test_empty_input_global(self, db):
        r = db.execute("SELECT count(*), sum(salary), min(salary) FROM emp WHERE id > 99")
        assert r.rows == [(0, None, None)]

    def test_group_by(self, db):
        r = db.execute(
            "SELECT dept, count(*) AS n, sum(salary) FROM emp "
            "WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept"
        )
        assert r.rows == [(10, 2, 5500.0), (20, 2, 7500.0)]

    def test_group_by_expression(self, db):
        r = db.execute(
            "SELECT EXTRACT(YEAR FROM hired) AS y, count(*) FROM emp "
            "WHERE hired IS NOT NULL GROUP BY EXTRACT(YEAR FROM hired) ORDER BY y"
        )
        assert [row[0] for row in r.rows] == [2018, 2019, 2020, 2021]

    def test_having(self, db):
        r = db.execute(
            "SELECT dept FROM emp WHERE dept IS NOT NULL "
            "GROUP BY dept HAVING sum(salary) > 6000"
        )
        assert r.rows == [(20,)]

    def test_count_distinct(self, db):
        db.execute("CREATE TABLE dups (v INTEGER)")
        db.execute("INSERT INTO dups VALUES (1), (1), (2), (NULL), (2), (3)")
        r = db.execute("SELECT count(DISTINCT v), count(v), count(*) FROM dups")
        assert r.rows == [(3, 5, 6)]

    def test_sum_distinct(self, db):
        db.execute("CREATE TABLE dups2 (v INTEGER)")
        db.execute("INSERT INTO dups2 VALUES (5), (5), (2)")
        assert db.execute("SELECT sum(DISTINCT v) FROM dups2").rows == [(7,)]

    def test_aggregate_expression_arithmetic(self, db):
        r = db.execute(
            "SELECT sum(salary) / count(salary) AS mean, avg(salary) FROM emp"
        )
        assert r.rows[0][0] == r.rows[0][1]

    def test_case_inside_aggregate(self, db):
        r = db.execute(
            "SELECT sum(CASE WHEN dept = 10 THEN 1 ELSE 0 END) FROM emp"
        )
        assert r.rows == [(2,)]

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name, count(*) FROM emp GROUP BY dept")

    def test_having_without_aggregation_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name FROM emp HAVING name = 'x'")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name FROM emp WHERE count(*) > 1")


class TestSubqueries:
    def test_uncorrelated_scalar(self, db):
        r = db.execute("SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
        assert r.rows == [("cyd",)]

    def test_scalar_subquery_multi_row_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT name FROM emp WHERE salary = (SELECT salary FROM emp)")

    def test_uncorrelated_in(self, db):
        r = db.execute(
            "SELECT name FROM emp WHERE dept IN (SELECT dept_id FROM dept WHERE dept_name = 'ops') ORDER BY name"
        )
        assert r.rows == [("cyd",), ("dee",)]

    def test_not_in_with_nulls_matches_nothing(self, db):
        db.execute("CREATE TABLE nullset (v INTEGER)")
        db.execute("INSERT INTO nullset VALUES (1), (NULL)")
        r = db.execute("SELECT id FROM emp WHERE id NOT IN (SELECT v FROM nullset)")
        assert r.rows == []  # SQL semantics: NULL in the set poisons NOT IN

    def test_not_in_without_nulls(self, db):
        r = db.execute(
            "SELECT dept_name FROM dept WHERE dept_id NOT IN (SELECT dept FROM emp WHERE dept IS NOT NULL)"
        )
        assert r.rows == [("empty",)]

    def test_correlated_exists(self, db):
        r = db.execute(
            "SELECT dept_name FROM dept WHERE EXISTS "
            "(SELECT 1 FROM emp WHERE dept = dept_id) ORDER BY dept_name"
        )
        assert r.rows == [("eng",), ("ops",)]

    def test_correlated_not_exists(self, db):
        r = db.execute(
            "SELECT dept_name FROM dept WHERE NOT EXISTS "
            "(SELECT 1 FROM emp WHERE dept = dept_id)"
        )
        assert r.rows == [("empty",)]

    def test_exists_with_residual_correlation(self, db):
        # Pairs in the same department with a *different* id (Q21 shape).
        r = db.execute(
            "SELECT name FROM emp e1 WHERE EXISTS "
            "(SELECT 1 FROM emp e2 WHERE e2.dept = e1.dept AND e2.id <> e1.id) "
            "ORDER BY name"
        )
        assert r.rows == [("ada",), ("bob",), ("cyd",), ("dee",)]

    def test_correlated_scalar_aggregate(self, db):
        # Highest-paid per department (Q2/Q17 shape).
        r = db.execute(
            "SELECT name FROM emp e WHERE salary = "
            "(SELECT max(salary) FROM emp e2 WHERE e2.dept = e.dept) ORDER BY name"
        )
        assert r.rows == [("ada",), ("cyd",)]

    def test_uncorrelated_exists_true(self, db):
        assert len(db.execute("SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept)").rows) == 5

    def test_uncorrelated_exists_false(self, db):
        r = db.execute(
            "SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE dept_id = 999)"
        )
        assert r.rows == []

    def test_in_subquery_with_having(self, db):
        # Q18 shape: IN over a grouped/HAVING subquery.
        r = db.execute(
            "SELECT dept_name FROM dept WHERE dept_id IN "
            "(SELECT dept FROM emp GROUP BY dept HAVING count(*) >= 2)"
            " ORDER BY dept_name"
        )
        assert r.rows == [("eng",), ("ops",)]

    def test_derived_table(self, db):
        r = db.execute(
            "SELECT d, total FROM "
            "(SELECT dept AS d, sum(salary) AS total FROM emp WHERE dept IS NOT NULL GROUP BY dept) sums "
            "WHERE total > 6000"
        )
        assert r.rows == [(20, 7500.0)]

    def test_nested_derived_tables(self, db):
        r = db.execute(
            "SELECT m FROM (SELECT max(t) AS m FROM "
            "(SELECT sum(salary) AS t FROM emp GROUP BY dept) inner_sums) outer_q"
        )
        assert r.rows == [(7500.0,)]


class TestDML:
    def test_insert_reorders_columns(self, db):
        db.execute("INSERT INTO dept (dept_name, dept_id) VALUES ('lab', 40)")
        r = db.execute("SELECT dept_id FROM dept WHERE dept_name = 'lab'")
        assert r.rows == [(40,)]

    def test_insert_partial_columns_fills_null(self, db):
        db.execute("INSERT INTO dept (dept_id) VALUES (50)")
        r = db.execute("SELECT dept_name FROM dept WHERE dept_id = 50")
        assert r.rows == [(None,)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE emp_backup (id INTEGER, name TEXT)")
        result = db.execute("INSERT INTO emp_backup SELECT id, name FROM emp")
        assert result.rowcount == 5
        assert db.execute("SELECT count(*) FROM emp_backup").scalar() == 5

    def test_update(self, db):
        r = db.execute("UPDATE emp SET salary = salary + 100 WHERE dept = 10")
        assert r.rowcount == 2
        assert db.execute("SELECT sum(salary) FROM emp WHERE dept = 10").scalar() == 5700.0

    def test_update_all_rows(self, db):
        r = db.execute("UPDATE dept SET dept_name = 'x'")
        assert r.rowcount == 3

    def test_delete(self, db):
        r = db.execute("DELETE FROM emp WHERE salary IS NULL")
        assert r.rowcount == 1
        assert db.execute("SELECT count(*) FROM emp").scalar() == 4

    def test_delete_all(self, db):
        db.execute("DELETE FROM dept")
        assert db.execute("SELECT count(*) FROM dept").scalar() == 0

    def test_params(self, db):
        r = db.execute("SELECT name FROM emp WHERE id = ? OR name = ?", (1, "cyd"))
        assert sorted(r.rows) == [("ada",), ("cyd",)]

    def test_params_in_insert(self, db):
        db.execute("INSERT INTO dept VALUES (?, ?)", (60, "io"))
        assert db.execute("SELECT dept_name FROM dept WHERE dept_id = 60").scalar() == "io"

    def test_missing_param_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute("SELECT 1 FROM emp WHERE id = ?")

    def test_drop_table(self, db):
        db.execute("DROP TABLE dept")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM dept")

    def test_scalar_on_empty_result(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT id FROM emp WHERE id = 999").scalar()


class TestMetering:
    def test_scan_counts_rows(self, db):
        before = db.meter.rows_scanned
        db.execute("SELECT * FROM emp")
        assert db.meter.rows_scanned - before == 5

    def test_output_counted(self, db):
        before = db.meter.rows_output
        db.execute("SELECT * FROM emp WHERE dept = 10")
        assert db.meter.rows_output - before == 2

    def test_join_memory_tracked(self, db):
        before = db.meter.peak_memory_bytes
        db.execute("SELECT count(*) FROM emp, dept WHERE dept = dept_id")
        assert db.meter.peak_memory_bytes >= before

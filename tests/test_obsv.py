"""Adversary-view observability: taps, leakage meter, flight recorder.

The observable-event layer models what a bus/NVMe/network adversary sees.
These tests pin its three contracts: observation never perturbs the
system (byte-identical rows, meters and simulated time with taps on or
off), the record is evidence (audit-chain digests on observable traces
verify against the monitor's logs), and violations leave exactly one
correlated incident behind.
"""

from __future__ import annotations

import pytest

from repro.core import Deployment, RunConfig
from repro.core.client import register_client
from repro.errors import IntegrityError
from repro.sim import CostModel, Meter
from repro.telemetry import (
    FlightRecorder,
    Histogram,
    ObservableEvent,
    ObservableTrace,
    Span,
    Trace,
    leakage_report,
    read_obsv_jsonl,
    render_diff,
    render_summary,
    span_histograms,
    verify_trace_audit,
    write_obsv_jsonl,
)
from repro.telemetry.obsv import OBSV_COUNTERS
from repro.telemetry.obsv.cli import main as leak_main
from repro.telemetry.obsv.leakage import (
    access_pattern_divergence,
    byte_count_variance,
    compare_traces,
    mutual_information_bits,
    pairwise_distinguishability,
)

ALL_CONFIGS = ("hons", "hos", "vcs", "scs", "sos")

QUERY = (
    "SELECT count(*), sum(l_extendedprice) FROM lineitem "
    "WHERE l_orderkey >= 1 AND l_orderkey <= 40"
)


def _window_query(lo: int, hi: int) -> str:
    return (
        "SELECT count(*), sum(l_extendedprice) FROM lineitem "
        f"WHERE l_orderkey >= {lo} AND l_orderkey <= {hi}"
    )


@pytest.fixture(scope="module")
def observed():
    """An attested deployment with taps enabled, plus its recorder."""
    deployment = Deployment(scale_factor=0.001, seed=11)
    deployment.attest_all()
    recorder = deployment.enable_observability()
    return deployment, recorder


@pytest.fixture(scope="module")
def plain():
    """The identically-seeded control: no tracing, no taps."""
    deployment = Deployment(scale_factor=0.001, seed=11)
    deployment.attest_all()
    return deployment


# ---------------------------------------------------------------------------
# Observation must not perturb the system
# ---------------------------------------------------------------------------


class TestByteIdentity:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_taps_do_not_change_rows_meters_or_sim_time(
        self, observed, plain, config
    ):
        tapped, _ = observed
        expected = plain.run_query(QUERY, config)
        actual = tapped.run_query(QUERY, config)
        assert actual.rows == expected.rows
        assert actual.storage_meter == expected.storage_meter
        assert actual.host_meter == expected.host_meter
        assert actual.breakdown.total_ns == expected.breakdown.total_ns

    def test_obsv_counters_are_free_in_the_cost_model(self):
        cm = CostModel()
        meter = Meter()
        meter.pages_read = 25
        meter.bytes_read = 25 * 4096
        baseline = cm.phase_breakdown(meter, platform="x86").total_ns
        for name in OBSV_COUNTERS:
            meter.bump(name, 10_000)
        assert cm.phase_breakdown(meter, platform="x86").total_ns == baseline


# ---------------------------------------------------------------------------
# The observable record is evidence
# ---------------------------------------------------------------------------


class TestObservableTraces:
    def test_query_yields_device_events_and_stable_fingerprint(self, observed):
        deployment, recorder = observed
        deployment.run_query(QUERY, "sos")
        first = recorder.last_trace()
        deployment.run_query(QUERY, "sos")
        second = recorder.last_trace()
        assert first is not second
        assert first.indices("device", "read")  # the scan is visible
        assert first.fingerprint() == second.fingerprint()

    def test_scs_query_is_observed_on_the_link(self, observed):
        deployment, recorder = observed
        deployment.run_query(QUERY, "scs")
        trace = recorder.last_trace()
        assert "channel" in trace.channels()  # ciphertext sizes observed

    def test_scs_trace_carries_verifiable_audit_digests(self):
        """A policy with a ``logUpdate`` obligation stamps the observable
        trace with the same chain digests as the span trace."""
        deployment = Deployment(scale_factor=0.001, seed=11)
        deployment.attest_all()
        recorder = deployment.enable_observability()
        client = register_client(deployment, "alice")
        deployment.monitor.provision_database(
            "tpch",
            policy_text=(
                f"read :- sessionKeyIs('{client.fingerprint}') & logUpdate(reads)"
            ),
        )
        client.submit(
            deployment, "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25"
        )
        trace = recorder.last_trace()
        logs = {ref["log"] for ref in trace.audit}
        assert "reads" in logs  # the logUpdate obligation is in the record
        assert verify_trace_audit(trace, deployment.monitor) == len(trace.audit)

    def test_concurrent_sessions_yield_separable_verified_traces(self, observed):
        deployment, recorder = observed
        before = len(recorder.traces)
        queries = [_window_query(1 + 10 * i, 30 + 10 * i) for i in range(3)]
        deployment.run_concurrent(queries, workers=2, config="scs")
        traces = recorder.traces[before:]
        assert len(traces) == 3
        sessions = [t.session for t in traces]
        assert all(sessions) and len(set(sessions)) == 3
        for trace in traces:
            assert verify_trace_audit(trace, deployment.monitor) > 0

    def test_round_trip_through_jsonl(self, observed, tmp_path):
        _, recorder = observed
        path = tmp_path / "obsv.jsonl"
        write_obsv_jsonl(path, recorder.traces[:3])
        loaded = read_obsv_jsonl(path)
        assert [t.to_dict() for t in loaded] == [
            t.to_dict() for t in recorder.traces[:3]
        ]

    def test_jsonl_rejects_foreign_records(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"type": "span", "name": "query"}\n')
        with pytest.raises(ValueError):
            read_obsv_jsonl(path)


# ---------------------------------------------------------------------------
# Leakage meter
# ---------------------------------------------------------------------------


def _synthetic_trace(obsv_id, indices, nbytes=4096, probe=None):
    trace = ObservableTrace(obsv_id)
    for pgno in indices:
        trace.add(ObservableEvent("device", "read", pgno, nbytes, actor="dev"))
    if probe is not None:
        trace.attributes["probe"] = probe
    return trace


class TestLeakageMeter:
    def test_identical_traces_are_leak_free(self):
        traces = [_synthetic_trace(f"o{i}", [1, 2, 3]) for i in range(4)]
        assert pairwise_distinguishability(traces) == 0.0
        assert access_pattern_divergence(traces, "device") == 0.0
        report = leakage_report(traces)
        assert report.leak_free and report.mi_bits == 0.0
        assert report.distinct_fingerprints == 1

    def test_disjoint_patterns_fully_distinguishable(self):
        traces = [
            _synthetic_trace("o0", [1, 2], probe="c0"),
            _synthetic_trace("o1", [3, 4], probe="c1"),
        ]
        assert pairwise_distinguishability(traces) == 1.0
        assert access_pattern_divergence(traces, "device") == 1.0
        # Two equiprobable constants, perfectly separated: 1 bit.
        assert leakage_report(traces).mi_bits == pytest.approx(1.0)

    def test_mutual_information_is_zero_when_fingerprints_collide(self):
        pairs = [("c0", "fp"), ("c1", "fp"), ("c0", "fp"), ("c1", "fp")]
        assert mutual_information_bits(pairs) == 0.0

    def test_byte_count_variance_sees_size_channel(self):
        same = [_synthetic_trace(f"o{i}", [1], nbytes=4096) for i in range(3)]
        mixed = [
            _synthetic_trace("o0", [1], nbytes=100),
            _synthetic_trace("o1", [1], nbytes=300),
        ]
        assert byte_count_variance(same, "device") == 0.0
        assert byte_count_variance(mixed, "device") > 0.0

    def test_compare_traces_localizes_first_divergence(self):
        a = _synthetic_trace("oa", [1, 2, 3])
        b = _synthetic_trace("ob", [1, 2, 9])
        result = compare_traces(a, b)
        assert not result["identical"]
        assert result["first_divergence"]["index"] == 2
        assert result["channels"]["device"]["shared"] == 2

    def test_zone_maps_make_constants_distinguishable(self, observed):
        """End to end: skip-scans leak the predicate, full scans do not."""
        deployment, recorder = observed
        arms = {}
        for zone_maps in (False, True):
            traces = []
            for i in range(3):
                deployment.run_query(
                    _window_query(1 + 15 * i, 20 + 15 * i),
                    "sos",
                    run_config=RunConfig(zone_maps=zone_maps),
                )
                trace = recorder.last_trace()
                trace.attributes["probe"] = f"c{i}"
                traces.append(trace)
            arms[zone_maps] = leakage_report(traces)
        assert arms[False].leak_free
        assert not arms[True].leak_free
        assert arms[True].mi_bits > 0.0


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.note("s", ObservableEvent("device", "read", i, 1))
        tail = flight.ring_tail()
        assert len(tail) == 4
        assert [e["index"] for e in tail] == [6, 7, 8, 9]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_tamper_during_scan_dumps_exactly_one_incident(self, tmp_path):
        deployment = Deployment(scale_factor=0.001, seed=11)
        deployment.attest_all()
        recorder = deployment.enable_observability(flight_dir=str(tmp_path))
        victim = deployment.storage_engine.db.store.pages_of("lineitem")[0]
        deployment.secure_device.corrupt(victim, offset=100)
        with pytest.raises(IntegrityError):
            deployment.run_query(QUERY, "scs")

        incidents = recorder.flight.incidents
        assert len(incidents) == 1
        incident = incidents[0]
        assert incident["page"] == victim
        assert incident["node"] == "storage-1"
        assert recorder.meter_snapshot()["flight_dump_count"] == 1
        assert recorder.last_trace().status == "error"

        # The incident's audit head is real evidence: the digest matches
        # the monitor's operations chain at that sequence number.
        head = incident["audit_head"]
        log = deployment.monitor.audit_log(head["log"])
        entry = log.entries[head["sequence"]]
        assert entry.sequence == head["sequence"]
        assert entry.digest().hex() == head["digest"]

        dump = tmp_path / "incident-0000.jsonl"
        assert dump.exists()
        header = dump.read_text().splitlines()[0]
        assert '"incident"' in header


# ---------------------------------------------------------------------------
# CLI + render satellites
# ---------------------------------------------------------------------------


class TestLeakCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        traces = [
            _synthetic_trace("o0", [1, 2], probe="c0"),
            _synthetic_trace("o1", [3, 4], probe="c1"),
        ]
        for trace in traces:
            trace.attributes["group"] = "demo"
        path = tmp_path / "obsv.jsonl"
        write_obsv_jsonl(path, traces)
        return str(path)

    def test_report(self, trace_file, capsys):
        assert leak_main(["report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "group demo" in out and "device" in out

    def test_compare(self, trace_file, capsys):
        assert leak_main(["compare", trace_file, trace_file, "--b-id", "o1"]) == 0
        out = capsys.readouterr().out
        assert "DISTINGUISHABLE" in out

    def test_sweep(self, trace_file, capsys):
        assert leak_main(["sweep", trace_file]) == 0
        assert "demo" in capsys.readouterr().out

    def test_malformed_file_exits_2(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SystemExit) as excinfo:
            leak_main(["report", str(path)])
        assert excinfo.value.code == 2

    def test_repro_trace_malformed_file_exits_2(self, tmp_path):
        from repro.telemetry.cli import main as trace_main

        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SystemExit) as excinfo:
            trace_main(["summary", str(path)])
        assert excinfo.value.code == 2


def _span_trace(trace_id, names_and_ns):
    trace = Trace(trace_id)
    for i, (name, sim_ns) in enumerate(names_and_ns, start=1):
        span = Span(name=name, span_id=i, trace_id=trace_id)
        span.set_sim_ns(sim_ns)
        trace.add(span)
    return trace


class TestSpanHistograms:
    def test_percentiles_are_nearest_rank(self):
        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.p50 == 50.0
        assert histogram.p95 == 95.0
        assert histogram.p99 == 99.0

    def test_span_histograms_and_summary_columns(self):
        traces = [
            _span_trace("t0", [("scan", 1e6), ("scan", 3e6)]),
            _span_trace("t1", [("scan", 2e6)]),
        ]
        by_name = span_histograms(traces)
        assert by_name["scan"].count == 3
        assert by_name["scan"].p50 == 2.0  # milliseconds
        summary = render_summary(traces)
        assert "p95" in summary and "p99" in summary

    def test_diff_marks_new_and_gone_spans(self):
        before = [_span_trace("t0", [("scan", 1e6), ("join", 1e6)])]
        after = [_span_trace("t1", [("scan", 1e6), ("ship", 1e6)])]
        diff = render_diff(before, after)
        assert "new" in diff and "gone" in diff

"""Trusted monitor: audit log, attestation service, authorization path."""

from __future__ import annotations

import pytest

from repro.crypto import Rng, generate_keypair
from repro.errors import (
    AccessDenied,
    AttestationError,
    ComplianceError,
    IntegrityError,
    MonitorError,
    SignatureError,
)
from repro.monitor import (
    AuditLog,
    KeyManager,
    TrustedMonitor,
    export_signed,
    verify_export,
    verify_proof,
)
from repro.monitor.attestation import AttestationService
from repro.sim import CostModel, SimClock
from repro.sql.parser import parse
from repro.tee.sgx import IntelAttestationService, SgxPlatform
from repro.tee.trustzone import AttestationTA, DeviceVendor, TrustedOS


class TestAuditLog:
    def test_chain_verifies(self):
        log = AuditLog("l")
        for i in range(5):
            log.append(i, "client", "query", f"q{i}")
        log.verify_chain()

    def test_in_place_edit_detected(self):
        log = AuditLog("l")
        log.append(0, "c", "query", "a")
        log.append(1, "c", "query", "b")
        entry = log.entries[0]
        log.entries[0] = type(entry)(
            sequence=entry.sequence,
            timestamp=entry.timestamp,
            client_key=entry.client_key,
            action=entry.action,
            detail="FORGED",
            prev_digest=entry.prev_digest,
        )
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_deletion_detected(self):
        log = AuditLog("l")
        for i in range(3):
            log.append(i, "c", "query", f"q{i}")
        del log.entries[1]
        with pytest.raises(IntegrityError):
            log.verify_chain()

    def test_entries_for_filters_by_client(self):
        log = AuditLog("l")
        log.append(0, "alice", "query", "a")
        log.append(1, "bob", "query", "b")
        log.append(2, "alice", "query", "c")
        assert len(log.entries_for("alice")) == 2
        assert len(log.entries_for()) == 3

    def test_signed_export_roundtrip(self):
        key = generate_keypair(Rng("log"))
        log = AuditLog("l")
        log.append(0, "c", "query", "x")
        export = export_signed(log, key)
        verify_export(export, log, key.public_key)

    def test_truncation_after_export_detected(self):
        key = generate_keypair(Rng("log2"))
        log = AuditLog("l")
        log.append(0, "c", "query", "x")
        log.append(1, "c", "query", "y")
        export = export_signed(log, key)
        del log.entries[1]
        with pytest.raises(IntegrityError):
            verify_export(export, log, key.public_key)

    def test_forged_export_detected(self):
        key = generate_keypair(Rng("log3"))
        other = generate_keypair(Rng("log4"))
        log = AuditLog("l")
        log.append(0, "c", "query", "x")
        export = export_signed(log, other)
        with pytest.raises(IntegrityError):
            verify_export(export, log, key.public_key)

    def test_appending_after_export_is_fine(self):
        key = generate_keypair(Rng("log5"))
        log = AuditLog("l")
        log.append(0, "c", "q", "x")
        export = export_signed(log, key)
        log.append(1, "c", "q", "y")
        verify_export(export, log, key.public_key)


class TestKeyManager:
    def test_sessions_unique_keys(self):
        km = KeyManager(Rng("km"))
        s1 = km.open_session("c", "h", "s")
        s2 = km.open_session("c", "h", "s")
        assert s1.key != s2.key
        assert s1.session_id != s2.session_id

    def test_revocation_runs_cleanup(self):
        km = KeyManager(Rng("km2"))
        session = km.open_session("c", "h", "s")
        ran = []
        session.cleanup_hooks.append(lambda: ran.append(True))
        km.revoke(session.session_id)
        assert ran == [True]
        assert not session.active

    def test_double_revoke_rejected(self):
        km = KeyManager(Rng("km3"))
        session = km.open_session("c", "h", "s")
        km.revoke(session.session_id)
        with pytest.raises(MonitorError):
            km.revoke(session.session_id)

    def test_unknown_session_rejected(self):
        with pytest.raises(MonitorError):
            KeyManager(Rng("km4")).session("ghost")

    def test_active_sessions(self):
        km = KeyManager(Rng("km5"))
        s1 = km.open_session("c", "h", "s")
        km.open_session("c", "h", "s")
        km.revoke(s1.session_id)
        assert len(km.active_sessions()) == 1


@pytest.fixture()
def rig():
    """Full monitor rig: SGX host + TrustZone storage + monitor."""
    rng = Rng("monitor-rig")
    clock = SimClock()
    cm = CostModel()
    ias = IntelAttestationService(rng)
    platform = SgxPlatform("host-1", clock, cm, rng)
    ias.register_platform("host-1", platform.attestation_key.public_key)
    enclave = platform.create_enclave("host-engine", b"engine v1")

    vendor = DeviceVendor("vend", rng)
    device = vendor.provision_device("storage-1", location="eu-west")
    device.secure_boot(
        vendor.sign_firmware("optee", b"sw", "3.4"),
        vendor.sign_firmware("linux", b"nw", "5.4.3"),
    )
    tos = TrustedOS(device)
    tos.load_ta(AttestationTA(device))

    service = AttestationService(
        clock,
        cm,
        ias,
        {vendor.name: vendor.root_public_key},
        {enclave.measurement.hex()},
        {device.boot_state.normal_world_measurement.hex()},
    )
    monitor = TrustedMonitor(clock, cm, service, rng, latest_fw={"storage": "5.4.3"})

    host_node = service.attest_host(
        enclave.generate_quote(rng.bytes(16)), location="eu-central", fw_version="1.0"
    )
    monitor.register_host(host_node)
    challenge = rng.bytes(16)
    quote, chain = tos.invoke("attestation", "attest", challenge)
    storage_node = service.attest_storage(quote, chain, challenge)
    monitor.register_storage(storage_node)

    return monitor, enclave, device, tos, service, rng


class TestAttestationService:
    def test_unexpected_host_measurement_rejected(self, rig):
        monitor, enclave, device, tos, service, rng = rig
        rogue = enclave.platform.create_enclave("rogue", b"evil engine")
        with pytest.raises(AttestationError, match="trusted build"):
            service.attest_host(
                rogue.generate_quote(b"c"), location="eu", fw_version="1.0"
            )

    def test_storage_challenge_replay_rejected(self, rig):
        monitor, enclave, device, tos, service, rng = rig
        quote, chain = tos.invoke("attestation", "attest", b"old-challenge-abc")
        with pytest.raises(AttestationError, match="replay"):
            service.attest_storage(quote, chain, b"fresh-challenge-xyz")

    def test_storage_unknown_vendor_rejected(self, rig):
        monitor, enclave, device, tos, service, rng = rig
        mallory = DeviceVendor("mallory", Rng("m"))
        dev = mallory.provision_device("storage-1", location="eu-west")
        dev.secure_boot(
            mallory.sign_firmware("optee", b"sw", "3.4"),
            mallory.sign_firmware("linux", b"nw", "5.4.3"),
        )
        challenge = b"c" * 16
        quote = dev.sign_attestation(challenge)
        with pytest.raises(AttestationError, match="vendor"):
            service.attest_storage(
                quote, dev.boot_state.certificate_chain, challenge
            )

    def test_storage_modified_image_rejected(self, rig):
        monitor, enclave, device, tos, service, rng = rig
        vendor = DeviceVendor("vend2", Rng("v2"))
        service.vendor_roots["vend2"] = vendor.root_public_key
        dev = vendor.provision_device("storage-9", location="eu")
        dev.secure_boot(
            vendor.sign_firmware("optee", b"sw", "3.4"),
            vendor.sign_firmware("linux", b"PATCHED normal world", "5.4.3"),
        )
        challenge = b"c" * 16
        quote = dev.sign_attestation(challenge)
        with pytest.raises(AttestationError, match="trusted build"):
            service.attest_storage(quote, dev.boot_state.certificate_chain, challenge)

    def test_attestation_charges_time(self, rig):
        monitor, enclave, device, tos, service, rng = rig
        assert service.clock.now_ms >= 689  # Table 4: 140 + 549


class TestAuthorization:
    POLICY = (
        "read :- sessionKeyIs(alice)\n"
        "read :- sessionKeyIs(bob) & le(T, expiry_ts)\n"
        "write :- sessionKeyIs(alice)\n"
    )

    def _provision(self, monitor):
        return monitor.provision_database(
            "db",
            self.POLICY,
            key_directory={"alice": "k-alice", "bob": "k-bob"},
            protected_tables={"persons"},
        )

    def test_authorize_read(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        auth = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1", now=10
        )
        assert auth.session.active
        verify_proof(auth.proof, monitor.public_key)

    def test_denied_client(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        with pytest.raises(AccessDenied):
            monitor.authorize(
                "db", "k-mallory", parse("SELECT 1 FROM persons"), host_id="host-1"
            )

    def test_write_permission_for_insert(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        stmt = parse("INSERT INTO persons (name) VALUES ('x')")
        auth = monitor.authorize("db", "k-alice", stmt, host_id="host-1", now=5)
        # Policy columns are appended at insert time.
        assert "expiry_ts" in auth.statement.columns
        with pytest.raises(AccessDenied):
            monitor.authorize("db", "k-bob", stmt, host_id="host-1")

    def test_expiry_rewrite_applied_for_bob(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        auth = monitor.authorize(
            "db", "k-bob", parse("SELECT name FROM persons"), host_id="host-1", now=777
        )
        assert "expiry_ts" in auth.statement.to_sql()
        assert "777" in auth.statement.to_sql()

    def test_exec_policy_filters_storage_nodes(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        auth = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1",
            exec_policy_text="storageLocIs(eu-west)",
        )
        assert auth.storage_node is not None
        auth = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1",
            exec_policy_text="storageLocIs(us-east)",
        )
        assert auth.storage_node is None  # falls back to host-only

    def test_noncompliant_host_refused(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        with pytest.raises(ComplianceError):
            monitor.authorize(
                "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1",
                exec_policy_text="hostLocIs(us-east)",
            )

    def test_unattested_host_rejected(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        with pytest.raises(MonitorError):
            monitor.authorize(
                "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="ghost-host"
            )

    def test_unprovisioned_database_rejected(self, rig):
        monitor = rig[0]
        with pytest.raises(MonitorError):
            monitor.authorize(
                "nope", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1"
            )

    def test_double_provision_rejected(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        with pytest.raises(MonitorError):
            self._provision(monitor)

    def test_proof_binds_query(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        a = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1",
            query_text="SELECT 1 FROM persons",
        )
        b = monitor.authorize(
            "db", "k-alice", parse("SELECT 2 FROM persons"), host_id="host-1",
            query_text="SELECT 2 FROM persons",
        )
        assert a.proof.query_digest != b.proof.query_digest

    def test_forged_proof_rejected(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        auth = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1"
        )
        forged = type(auth.proof)(
            query_digest=auth.proof.query_digest,
            policy_digest=auth.proof.policy_digest,
            host_measurement="0" * 64,  # claim a different host build
            storage_measurement=auth.proof.storage_measurement,
            session_id=auth.proof.session_id,
            timestamp=auth.proof.timestamp,
            signature=auth.proof.signature,
        )
        with pytest.raises(SignatureError):
            verify_proof(forged, monitor.public_key)

    def test_session_cleanup(self, rig):
        monitor = rig[0]
        self._provision(monitor)
        auth = monitor.authorize(
            "db", "k-alice", parse("SELECT 1 FROM persons"), host_id="host-1"
        )
        monitor.finish_session(auth.session.session_id)
        assert not auth.session.active

    def test_missing_audit_log_rejected(self, rig):
        monitor = rig[0]
        with pytest.raises(MonitorError):
            monitor.audit_log("nothing")

"""Core plumbing: secure channel and the automatic query partitioner."""

from __future__ import annotations

import pytest

from repro.core import QueryPartitioner, channel_pair
from repro.core.manual_partitions import MANUAL_PARTITIONS
from repro.crypto import Rng
from repro.errors import ChannelError
from repro.sim import CostModel, NetworkLink, SimClock
from repro.sql import memory_database
from repro.sql.parser import parse
from repro.tpch import ALL_QUERIES, create_all


@pytest.fixture()
def channel_rig():
    clock = SimClock()
    link = NetworkLink(clock, CostModel())
    link.register("host")
    link.register("storage")
    key = Rng("chan").bytes(32)
    host, storage = channel_pair(link, "host", "storage", key)
    return link, host, storage


class TestSecureChannel:
    def test_roundtrip(self, channel_rig):
        _, host, storage = channel_rig
        storage.send(b"filtered records")
        assert host.receive() == b"filtered records"

    def test_bidirectional(self, channel_rig):
        _, host, storage = channel_rig
        host.send(b"query")
        storage.send(b"rows")
        assert storage.receive() == b"query"
        assert host.receive() == b"rows"

    def test_payload_encrypted_on_wire(self, channel_rig):
        link, host, storage = channel_rig
        secret = b"VERY-SECRET-TUPLE-CONTENTS"
        storage.send(secret)
        # Peek at the raw frame before delivery.
        _, raw = link._endpoints["host"].inbox[0]
        assert secret not in raw
        assert host.receive() == secret

    def test_tamper_detected(self, channel_rig):
        link, host, storage = channel_rig
        storage.send(b"records")
        sender, raw = link._endpoints["host"].inbox.popleft()
        tampered = bytearray(raw)
        tampered[-1] ^= 0x01
        link._endpoints["host"].inbox.append((sender, bytes(tampered)))
        with pytest.raises(ChannelError, match="MAC"):
            host.receive()

    def test_replay_detected(self, channel_rig):
        link, host, storage = channel_rig
        storage.send(b"one")
        sender, raw = link._endpoints["host"].inbox[0]
        host.receive()
        link._endpoints["host"].inbox.append((sender, raw))  # replay
        with pytest.raises(ChannelError, match="replay|order"):
            host.receive()

    def test_wrong_session_key_fails(self):
        clock = SimClock()
        link = NetworkLink(clock, CostModel())
        link.register("host")
        link.register("storage")
        a, _ = channel_pair(link, "host", "storage", Rng("k1").bytes(32))
        from repro.core.channel import SecureChannel

        eavesdropper = SecureChannel(link, "storage", "host", Rng("k2").bytes(32))
        a.send(b"for the real peer")
        with pytest.raises(ChannelError):
            eavesdropper.receive()

    def test_short_record_rejected(self, channel_rig):
        link, host, _ = channel_rig
        link.send("storage", "host", b"tiny")
        with pytest.raises(ChannelError, match="short"):
            host.receive()

    def test_meter_counts_bytes(self, channel_rig):
        _, host, storage = channel_rig
        storage.send(bytes(1000))
        host.receive()
        assert storage.meter.channel_bytes_encrypted == 1000
        assert host.meter.channel_bytes_encrypted == 1000


@pytest.fixture(scope="module")
def tpch_catalog():
    db = memory_database()
    create_all(db)
    return db.store.catalog


class TestPartitioner:
    def test_simple_filter_pushed(self, tpch_catalog):
        plan = QueryPartitioner(tpch_catalog).partition(
            parse("SELECT l_orderkey FROM lineitem WHERE l_quantity < 24")
        )
        assert len(plan.scans) == 1
        scan = plan.scans[0]
        assert scan.table == "lineitem"
        assert scan.where is not None
        assert "l_quantity" in scan.to_sql()

    def test_column_pruning(self, tpch_catalog):
        plan = QueryPartitioner(tpch_catalog).partition(
            parse("SELECT l_orderkey, l_quantity FROM lineitem WHERE l_discount > 0.05")
        )
        assert set(plan.scans[0].columns) == {"l_orderkey", "l_quantity", "l_discount"}

    def test_join_predicates_not_pushed(self, tpch_catalog):
        plan = QueryPartitioner(tpch_catalog).partition(
            parse(
                "SELECT o_orderkey FROM orders, lineitem "
                "WHERE o_orderkey = l_orderkey AND o_totalprice > 1000"
            )
        )
        by_table = {s.table: s for s in plan.scans}
        assert by_table["orders"].where is not None  # single-table filter
        assert by_table["lineitem"].where is None  # join edge stays on host

    def test_multiple_occurrences_or_filters(self, tpch_catalog):
        sql = (
            "SELECT a.l_orderkey FROM lineitem a, lineitem b "
            "WHERE a.l_orderkey = b.l_orderkey "
            "AND a.l_quantity > 40 AND b.l_quantity < 5"
        )
        plan = QueryPartitioner(tpch_catalog).partition(parse(sql))
        scan = plan.scans[0]
        assert scan.where is not None
        assert "OR" in scan.to_sql()  # union of the two occurrences' filters

    def test_unfiltered_occurrence_ships_all(self, tpch_catalog):
        sql = (
            "SELECT a.l_orderkey FROM lineitem a, lineitem b "
            "WHERE a.l_orderkey = b.l_orderkey AND a.l_quantity > 40"
        )
        plan = QueryPartitioner(tpch_catalog).partition(parse(sql))
        assert plan.scans[0].where is None  # b needs every row

    def test_subquery_tables_included(self, tpch_catalog):
        sql = (
            "SELECT o_orderpriority FROM orders WHERE EXISTS "
            "(SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey "
            "AND l_commitdate < l_receiptdate)"
        )
        plan = QueryPartitioner(tpch_catalog).partition(parse(sql))
        tables = {s.table for s in plan.scans}
        assert tables == {"orders", "lineitem"}
        lineitem = next(s for s in plan.scans if s.table == "lineitem")
        assert lineitem.where is not None  # local filter travels

    def test_left_join_right_filter_pushed(self, tpch_catalog):
        plan = QueryPartitioner(tpch_catalog).partition(
            parse(ALL_QUERIES[13].sql)
        )
        orders = next(s for s in plan.scans if s.table == "orders")
        assert orders.where is not None
        assert "LIKE" in orders.to_sql()

    @pytest.mark.parametrize("number", sorted(ALL_QUERIES))
    def test_every_tpch_query_partitions(self, tpch_catalog, number):
        plan = QueryPartitioner(tpch_catalog).partition(parse(ALL_QUERIES[number].sql))
        assert plan.scans, f"Q{number} produced no storage scans"
        for scan in plan.scans:
            assert scan.columns, f"Q{number}: empty projection for {scan.table}"
            # Each scan must itself be valid SQL.
            parse(scan.to_sql())

    def test_partition_correctness_all_queries(self, tpch_catalog):
        """Running scans + original query over shipped tables must equal
        running the query directly (on a small dataset)."""
        from repro.sql import memory_database
        from repro.sql.catalog import TableSchema
        from repro.tpch import load_tpch

        db = memory_database()
        load_tpch(db, scale_factor=0.001, seed=3)
        partitioner = QueryPartitioner(db.store.catalog)
        for number, query in sorted(ALL_QUERIES.items()):
            direct = db.execute(query.sql)
            plan = partitioner.partition(parse(query.sql))
            host = memory_database()
            for scan in plan.scans:
                result = db.execute_statement(scan.to_select())
                schema = db.store.catalog.table(scan.table)
                host.store.create_table(
                    TableSchema(
                        name=scan.table,
                        columns=[(c, schema.column_type(c)) for c in scan.columns],
                    )
                )
                host.store.insert_rows(scan.table, result.rows)
            split = host.execute(query.sql)
            assert split.rows == direct.rows, f"Q{number} split results differ"


class TestManualPartitions:
    def test_manual_specs_parse(self):
        for number, manual in MANUAL_PARTITIONS.items():
            parse(manual.host_sql)
            for ship in manual.ships:
                parse(ship.sql)

    def test_manual_equivalence(self):
        from repro.sql import memory_database
        from repro.sql.catalog import TableSchema
        from repro.tpch import load_tpch

        db = memory_database()
        load_tpch(db, scale_factor=0.002, seed=9)
        for number, manual in MANUAL_PARTITIONS.items():
            direct = db.execute(ALL_QUERIES[number].sql)
            host = memory_database()
            for ship in manual.ships:
                result = db.execute(ship.sql)
                import datetime

                def type_of(i):
                    for row in result.rows:
                        if row[i] is not None:
                            if isinstance(row[i], int):
                                return "INTEGER"
                            if isinstance(row[i], float):
                                return "REAL"
                            if isinstance(row[i], datetime.date):
                                return "DATE"
                            return "TEXT"
                    return "TEXT"

                host.store.create_table(
                    TableSchema(
                        name=ship.table,
                        columns=[(c, type_of(i)) for i, c in enumerate(result.columns)],
                    )
                )
                host.store.insert_rows(ship.table, result.rows)
            split = host.execute(manual.host_sql)
            assert split.rows == direct.rows, f"Q{number} manual split differs"

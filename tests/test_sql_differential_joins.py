"""Second differential suite: randomized multi-table queries vs SQLite."""

from __future__ import annotations

import math
import sqlite3

import pytest

from repro.crypto import Rng
from repro.sql import memory_database


@pytest.fixture(scope="module")
def engines():
    rng = Rng("diff-joins")
    ours = memory_database()
    oracle = sqlite3.connect(":memory:")
    for db_exec in (ours.execute, oracle.execute):
        db_exec("CREATE TABLE fact (fk INTEGER, dim1 INTEGER, dim2 INTEGER, measure REAL)")
        db_exec("CREATE TABLE d1 (id INTEGER, name TEXT, bucket INTEGER)")
        db_exec("CREATE TABLE d2 (id INTEGER, region TEXT)")

    d1_rows = [(i, f"d1-{i % 7}", i % 3) for i in range(25)]
    d2_rows = [(i, ["north", "south", "east"][i % 3]) for i in range(12)]
    fact_rows = []
    for i in range(300):
        fact_rows.append(
            (
                i,
                rng.randint(0, 30),   # some fks dangle past d1's ids
                rng.randint(0, 11),
                round(rng.random() * 50, 2) if rng.random() > 0.05 else None,
            )
        )
    ours.store.insert_rows("d1", d1_rows)
    ours.store.insert_rows("d2", d2_rows)
    ours.store.insert_rows("fact", [(r[0], r[1], r[2], r[3]) for r in fact_rows])
    oracle.executemany("INSERT INTO d1 VALUES (?,?,?)", d1_rows)
    oracle.executemany("INSERT INTO d2 VALUES (?,?)", d2_rows)
    oracle.executemany("INSERT INTO fact VALUES (?,?,?,?)", fact_rows)
    return ours, oracle


def _check(engines, sql, ordered=False):
    ours, oracle = engines
    a = [tuple(round(v, 6) if isinstance(v, float) else v for v in r) for r in ours.execute(sql).rows]
    b = [tuple(round(float(v), 6) if isinstance(v, float) else v for v in r) for r in oracle.execute(sql).fetchall()]
    if not ordered:
        a, b = sorted(a, key=repr), sorted(b, key=repr)
    assert len(a) == len(b), f"{sql}: {len(a)} vs {len(b)}"
    for ra, rb in zip(a, b):
        for x, y in zip(ra, rb):
            if isinstance(x, float) and y is not None:
                assert math.isclose(x, float(y), rel_tol=1e-9, abs_tol=1e-9)
            else:
                assert x == y, (sql, ra, rb)


FIXED = [
    "SELECT d1.name, count(*) FROM fact, d1 WHERE fact.dim1 = d1.id GROUP BY d1.name",
    "SELECT d2.region, sum(fact.measure) FROM fact, d2 WHERE fact.dim2 = d2.id GROUP BY d2.region",
    "SELECT d1.bucket, d2.region, count(*) FROM fact, d1, d2 "
    "WHERE fact.dim1 = d1.id AND fact.dim2 = d2.id GROUP BY d1.bucket, d2.region",
    "SELECT d1.name, count(fact.fk) FROM d1 LEFT OUTER JOIN fact ON fact.dim1 = d1.id "
    "GROUP BY d1.name",
    "SELECT count(*) FROM fact WHERE dim1 NOT IN (SELECT id FROM d1)",
    "SELECT fact.fk FROM fact WHERE EXISTS "
    "(SELECT 1 FROM d1 WHERE d1.id = fact.dim1 AND d1.bucket = 2) AND fact.measure > 45",
    "SELECT d1.id FROM d1 WHERE NOT EXISTS (SELECT 1 FROM fact WHERE fact.dim1 = d1.id)",
    "SELECT b, mx FROM (SELECT bucket AS b, max(id) AS mx FROM d1 GROUP BY bucket) s WHERE mx > 10",
    "SELECT fact.fk, d1.name FROM fact, d1 "
    "WHERE fact.dim1 = d1.id AND fact.measure IS NULL",
    "SELECT d2.region, avg(fact.measure) FROM fact, d2 WHERE fact.dim2 = d2.id "
    "GROUP BY d2.region HAVING count(*) > 50",
]


@pytest.mark.parametrize("sql", FIXED, ids=[s[:55] for s in FIXED])
def test_fixed_join_queries(engines, sql):
    _check(engines, sql)


def test_randomized_join_aggregates(engines):
    rng = Rng("join-sweep")
    aggs = ["count(*)", "sum(fact.measure)", "avg(fact.measure)", "max(fact.measure)"]
    groups = ["d1.name", "d1.bucket", "d2.region"]
    for _ in range(40):
        agg = rng.choice(aggs)
        group = rng.choice(groups)
        lo = rng.randint(0, 40)
        sql = (
            f"SELECT {group}, {agg} FROM fact, d1, d2 "
            f"WHERE fact.dim1 = d1.id AND fact.dim2 = d2.id AND fact.measure > {lo} "
            f"GROUP BY {group}"
        )
        _check(engines, sql)


def test_randomized_semijoins(engines):
    rng = Rng("semi-sweep")
    for _ in range(25):
        bucket = rng.randint(0, 2)
        neg = "NOT " if rng.random() < 0.5 else ""
        sql = (
            f"SELECT count(*) FROM fact WHERE {neg}EXISTS "
            f"(SELECT 1 FROM d1 WHERE d1.id = fact.dim1 AND d1.bucket = {bucket})"
        )
        _check(engines, sql)


def test_order_by_limit_agreement(engines):
    for sql in [
        "SELECT fk, measure FROM fact WHERE measure IS NOT NULL ORDER BY measure DESC, fk LIMIT 15",
        "SELECT d1.name, count(*) AS n FROM fact, d1 WHERE fact.dim1 = d1.id "
        "GROUP BY d1.name ORDER BY n DESC, d1.name LIMIT 4",
    ]:
        _check(engines, sql, ordered=True)

"""Multi-node placement: the monitor picks compliant storage nodes.

The paper's monitor "checks which of the host and storage nodes comply
with the execution policy" and "sends the list of compliant storage
nodes" (§4.2) — exercised here with a fleet of storage servers in
different regions and firmware versions.
"""

from __future__ import annotations

import pytest

from repro.crypto import Rng
from repro.errors import ComplianceError
from repro.monitor import AttestationService, TrustedMonitor
from repro.sim import CostModel, SimClock
from repro.sql.parser import parse
from repro.tee.sgx import IntelAttestationService, SgxPlatform
from repro.tee.trustzone import AttestationTA, DeviceVendor, TrustedOS

FLEET = [
    ("storage-eu-1", "eu-west", "5.4.3"),
    ("storage-eu-2", "eu-north", "5.4.1"),
    ("storage-us-1", "us-east", "5.4.3"),
]


@pytest.fixture(scope="module")
def fleet_rig():
    rng = Rng("fleet")
    clock = SimClock()
    cm = CostModel()
    ias = IntelAttestationService(rng)
    platform = SgxPlatform("host-1", clock, cm, rng)
    ias.register_platform("host-1", platform.attestation_key.public_key)
    enclave = platform.create_enclave("host-engine", b"engine")

    vendor = DeviceVendor("fleet-vendor", rng)
    expected_storage = set()
    nodes = []
    for device_id, location, fw in FLEET:
        device = vendor.provision_device(device_id, location=location)
        device.secure_boot(
            vendor.sign_firmware("optee", b"sw", "3.4"),
            vendor.sign_firmware("linux", f"nw {fw}".encode(), fw),
        )
        tos = TrustedOS(device)
        tos.load_ta(AttestationTA(device))
        expected_storage.add(device.boot_state.normal_world_measurement.hex())
        nodes.append((device, tos))

    service = AttestationService(
        clock, cm, ias,
        {vendor.name: vendor.root_public_key},
        {enclave.measurement.hex()},
        expected_storage,
    )
    monitor = TrustedMonitor(
        clock, cm, service, rng, latest_fw={"storage": "5.4.3", "host": "1.0"}
    )
    host_node = service.attest_host(
        enclave.generate_quote(rng.bytes(16)), location="eu-central", fw_version="1.0"
    )
    monitor.register_host(host_node)
    for device, tos in nodes:
        challenge = rng.bytes(16)
        quote, chain = tos.invoke("attestation", "attest", challenge)
        monitor.register_storage(service.attest_storage(quote, chain, challenge))
    monitor.provision_database("db", "read :- sessionKeyIs(k)\n", key_directory={"k": "k"})
    return monitor, host_node


def _compliant_ids(monitor, host, policy):
    nodes = monitor.compliant_storage_nodes(policy, "k", host.config, now=0)
    return sorted(n.config.node_id for n in nodes)


class TestPlacement:
    def test_no_policy_all_nodes(self, fleet_rig):
        monitor, host = fleet_rig
        assert len(_compliant_ids(monitor, host, None)) == 3

    def test_location_filter(self, fleet_rig):
        monitor, host = fleet_rig
        assert _compliant_ids(monitor, host, "storageLocIs(eu-west, eu-north)") == [
            "storage-eu-1",
            "storage-eu-2",
        ]

    def test_firmware_floor(self, fleet_rig):
        monitor, host = fleet_rig
        assert _compliant_ids(monitor, host, "fwVersionStorage('5.4.2')") == [
            "storage-eu-1",
            "storage-us-1",
        ]

    def test_latest_firmware(self, fleet_rig):
        monitor, host = fleet_rig
        assert _compliant_ids(monitor, host, "fwVersionStorage(latest)") == [
            "storage-eu-1",
            "storage-us-1",
        ]

    def test_conjunction(self, fleet_rig):
        monitor, host = fleet_rig
        policy = "storageLocIs(eu-west, eu-north) & fwVersionStorage(latest)"
        assert _compliant_ids(monitor, host, policy) == ["storage-eu-1"]

    def test_disjunction(self, fleet_rig):
        monitor, host = fleet_rig
        policy = "storageLocIs(us-east) | fwVersionStorage('5.4.0')"
        assert len(_compliant_ids(monitor, host, policy)) == 3

    def test_empty_set_falls_back_to_host(self, fleet_rig):
        monitor, host = fleet_rig
        auth = monitor.authorize(
            "db", "k", parse("SELECT 1 FROM t"), host_id="host-1",
            exec_policy_text="storageLocIs(antarctica)",
        )
        assert auth.storage_node is None

    def test_authorize_picks_compliant_node(self, fleet_rig):
        monitor, host = fleet_rig
        auth = monitor.authorize(
            "db", "k", parse("SELECT 1 FROM t"), host_id="host-1",
            exec_policy_text="storageLocIs(us-east)",
        )
        assert auth.storage_node.node_id == "storage-us-1"
        assert auth.proof.storage_measurement != "-"

    def test_host_and_storage_constraints_together(self, fleet_rig):
        monitor, host = fleet_rig
        with pytest.raises(ComplianceError):
            monitor.authorize(
                "db", "k", parse("SELECT 1 FROM t"), host_id="host-1",
                exec_policy_text="hostLocIs(us-east) & storageLocIs(us-east)",
            )

"""Secure storage: block device, Merkle tree, plain and secure pagers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import Rng
from repro.errors import FreshnessError, IntegrityError, StorageError
from repro.storage import (
    PAYLOAD_SIZE,
    BlockDevice,
    InMemoryAnchor,
    MerkleTree,
    Pager,
    SecurePager,
)

_RNG = Rng("storage-tests")


class TestBlockDevice:
    def test_roundtrip(self):
        dev = BlockDevice()
        dev.write_page(0, bytes(4096))
        assert dev.read_page(0) == bytes(4096)

    def test_wrong_size_rejected(self):
        with pytest.raises(StorageError):
            BlockDevice().write_page(0, bytes(100))

    def test_missing_page_rejected(self):
        with pytest.raises(StorageError):
            BlockDevice().read_page(7)

    def test_negative_page_rejected(self):
        with pytest.raises(StorageError):
            BlockDevice().read_page(-1)
        with pytest.raises(StorageError):
            BlockDevice().write_page(-1, bytes(4096))

    def test_meta_region(self):
        dev = BlockDevice()
        assert dev.read_meta("missing") is None
        dev.write_meta("k", b"v")
        assert dev.read_meta("k") == b"v"

    def test_snapshot_restore(self):
        dev = BlockDevice()
        dev.write_page(0, b"A" * 4096)
        snap = dev.snapshot()
        dev.write_page(0, b"B" * 4096)
        dev.restore(snap)
        assert dev.read_page(0) == b"A" * 4096

    def test_fork_is_independent(self):
        dev = BlockDevice()
        dev.write_page(0, b"X" * 4096)
        clone = dev.fork("clone")
        clone.write_page(0, b"Y" * 4096)
        assert dev.read_page(0) == b"X" * 4096

    def test_corrupt_flips_bits(self):
        dev = BlockDevice()
        dev.write_page(0, bytes(4096))
        dev.corrupt(0, offset=10)
        assert dev.raw_page(0)[10] == 0xFF

    def test_meter_counts(self):
        dev = BlockDevice()
        dev.write_page(0, bytes(4096))
        dev.read_page(0)
        assert dev.meter.pages_written == 1
        assert dev.meter.pages_read == 1


class TestMerkleTree:
    def test_root_changes_on_update(self):
        tree = MerkleTree(b"key", 8)
        before = tree.root
        tree.update_leaf(3, b"d" * 32)
        assert tree.root != before

    def test_verify_leaf_ok(self):
        tree = MerkleTree(b"key", 8)
        digest = b"x" * 32
        root = tree.update_leaf(5, digest)
        tree.verify_leaf(5, digest, root)

    def test_verify_wrong_digest_fails(self):
        tree = MerkleTree(b"key", 8)
        root = tree.update_leaf(5, b"x" * 32)
        with pytest.raises(IntegrityError):
            tree.verify_leaf(5, b"y" * 32, root)

    def test_verify_stale_root_fails(self):
        tree = MerkleTree(b"key", 8)
        old_root = tree.update_leaf(5, b"x" * 32)
        tree.update_leaf(2, b"z" * 32)
        with pytest.raises(IntegrityError):
            tree.verify_leaf(5, b"x" * 32, old_root)

    def test_key_matters(self):
        t1 = MerkleTree(b"key1", 4)
        t2 = MerkleTree(b"key2", 4)
        t1.update_leaf(0, b"a" * 32)
        t2.update_leaf(0, b"a" * 32)
        assert t1.root != t2.root

    def test_growth_preserves_leaves(self):
        tree = MerkleTree(b"key", 2)
        tree.update_leaf(0, b"a" * 32)
        tree.update_leaf(100, b"b" * 32)  # forces growth
        root = tree.root
        tree.verify_leaf(0, b"a" * 32, root)
        tree.verify_leaf(100, b"b" * 32, root)

    def test_serialization_roundtrip(self):
        tree = MerkleTree(b"key", 8)
        for i in range(8):
            tree.update_leaf(i, bytes([i]) * 32)
        blob = tree.serialize_leaves()
        restored = MerkleTree.from_serialized(b"key", blob)
        assert restored.root == tree.root

    def test_corrupt_serialization_rejected(self):
        with pytest.raises(IntegrityError):
            MerkleTree.from_serialized(b"key", b"odd-length-blob")

    def test_position_matters(self):
        """Swapping two identical-content leaves changes nothing, but
        swapping distinct leaves must change the root (anti-displacement)."""
        t1 = MerkleTree(b"key", 4)
        t1.update_leaf(0, b"a" * 32)
        t1.update_leaf(1, b"b" * 32)
        t2 = MerkleTree(b"key", 4)
        t2.update_leaf(0, b"b" * 32)
        t2.update_leaf(1, b"a" * 32)
        assert t1.root != t2.root

    def test_size_proportional_to_leaves(self):
        small = MerkleTree(b"k", 10)
        big = MerkleTree(b"k", 1000)
        assert big.size_bytes() > small.size_bytes()

    def test_zero_leaves_rejected(self):
        with pytest.raises(IntegrityError):
            MerkleTree(b"k", 0)

    @settings(max_examples=20, deadline=None)
    @given(updates=st.lists(st.tuples(st.integers(0, 63), st.binary(min_size=32, max_size=32)), max_size=20))
    def test_verify_after_any_updates(self, updates):
        tree = MerkleTree(b"prop", 64)
        final: dict[int, bytes] = {}
        for index, digest in updates:
            tree.update_leaf(index, digest)
            final[index] = digest
        root = tree.root
        for index, digest in final.items():
            tree.verify_leaf(index, digest, root)


class TestPlainPager:
    def _pager(self):
        return Pager(BlockDevice())

    def test_roundtrip(self):
        pager = self._pager()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"payload")
        assert pager.read_page(pgno) == b"payload"

    def test_max_payload(self):
        pager = self._pager()
        pgno = pager.allocate_page()
        data = bytes(PAYLOAD_SIZE)
        pager.write_page(pgno, data)
        assert pager.read_page(pgno) == data

    def test_oversize_rejected(self):
        pager = self._pager()
        pgno = pager.allocate_page()
        with pytest.raises(StorageError):
            pager.write_page(pgno, bytes(PAYLOAD_SIZE + 1))

    def test_unallocated_rejected(self):
        pager = self._pager()
        with pytest.raises(StorageError):
            pager.read_page(0)
        with pytest.raises(StorageError):
            pager.write_page(0, b"x")

    def test_page_count_persists(self):
        device = BlockDevice()
        pager = Pager(device)
        pager.allocate_page()
        pager.allocate_page()
        reopened = Pager(device)
        assert reopened.page_count == 2


class TestSecurePager:
    def _setup(self, cipher="hash-ctr"):
        rng = Rng("sp")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        key = rng.bytes(32)
        pager = SecurePager(device, key, anchor, rng.fork("iv"), cipher=cipher)
        return device, anchor, key, pager, rng

    @pytest.mark.parametrize("cipher", ["hash-ctr", "aes-cbc"])
    def test_roundtrip(self, cipher):
        _, _, _, pager, _ = self._setup(cipher)
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"sensitive payload")
        assert pager.read_page(pgno) == b"sensitive payload"

    def test_unknown_cipher_rejected(self):
        rng = Rng(1)
        with pytest.raises(StorageError):
            SecurePager(BlockDevice(), bytes(32), InMemoryAnchor(), rng, cipher="rot13")

    def test_confidentiality(self):
        device, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        secret = b"TOP-SECRET-CUSTOMER-RECORD"
        pager.write_page(pgno, secret * 10)
        assert secret not in device.raw_page(pgno)

    def test_identical_payloads_encrypt_differently(self):
        device, _, _, pager, _ = self._setup()
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"same content")
        pager.write_page(b, b"same content")
        assert device.raw_page(a) != device.raw_page(b)  # fresh IV per page

    def test_integrity_bit_flip_detected(self):
        device, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"data")
        device.corrupt(pgno, offset=20)
        with pytest.raises(IntegrityError):
            pager.read_page(pgno)

    def test_mac_tamper_detected(self):
        device, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"data")
        device.corrupt(pgno, offset=4095)  # inside the trailing MAC
        with pytest.raises(IntegrityError):
            pager.read_page(pgno)

    def test_displacement_detected(self):
        """Swapping two whole encrypted pages must not go unnoticed."""
        device, _, _, pager, _ = self._setup()
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"page A")
        pager.write_page(b, b"page B")
        raw_a, raw_b = device.raw_page(a), device.raw_page(b)
        device.write_page(a, raw_b)
        device.write_page(b, raw_a)
        with pytest.raises(IntegrityError):
            pager.read_page(a)

    def test_single_page_replay_detected(self):
        """Restoring one stale page while the tree moved on is caught."""
        device, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"version 1")
        stale = device.raw_page(pgno)
        pager.write_page(pgno, b"version 2")
        device.write_page(pgno, stale)
        with pytest.raises(IntegrityError):
            pager.read_page(pgno)

    def test_rollback_detected_on_reopen(self):
        rng = Rng("rollback")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        key = rng.bytes(32)
        pager = SecurePager(device, key, anchor, rng.fork("iv"))
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"v1")
        pager.commit()
        snapshot = device.snapshot()
        pager.write_page(pgno, b"v2")
        pager.commit()
        device.restore(snapshot)
        with pytest.raises(FreshnessError):
            SecurePager(device, key, anchor, rng.fork("iv2"))

    def test_reopen_preserves_data(self):
        rng = Rng("reopen")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        key = rng.bytes(32)
        pager = SecurePager(device, key, anchor, rng.fork("iv"))
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"durable")
        pager.close()
        reopened = SecurePager(device, key, anchor, rng.fork("iv2"))
        assert reopened.read_page(pgno) == b"durable"

    def test_wrong_key_cannot_read(self):
        rng = Rng("wrongkey")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        pager = SecurePager(device, rng.bytes(32), anchor, rng.fork("iv"))
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"locked")
        pager.commit()
        intruder = SecurePager(
            device, rng.bytes(32), InMemoryAnchor(), rng.fork("iv2")
        )
        with pytest.raises(IntegrityError):
            intruder.read_page(pgno)

    def test_meter_counts_crypto_work(self):
        _, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"x")
        before = pager.meter.merkle_nodes_hashed
        pager.read_page(pgno)
        assert pager.meter.pages_decrypted == 1
        assert pager.meter.page_macs_verified == 1
        assert pager.meter.merkle_nodes_hashed > before

    def test_commit_idempotent_when_clean(self):
        _, anchor, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"x")
        pager.commit()
        rpmb_writes = pager.meter.rpmb_writes
        pager.commit()  # nothing dirty
        assert pager.meter.rpmb_writes == rpmb_writes

    @settings(max_examples=15, deadline=None)
    @given(payload=st.binary(max_size=PAYLOAD_SIZE))
    def test_roundtrip_property(self, payload):
        _, _, _, pager, _ = self._setup()
        pgno = pager.allocate_page()
        pager.write_page(pgno, payload)
        assert pager.read_page(pgno) == payload


class TestKeySchemes:
    """Per-unit key management (the paper's §4.1 alternative scheme)."""

    def _pager(self, scheme: str, seed: str = "ks"):
        rng = Rng(seed)
        return SecurePager(
            BlockDevice(), rng.bytes(32), InMemoryAnchor(), rng.fork("iv"),
            key_scheme=scheme,
        )

    def test_unknown_scheme_rejected(self):
        from repro.errors import StorageError

        rng = Rng(0)
        with pytest.raises(StorageError):
            SecurePager(
                BlockDevice(), bytes(32), InMemoryAnchor(), rng, key_scheme="vault"
            )

    @pytest.mark.parametrize("scheme", ["single", "per-page"])
    def test_roundtrip(self, scheme):
        pager = self._pager(scheme)
        pages = [pager.allocate_page() for _ in range(5)]
        for p in pages:
            pager.write_page(p, f"payload-{p}".encode())
        for p in pages:
            assert pager.read_page(p) == f"payload-{p}".encode()

    def test_per_page_keys_differ(self):
        pager = self._pager("per-page")
        assert pager._key_for(0) != pager._key_for(1)
        assert pager._key_for(0) == pager._key_for(0)

    def test_single_scheme_shares_key(self):
        pager = self._pager("single")
        assert pager._key_for(0) == pager._key_for(1)

    def test_schemes_produce_different_ciphertext(self):
        a = self._pager("single", "same-seed")
        b = self._pager("per-page", "same-seed")
        pa, pb = a.allocate_page(), b.allocate_page()
        # Page 0's derived key equals neither master-derived stream.
        a.write_page(pa, b"identical")
        b.write_page(pb, b"identical")
        # IVs match (same rng seed), so any difference is the key schedule.
        assert a.device.raw_page(pa) != b.device.raw_page(pb)

    def test_integrity_still_enforced(self):
        pager = self._pager("per-page")
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"x")
        pager.device.corrupt(pgno, offset=30)
        with pytest.raises(IntegrityError):
            pager.read_page(pgno)

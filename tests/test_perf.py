"""Performance layer: page cache, batched Merkle verify, concurrent scheduler."""

from __future__ import annotations

import warnings

import pytest

from repro.core import Deployment, register_client
from repro.crypto import Rng
from repro.errors import IntegrityError, IronSafeError
from repro.perf import (
    PERF_COUNTERS,
    PageCache,
    PageCacheError,
    ScheduledSlot,
    SessionTask,
    arbitrate,
    makespan_ns,
    serial_ns,
)
from repro.sim import Meter
from repro.storage import BlockDevice, InMemoryAnchor, MerkleTree, SecurePager
from repro.telemetry import SPAN_SCHEDULER, MetricsRegistry


class TestPageCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(PageCacheError):
            PageCache(0)
        with pytest.raises(PageCacheError):
            PageCache(-1)

    def test_miss_then_hit(self):
        cache = PageCache(4)
        assert cache.get(0) is None
        cache.put(0, b"payload", dirty=False)
        assert cache.get(0) == b"payload"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = PageCache(2)
        assert cache.put(0, b"a", dirty=False) is None
        assert cache.put(1, b"b", dirty=False) is None
        evicted = cache.put(2, b"c", dirty=False)
        assert evicted == (0, b"a", False)
        assert cache.evictions == 1
        assert 0 not in cache and 1 in cache and 2 in cache

    def test_get_promotes_to_mru(self):
        cache = PageCache(2)
        cache.put(0, b"a", dirty=False)
        cache.put(1, b"b", dirty=False)
        cache.get(0)  # page 1 is now LRU
        evicted = cache.put(2, b"c", dirty=False)
        assert evicted[0] == 1

    def test_update_keeps_dirty_bit_sticky(self):
        cache = PageCache(2)
        cache.put(0, b"v1", dirty=True)
        cache.put(0, b"v2", dirty=False)  # clean re-read must not lose write-back
        assert cache.dirty_count == 1
        assert cache.get(0) == b"v2"

    def test_evicted_entry_reports_dirty(self):
        cache = PageCache(1)
        cache.put(0, b"pending", dirty=True)
        evicted = cache.put(1, b"x", dirty=False)
        assert evicted == (0, b"pending", True)

    def test_take_dirty_flushes_but_keeps_entries(self):
        cache = PageCache(4)
        cache.put(0, b"a", dirty=True)
        cache.put(1, b"b", dirty=False)
        cache.put(2, b"c", dirty=True)
        assert cache.take_dirty() == [(0, b"a"), (2, b"c")]
        assert cache.dirty_count == 0
        assert len(cache) == 3  # flush, not invalidation
        assert cache.take_dirty() == []

    def test_discard_and_clear(self):
        cache = PageCache(4)
        cache.put(0, b"a", dirty=True)
        cache.put(1, b"b", dirty=True)
        cache.discard(0)
        assert 0 not in cache
        cache.clear()
        assert len(cache) == 0


class TestScheduler:
    def test_worker_count_validated(self):
        with pytest.raises(IronSafeError):
            arbitrate([SessionTask(0, 10.0)], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(IronSafeError):
            arbitrate([SessionTask(0, -1.0)], 2)

    def test_single_worker_serializes(self):
        slots = arbitrate([SessionTask(0, 10.0), SessionTask(1, 5.0)], 1)
        assert makespan_ns(slots) == serial_ns(slots) == 15.0
        assert [s.worker for s in slots] == [0, 0]

    def test_two_workers_overlap(self):
        slots = arbitrate([SessionTask(0, 10.0), SessionTask(1, 5.0)], 2)
        assert makespan_ns(slots) == 10.0
        assert serial_ns(slots) == 15.0

    def test_fifo_with_lowest_worker_tie_break(self):
        tasks = [SessionTask(i, 1.0) for i in range(4)]
        slots = arbitrate(tasks, 2)
        # Round one: tasks 0/1 on workers 0/1; round two: tasks 2/3 again
        # on workers 0/1 (equally free workers go to the lowest index).
        assert [s.worker for s in slots] == [0, 1, 0, 1]
        assert [s.start_ns for s in slots] == [0.0, 0.0, 1.0, 1.0]

    def test_arrival_time_delays_start(self):
        slots = arbitrate([SessionTask(0, 5.0, arrival_ns=3.0)], 2)
        assert slots[0].start_ns == 3.0
        assert slots[0].end_ns == 8.0
        assert slots[0].duration_ns == 5.0

    def test_deterministic(self):
        tasks = [SessionTask(i, float(7 + (i * 13) % 5)) for i in range(9)]
        assert arbitrate(tasks, 3) == arbitrate(tasks, 3)

    def test_empty_schedule(self):
        assert arbitrate([], 2) == []
        assert makespan_ns([]) == 0.0

    def test_slots_returned_in_task_order(self):
        tasks = [SessionTask(2, 1.0), SessionTask(0, 9.0), SessionTask(1, 2.0)]
        slots = arbitrate(tasks, 2)
        assert [s.task_id for s in slots] == [0, 1, 2]
        assert all(isinstance(s, ScheduledSlot) for s in slots)


class TestMeterRegistration:
    def test_perf_counters_are_known(self):
        names = Meter.counter_names()
        for name in PERF_COUNTERS:
            assert name in names

    def test_declared_fields_still_first(self):
        assert "pages_read" in Meter.counter_names()

    def test_registering_declared_field_is_noop(self):
        before = Meter.counter_names()
        Meter.register_counter("pages_read")
        assert Meter.counter_names() == before

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Meter.register_counter("not a name")

    def test_bump_and_get_registered_counter(self):
        meter = Meter()
        meter.bump("page_cache_hits", 3)
        assert meter.get("page_cache_hits") == 3
        assert meter.extra["page_cache_hits"] == 3
        assert meter.get("pages_read") == 0

    def test_absorb_registered_counter_without_warning(self):
        registry = MetricsRegistry()
        meter = Meter()
        meter.bump("page_cache_hits", 5)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            registry.absorb_meter(meter, node="storage", phase="scan")
        counter = registry.counter("meter.page_cache_hits", node="storage", phase="scan")
        assert counter.value == 5

    def test_absorb_unknown_counter_still_warns(self):
        registry = MetricsRegistry()
        meter = Meter()
        meter.bump("page_cache_hist", 1)  # typo'd name
        with pytest.warns(RuntimeWarning, match="page_cache_hist"):
            registry.absorb_meter(meter)


class TestMerkleBatchVerify:
    def _tree(self, leaves: int = 16) -> tuple[MerkleTree, bytes]:
        tree = MerkleTree(b"batch-key", leaves)
        root = b""
        for i in range(leaves):
            root = tree.update_leaf(i, bytes([i]) * 32)
        return tree, root

    def test_batch_ok(self):
        tree, root = self._tree()
        indices = [2, 3, 4, 5]
        tree.verify_leaves(indices, [bytes([i]) * 32 for i in indices], root)

    def test_empty_batch_ok(self):
        tree, root = self._tree()
        tree.verify_leaves([], [], root)

    def test_count_mismatch_rejected(self):
        tree, root = self._tree()
        with pytest.raises(IntegrityError):
            tree.verify_leaves([0, 1], [b"x" * 32], root)

    def test_out_of_range_leaf_rejected(self):
        tree, root = self._tree()
        with pytest.raises(IntegrityError):
            tree.verify_leaves([999], [b"x" * 32], root)

    def test_wrong_digest_rejected(self):
        tree, root = self._tree()
        with pytest.raises(IntegrityError):
            tree.verify_leaves([2, 3], [bytes([2]) * 32, b"y" * 32], root)

    def test_stale_root_rejected(self):
        tree, root = self._tree()
        tree.update_leaf(7, b"new" + bytes(29))
        with pytest.raises(IntegrityError):
            tree.verify_leaves([2], [bytes([2]) * 32], root)

    def test_matches_per_leaf_verification(self):
        tree, root = self._tree()
        indices = list(range(16))
        digests = [bytes([i]) * 32 for i in indices]
        tree.verify_leaves(indices, digests, root)
        for i, digest in zip(indices, digests):
            tree.verify_leaf(i, digest, root)

    def test_amortizes_shared_path_prefixes(self):
        meter = Meter()
        tree = MerkleTree(b"batch-key", 64, meter=meter)
        root = b""
        for i in range(64):
            root = tree.update_leaf(i, bytes([i]) * 32)
        indices = list(range(32))
        digests = [bytes([i]) * 32 for i in indices]

        before = meter.merkle_nodes_hashed
        for i, digest in zip(indices, digests):
            tree.verify_leaf(i, digest, root)
        per_leaf_cost = meter.merkle_nodes_hashed - before

        before = meter.merkle_nodes_hashed
        tree.verify_leaves(indices, digests, root)
        batch_cost = meter.merkle_nodes_hashed - before

        # 32 contiguous leaves share almost every interior node: the batch
        # walk must cost well under half of 32 independent root paths.
        assert batch_cost < per_leaf_cost / 2


class TestSecurePagerCache:
    def _setup(self, cache_pages: int = 0):
        rng = Rng("perf-pager")
        device = BlockDevice()
        pager = SecurePager(
            device, rng.bytes(32), InMemoryAnchor(), rng.fork("iv"),
            cache_pages=cache_pages,
        )
        return device, pager

    def test_hit_and_miss_counters(self):
        _, pager = self._setup(cache_pages=8)
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"hot")
        pager.commit()
        pager.cache.clear()
        pager.read_page(pgno)  # miss: full verification chain
        pager.read_page(pgno)  # hit: enclave memory
        assert pager.meter.get("page_cache_misses") == 1
        assert pager.meter.get("page_cache_hits") == 1

    def test_hit_skips_crypto_work(self):
        _, pager = self._setup(cache_pages=8)
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"hot")
        pager.commit()
        pager.cache.clear()
        pager.read_page(pgno)
        decrypted = pager.meter.pages_decrypted
        macs = pager.meter.page_macs_verified
        assert pager.read_page(pgno) == b"hot"
        assert pager.meter.pages_decrypted == decrypted
        assert pager.meter.page_macs_verified == macs

    def test_write_back_on_commit_persists(self):
        rng = Rng("wb")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        key = rng.bytes(32)
        pager = SecurePager(device, key, anchor, rng.fork("iv"), cache_pages=8)
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"buffered")
        assert pager.meter.pages_written == 0  # still only in enclave memory
        pager.commit()
        assert pager.meter.pages_written == 1
        assert pager.meter.get("page_cache_flushes") == 1
        reopened = SecurePager(device, key, anchor, rng.fork("iv2"))
        assert reopened.read_page(pgno) == b"buffered"

    def test_dirty_eviction_writes_back(self):
        _, pager = self._setup(cache_pages=1)
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"first")
        pager.write_page(b, b"second")  # evicts dirty page a -> device
        assert pager.meter.get("page_cache_evictions") == 1
        assert pager.meter.pages_written == 1
        pager.commit()
        assert pager.read_page(a) == b"first"
        assert pager.read_page(b) == b"second"

    def test_evicted_page_reread_repeats_verification(self):
        _, pager = self._setup(cache_pages=1)
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"A")
        pager.write_page(b, b"B")
        pager.commit()
        pager.read_page(a)  # evicts b from the 1-page cache
        macs = pager.meter.page_macs_verified
        nodes = pager.meter.merkle_nodes_hashed
        assert pager.read_page(b) == b"B"
        assert pager.meter.page_macs_verified == macs + 1
        assert pager.meter.merkle_nodes_hashed > nodes

    def test_eviction_then_tamper_detected_and_reported(self):
        """The eviction + tamper satellite: an evicted page's payload left
        the enclave; corrupting its ciphertext must fail the re-read AND
        reach the wired-in violation observer."""
        device, pager = self._setup(cache_pages=1)
        violations: list[tuple[int, str]] = []
        pager.on_violation = lambda pgno, reason: violations.append((pgno, reason))
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"victim")
        pager.write_page(b, b"filler")  # evicts a (dirty -> written back)
        pager.commit()
        assert a not in pager.cache
        device.corrupt(a, offset=40)
        with pytest.raises(IntegrityError):
            pager.read_page(a)
        assert violations and violations[0][0] == a
        assert "tampered" in violations[0][1]

    def test_enable_disable_cache_roundtrip(self):
        _, pager = self._setup()
        assert not pager.batch_enabled
        pgno = pager.allocate_page()
        pager.write_page(pgno, b"x")
        pager.enable_cache(4)
        assert pager.batch_enabled
        assert pager.read_page(pgno) == b"x"
        pager.write_page(pgno, b"y")
        pager.disable_cache()  # flushes the buffered write
        assert not pager.batch_enabled
        assert pager.read_page(pgno) == b"y"

    def test_read_pages_matches_read_page(self):
        _, pager = self._setup(cache_pages=16)
        pages = [pager.allocate_page() for _ in range(8)]
        for p in pages:
            pager.write_page(p, f"page-{p}".encode())
        pager.commit()
        pager.cache.clear()
        batched = pager.read_pages(pages)
        assert batched == [f"page-{p}".encode() for p in pages]
        assert pager.meter.get("merkle_batch_pages") == len(pages)
        # Second pass is all hits.
        pager.read_pages(pages)
        assert pager.meter.get("page_cache_hits") == len(pages)

    def test_read_pages_batch_cheaper_than_per_page(self):
        rng = Rng("batch-vs")
        device = BlockDevice()
        anchor = InMemoryAnchor()
        key = rng.bytes(32)
        pager = SecurePager(device, key, anchor, rng.fork("iv"))
        pages = [pager.allocate_page() for _ in range(32)]
        for p in pages:
            pager.write_page(p, b"z")
        pager.commit()

        before = pager.meter.merkle_nodes_hashed
        for p in pages:
            pager.read_page(p)
        per_page_cost = pager.meter.merkle_nodes_hashed - before

        pager.enable_cache(64)
        before = pager.meter.merkle_nodes_hashed
        pager.read_pages(pages)
        batch_cost = pager.meter.merkle_nodes_hashed - before
        assert batch_cost < per_page_cost / 2

    def test_read_pages_without_cache_is_per_page(self):
        _, pager = self._setup()
        pages = [pager.allocate_page() for _ in range(3)]
        for p in pages:
            pager.write_page(p, bytes([p]))
        assert pager.read_pages(pages) == [bytes([p]) for p in pages]
        assert pager.meter.get("merkle_batch_pages") == 0

    def test_read_pages_tamper_names_the_page(self):
        device, pager = self._setup(cache_pages=16)
        violations: list[int] = []
        pager.on_violation = lambda pgno, reason: violations.append(pgno)
        pages = [pager.allocate_page() for _ in range(4)]
        for p in pages:
            pager.write_page(p, b"ok")
        pager.commit()
        pager.cache.clear()
        device.corrupt(pages[2], offset=50)
        with pytest.raises(IntegrityError):
            pager.read_pages(pages)
        assert pages[2] in violations


def _appdb_deployment():
    """A tiny non-TPC-H deployment with one client authorized to read."""
    deployment = Deployment(workload="none", database_name="appdb", seed=47)
    deployment.attest_all()
    client = register_client(deployment, "tenant")
    deployment.monitor.provision_database(
        "appdb",
        policy_text=f"read :- sessionKeyIs('{client.fingerprint}')\n",
    )
    db = deployment.storage_engine.db
    db.execute("CREATE TABLE items (id INTEGER, label TEXT)")
    db.store.insert_rows("items", [(i, f"item-{i}") for i in range(64)])
    db.commit()
    return deployment, client


BATCH = [
    "SELECT count(*) FROM items",
    "SELECT max(id) FROM items",
    "SELECT count(*) FROM items WHERE id < 32",
    "SELECT min(id) FROM items",
]


@pytest.fixture(scope="module")
def concurrent_outcome():
    deployment, client = _appdb_deployment()
    outcome = deployment.run_concurrent(
        BATCH, workers=2, client_key=client.fingerprint
    )
    return deployment, client, outcome


class TestRunConcurrent:
    def test_validation(self):
        deployment, client = _appdb_deployment()
        with pytest.raises(IronSafeError):
            deployment.run_concurrent([])
        with pytest.raises(IronSafeError):
            deployment.run_concurrent(["SELECT 1"], workers=0)

    def test_rows_match_serial_execution(self, concurrent_outcome):
        deployment, client, outcome = concurrent_outcome
        assert len(outcome.sessions) == len(BATCH)
        for session in outcome.sessions:
            # sos skips the monitor (whose policy admits only the tenant)
            # but runs the same secure split execution.
            serial = deployment.run_query(session.sql, "sos")
            assert session.rows == serial.rows

    def test_sessions_isolated(self, concurrent_outcome):
        _, _, outcome = concurrent_outcome
        ids = [s.session_id for s in outcome.sessions]
        digests = [s.key_digest for s in outcome.sessions]
        assert len(set(ids)) == len(ids)
        assert len(set(digests)) == len(digests)
        assert all(s.proof is not None for s in outcome.sessions)

    def test_sessions_closed_in_audit_chain(self, concurrent_outcome):
        deployment, _, outcome = concurrent_outcome
        operations = deployment.monitor.audit_log("operations")
        operations.verify_chain()
        closed = [e for e in operations.entries if e.action == "finish_session"]
        assert len(closed) >= len(outcome.sessions)

    def test_schedule_shape(self, concurrent_outcome):
        _, _, outcome = concurrent_outcome
        assert outcome.workers == 2
        assert outcome.makespan_ms <= outcome.serial_ms
        assert outcome.speedup >= 1.0
        assert outcome.throughput_qps > 0
        per_session = sorted(outcome.sessions, key=lambda s: s.index)
        assert outcome.session(0) is per_session[0]
        for session in outcome.sessions:
            assert session.duration_ms == pytest.approx(
                session.result.breakdown.total_ms
            )

    def test_single_worker_is_serial(self):
        deployment, client = _appdb_deployment()
        outcome = deployment.run_concurrent(
            BATCH[:2], workers=1, client_key=client.fingerprint
        )
        assert outcome.makespan_ms == pytest.approx(outcome.serial_ms)

    def test_mixed_configs_accepted(self):
        deployment, client = _appdb_deployment()
        outcome = deployment.run_concurrent(
            [("SELECT count(*) FROM items", "sos"), ("SELECT max(id) FROM items", "sos")],
            workers=2,
        )
        assert [s.config for s in outcome.sessions] == ["sos", "sos"]
        # Non-admitted configurations get local session ids, no proof.
        assert all(s.session_id.startswith("local-") for s in outcome.sessions)
        assert all(s.proof is None for s in outcome.sessions)

    def test_deterministic_across_rebuilds(self):
        first_deployment, first_client = _appdb_deployment()
        second_deployment, second_client = _appdb_deployment()
        first = first_deployment.run_concurrent(
            BATCH, workers=2, client_key=first_client.fingerprint
        )
        second = second_deployment.run_concurrent(
            BATCH, workers=2, client_key=second_client.fingerprint
        )
        assert first.makespan_ms == second.makespan_ms
        assert first.serial_ms == second.serial_ms
        assert [s.worker for s in first.sessions] == [s.worker for s in second.sessions]

    def test_tracing_records_scheduler_span(self):
        deployment, client = _appdb_deployment()
        tracer = deployment.enable_tracing()
        deployment.run_concurrent(
            BATCH[:2], workers=2, client_key=client.fingerprint
        )
        scheduler_spans = [
            span for trace in tracer.traces for span in trace.find(SPAN_SCHEDULER)
        ]
        assert scheduler_spans, "no scheduler span recorded"
        root = scheduler_spans[0]
        assert root.attributes["sessions"] == 2
        assert root.attributes["workers"] == 2
        assert tracer.metrics.counter("scheduler.sessions", workers="2").value == 2


class TestClientSubmitConcurrent:
    def test_batch_with_verified_proofs(self):
        deployment, client = _appdb_deployment()
        outcome = client.submit_concurrent(deployment, BATCH[:2], workers=2)
        assert outcome.sessions[0].rows == [(64,)]
        assert all(s.proof is not None for s in outcome.sessions)


class TestDeploymentPageCache:
    def test_enable_then_disable_leaves_results_identical(self):
        deployment, client = _appdb_deployment()
        sql = "SELECT count(*) FROM items WHERE id >= 10"
        baseline = deployment.run_query(sql, "sos")
        deployment.enable_page_cache(128)
        cached = deployment.run_query(sql, "sos")
        assert cached.rows == baseline.rows
        deployment.disable_page_cache()
        restored = deployment.run_query(sql, "sos")
        assert restored.rows == baseline.rows
        assert restored.breakdown.total_ns == baseline.breakdown.total_ns

    def test_storage_tamper_lands_in_audit_chain(self):
        """End-to-end eviction + tamper satellite: corrupting an evicted
        page's ciphertext fails the read and the trusted monitor records
        the violation in the hash-chained operations log."""
        deployment, client = _appdb_deployment()
        deployment.enable_page_cache(1)
        pager = deployment.storage_engine.pager
        a, b = pager.allocate_page(), pager.allocate_page()
        pager.write_page(a, b"audited")
        pager.write_page(b, b"filler")  # evicts page a out of the enclave
        pager.commit()
        deployment.secure_device.corrupt(a, offset=40)
        with pytest.raises(IntegrityError):
            pager.read_page(a)
        operations = deployment.monitor.audit_log("operations")
        operations.verify_chain()
        violations = [
            e for e in operations.entries if e.action == "integrity_violation"
        ]
        assert violations, "tampering was not audited"
        assert f"page {a}" in violations[-1].detail
        assert violations[-1].client_key == "storage-1"

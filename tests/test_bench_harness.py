"""Benchmark harness: recosting consistency and table formatting."""

from __future__ import annotations

import pytest

from repro.bench import (
    QueryRuns,
    format_table,
    geomean,
    overhead_breakdown,
    recost_split,
    run_tpch_suite,
    scaled_epc_limit,
    storage_portion_ms,
)
from repro.tpch import ALL_QUERIES


@pytest.fixture(scope="module")
def suite(tiny_deployment):
    return run_tpch_suite(
        tiny_deployment, ("hons", "scs"), numbers=[3, 6], use_manual=True
    )


class TestHarness:
    def test_suite_checks_result_agreement(self, suite):
        assert {q.number for q in suite} == {3, 6}
        for q in suite:
            assert q.ms("hons") > 0 and q.ms("scs") > 0
            assert q.speedup("hons", "scs") == q.ms("hons") / q.ms("scs")

    def test_recost_matches_recorded_at_same_knobs(self, tiny_deployment, suite):
        """Recosting with the deployment's own knobs reproduces the
        recorded total (the sweep benches rely on this)."""
        for q in suite:
            recorded = q.ms("scs")
            recosted = recost_split(
                q.runs["scs"],
                tiny_deployment.cost_model,
                cpus=tiny_deployment.storage_cpus,
                memory_bytes=tiny_deployment.storage_memory_bytes,
            )
            assert recosted == pytest.approx(recorded, rel=0.02)

    def test_recost_monotone_in_cpus(self, tiny_deployment, suite):
        q3 = next(q for q in suite if q.number == 3)
        times = [
            recost_split(
                q3.runs["scs"], tiny_deployment.cost_model,
                cpus=c, memory_bytes=tiny_deployment.storage_memory_bytes,
            )
            for c in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_storage_portion_positive(self, tiny_deployment, suite):
        for q in suite:
            assert storage_portion_ms(
                q.runs["scs"], tiny_deployment.cost_model,
                memory_bytes=tiny_deployment.storage_memory_bytes,
            ) > 0

    def test_overhead_breakdown_fields(self, tiny_deployment):
        runs = run_tpch_suite(tiny_deployment, ("vcs", "scs"), numbers=[6])
        q6 = runs[0]
        b = overhead_breakdown(6, q6.runs["scs"], q6.runs["vcs"])
        assert b.total_ms == pytest.approx(q6.ms("scs"))
        assert b.ndp_ms == pytest.approx(q6.ms("vcs"))
        assert 0 <= b.fraction(b.freshness_ms) <= 1

    def test_scaled_epc_limit_ratio(self):
        # 59 MiB tree / 96 MiB EPC: the inverse ratio must hold.
        limit = scaled_epc_limit(59_000_000)
        assert limit == pytest.approx(96_000_000, rel=0.01)
        assert scaled_epc_limit(0) == 4096  # floor


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "metric"], [["x", 1.5], ["longer", 22.0]], "Title")
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "1.50" in out and "22.00" in out
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded equal

    def test_format_table_empty_rows(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped

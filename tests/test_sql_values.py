"""SQL value semantics: three-valued logic, comparisons, LIKE, dates."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.sql import values as V


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert V.sql_and(True, True) is True
        assert V.sql_and(True, False) is False
        assert V.sql_and(False, None) is False  # False dominates
        assert V.sql_and(None, False) is False
        assert V.sql_and(True, None) is None
        assert V.sql_and(None, None) is None

    def test_or_truth_table(self):
        assert V.sql_or(False, False) is False
        assert V.sql_or(True, None) is True  # True dominates
        assert V.sql_or(None, True) is True
        assert V.sql_or(False, None) is None
        assert V.sql_or(None, None) is None

    def test_not(self):
        assert V.sql_not(True) is False
        assert V.sql_not(False) is True
        assert V.sql_not(None) is None

    def test_is_true(self):
        assert V.is_true(True)
        assert not V.is_true(False)
        assert not V.is_true(None)


class TestComparisons:
    def test_null_propagation(self):
        for fn in (V.sql_eq, V.sql_ne, V.sql_lt, V.sql_le, V.sql_gt, V.sql_ge):
            assert fn(None, 1) is None
            assert fn(1, None) is None

    def test_numeric_cross_type(self):
        assert V.sql_eq(1, 1.0) is True
        assert V.sql_lt(1, 1.5) is True

    def test_strings(self):
        assert V.sql_lt("apple", "banana") is True
        assert V.sql_eq("a", "a") is True

    def test_dates(self):
        a, b = datetime.date(2020, 1, 1), datetime.date(2021, 1, 1)
        assert V.sql_lt(a, b) is True

    def test_incompatible_types_rejected(self):
        with pytest.raises(ExecutionError):
            V.sql_eq(1, "one")
        with pytest.raises(ExecutionError):
            V.sql_lt(datetime.date(2020, 1, 1), 5)


class TestArithmetic:
    def test_null_propagation(self):
        for fn in (V.sql_add, V.sql_sub, V.sql_mul, V.sql_div, V.sql_mod, V.sql_concat):
            assert fn(None, 1) is None
            assert fn(1, None) is None

    def test_integer_division_is_true_division(self):
        assert V.sql_div(7, 2) == 3.5

    def test_division_by_zero_is_null(self):
        assert V.sql_div(1, 0) is None
        assert V.sql_mod(1, 0) is None

    def test_date_difference_in_days(self):
        a, b = datetime.date(2020, 1, 10), datetime.date(2020, 1, 1)
        assert V.sql_sub(a, b) == 9

    def test_date_plus_number_rejected(self):
        with pytest.raises(ExecutionError):
            V.sql_add(datetime.date(2020, 1, 1), 5)

    def test_concat(self):
        assert V.sql_concat("a", "b") == "ab"

    def test_negate(self):
        assert V.sql_neg(5) == -5
        assert V.sql_neg(None) is None


class TestIntervals:
    def test_day(self):
        d = datetime.date(2020, 1, 31)
        assert V.interval_shift(d, 1, "DAY", 1) == datetime.date(2020, 2, 1)
        assert V.interval_shift(d, 31, "DAY", -1) == datetime.date(2019, 12, 31)

    def test_month_clamps_day(self):
        d = datetime.date(2020, 1, 31)
        assert V.interval_shift(d, 1, "MONTH", 1) == datetime.date(2020, 2, 29)

    def test_year(self):
        d = datetime.date(2020, 2, 29)
        assert V.interval_shift(d, 1, "YEAR", 1) == datetime.date(2021, 2, 28)

    def test_null(self):
        assert V.interval_shift(None, 1, "DAY", 1) is None

    def test_unknown_unit(self):
        with pytest.raises(ExecutionError):
            V.interval_shift(datetime.date(2020, 1, 1), 1, "FORTNIGHT", 1)


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "%ell%", True),
            ("hello", "h_llo", True),
            ("hello", "h__lo", True),
            ("hello", "h___lo", False),
            ("hello", "", False),
            ("", "%", True),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),  # '.' is literal, not regex
            ("100%", "100%", True),
            ("PROMO BURNISHED", "PROMO%", True),
            ("special packages requests", "%special%requests%", True),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert V.sql_like(value, pattern) is expected

    def test_null(self):
        assert V.sql_like(None, "%") is None
        assert V.sql_like("x", None) is None


class TestScalarFunctions:
    def test_extract(self):
        d = datetime.date(1998, 7, 15)
        assert V.sql_extract("YEAR", d) == 1998
        assert V.sql_extract("MONTH", d) == 7
        assert V.sql_extract("DAY", d) == 15
        assert V.sql_extract("YEAR", None) is None

    def test_extract_type_error(self):
        with pytest.raises(ExecutionError):
            V.sql_extract("YEAR", 1998)

    def test_substring(self):
        assert V.sql_substring("abcdef", 2, 3) == "bcd"
        assert V.sql_substring("abcdef", 2) == "bcdef"
        assert V.sql_substring("abc", 10, 2) == ""
        assert V.sql_substring(None, 1) is None

    def test_builtin_functions(self):
        f = V.SCALAR_FUNCTIONS
        assert f["abs"](-3) == 3
        assert f["round"](3.14159, 2) == 3.14
        assert f["lower"]("ABC") == "abc"
        assert f["upper"]("abc") == "ABC"
        assert f["length"]("abcd") == 4
        assert f["coalesce"](None, None, 7, 8) == 7
        assert f["coalesce"](None) is None

    def test_coerce(self):
        assert V.coerce("5", "INTEGER") == 5
        assert V.coerce(5, "REAL") == 5.0
        assert V.coerce(5, "TEXT") == "5"
        assert V.coerce("2020-01-01", "DATE") == datetime.date(2020, 1, 1)
        assert V.coerce(None, "INTEGER") is None
        with pytest.raises(ExecutionError):
            V.coerce(1.5, "DATE")
        with pytest.raises(ExecutionError):
            V.coerce(1, "BLOB")

    def test_row_byte_estimates(self):
        small = V.estimate_row_bytes((1,))
        big = V.estimate_row_bytes((1, "a long string value", 2.5))
        assert big > small > 0


@settings(max_examples=50, deadline=None)
@given(a=st.integers(), b=st.integers())
def test_comparison_trichotomy(a, b):
    results = [V.sql_lt(a, b), V.sql_eq(a, b), V.sql_gt(a, b)]
    assert results.count(True) == 1

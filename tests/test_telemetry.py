"""Tests for repro.telemetry: tracing, metrics, exporters, audit correlation.

Covers the span lifecycle (nesting, sim vs wall time, the disabled no-op
path), the metrics registry (Meter absorption, unknown-counter warnings,
snapshot/diff), both exporters (JSONL round-trip, Chrome trace-event
schema), the ``repro-trace`` CLI, and the acceptance path: a TPC-H query
submitted through the client produces a trace whose spans cover ≥90% of
the simulated time, nest correctly across nodes, and carry verifiable
audit-log digests.
"""

from __future__ import annotations

import json

import pytest

from repro.core.client import register_client
from repro.core.deployment import Deployment
from repro.errors import IntegrityError
from repro.sim import CAT_POLICY, Meter, SimClock
from repro.telemetry import (
    KNOWN_SPAN_NAMES,
    MetricsRegistry,
    NODE_CLIENT,
    NODE_HOST,
    NODE_MONITOR,
    NODE_STORAGE,
    NOOP_TRACER,
    RecordingTracer,
    SPAN_HOST_JOIN_AGG,
    SPAN_NDP_FILTER,
    SPAN_POLICY_CHECK,
    SPAN_QUERY,
    SPAN_STORAGE_PHASE,
    Span,
    Trace,
    audit_references,
    query_digest_of,
    read_jsonl,
    render_summary,
    render_tree,
    sequential_layout,
    to_chrome_trace,
    verify_trace_audit,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.cli import main as trace_cli


class FakeWall:
    """Deterministic wall clock: advances a fixed step per reading."""

    def __init__(self, step_ns: int = 1000):
        self.now = 0
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def make_tracer(clock=None):
    return RecordingTracer(clock=clock, wall_clock=FakeWall())


# ---------------------------------------------------------------------------
# Span lifecycle
# ---------------------------------------------------------------------------


class TestSpanLifecycle:
    def test_nesting_builds_a_tree(self):
        tracer = make_tracer()
        with tracer.span(SPAN_QUERY, node=NODE_CLIENT) as root:
            with tracer.span(SPAN_POLICY_CHECK, node=NODE_MONITOR) as policy:
                assert tracer.current is policy
            with tracer.span(SPAN_STORAGE_PHASE, node=NODE_STORAGE) as phase:
                with tracer.span(SPAN_NDP_FILTER, node=NODE_STORAGE) as scan:
                    pass
        trace = tracer.last_trace()
        assert trace is not None and trace.root is root
        assert {s.span_id for s in trace.children_of(root.span_id)} == {
            policy.span_id,
            phase.span_id,
        }
        assert trace.children_of(phase.span_id) == [scan]
        assert all(s.trace_id == trace.trace_id for s in trace.spans)

    def test_one_trace_per_root(self):
        tracer = make_tracer()
        for _ in range(3):
            with tracer.span(SPAN_QUERY):
                pass
        assert len(tracer.traces) == 3
        assert [t.trace_id for t in tracer.traces] == ["q0001", "q0002", "q0003"]

    def test_sim_time_from_clock_and_wall_time_independent(self):
        clock = SimClock()
        tracer = make_tracer(clock=clock)
        with tracer.span(SPAN_POLICY_CHECK) as span:
            clock.charge(5000, CAT_POLICY)
        assert span.sim_ns == pytest.approx(5000)
        assert span.wall_ns > 0  # the fake wall clock always advances
        assert span.wall_ns != span.sim_ns

    def test_explicit_sim_stamp_overrides_clock_delta(self):
        clock = SimClock()
        tracer = make_tracer(clock=clock)
        with tracer.span(SPAN_STORAGE_PHASE) as span:
            clock.charge(100, CAT_POLICY)
        span.set_sim_ns(123456.0)
        assert span.sim_ns == 123456.0

    def test_exception_marks_status_and_unwinds(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span(SPAN_QUERY):
                with tracer.span(SPAN_NDP_FILTER):
                    raise ValueError("boom")
        trace = tracer.last_trace()
        assert trace is not None
        scan = trace.find(SPAN_NDP_FILTER)[0]
        assert scan.status == "error:ValueError"
        assert tracer.current is None  # stack fully unwound

    def test_maybe_root_attaches_to_open_root(self):
        tracer = make_tracer()
        with tracer.span(SPAN_QUERY):
            with tracer.maybe_root(SPAN_QUERY) as inner:
                # Pass-through no-op: no second root span is recorded.
                inner.set_attrs(ignored=True)
        assert len(tracer.traces) == 1
        assert len(tracer.traces[0].find(SPAN_QUERY)) == 1

    def test_events_outside_a_trace_are_dropped(self):
        tracer = make_tracer()
        assert tracer.event("merkle_verify", node=NODE_STORAGE) is None
        assert tracer.traces == []


class TestNoopPath:
    def test_noop_tracer_allocates_nothing(self):
        span_a = NOOP_TRACER.span(SPAN_QUERY, node=NODE_CLIENT)
        span_b = NOOP_TRACER.span(SPAN_NDP_FILTER)
        assert span_a is span_b  # one shared stateless no-op span
        with span_a as span:
            span.set_sim_ns(1.0).set_attrs(x=1)
        assert NOOP_TRACER.event("anything") is None
        assert NOOP_TRACER.enabled is False

    def test_tracing_does_not_change_query_results(self):
        plain = Deployment(scale_factor=0.001, seed=11)
        traced = Deployment(scale_factor=0.001, seed=11)
        traced.enable_tracing()

        sql = "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25"
        for config in ("hons", "scs"):
            a = plain.run_query(sql, config)
            b = traced.run_query(sql, config)
            assert a.rows == b.rows
            assert a.breakdown.by_category == b.breakdown.by_category
            assert a.bytes_shipped == b.bytes_shipped


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", config="scs").inc()
        registry.counter("queries_total", config="scs").inc(2)
        registry.gauge("memory", node="host").set(10)
        registry.gauge("memory", node="host").set(4)
        registry.histogram("latency").observe(1.0)
        registry.histogram("latency").observe(3.0)

        snap = registry.snapshot()
        assert snap["queries_total{config=scs}"] == 3
        assert snap["memory{node=host}"] == 4
        assert snap["memory{node=host}.max"] == 10
        assert snap["latency.count"] == 2
        assert snap["latency.sum"] == 4.0

    def test_counter_rejects_decrease_and_type_collision(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("n").inc(-1)
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_absorb_meter_declared_counters(self):
        registry = MetricsRegistry()
        meter = Meter()
        meter.rows_scanned = 100
        meter.pages_read = 7
        meter.note_memory(2048)
        registry.absorb_meter(meter, node=NODE_STORAGE, phase="scs")
        snap = registry.snapshot()
        assert snap["meter.rows_scanned{node=storage,phase=scs}"] == 100
        assert snap["meter.pages_read{node=storage,phase=scs}"] == 7
        assert snap["meter.peak_memory_bytes{node=storage,phase=scs}.max"] == 2048

    def test_unknown_counter_warns_once(self):
        registry = MetricsRegistry()
        meter = Meter()
        meter.bump("rows_scanend", 5)  # typo'd name lands in extra
        assert "rows_scanend" in meter.extra
        with pytest.warns(RuntimeWarning, match="rows_scanend"):
            registry.absorb_meter(meter, node=NODE_STORAGE, phase="scs")
        # Second absorption of the same name: no second warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            registry.absorb_meter(meter, node=NODE_STORAGE, phase="scs")
        snap = registry.snapshot()
        assert snap["meter.extra.rows_scanend{node=storage,phase=scs}"] == 10

    def test_counter_names_lists_declared_fields(self):
        names = Meter.counter_names()
        assert "rows_scanned" in names
        assert "peak_memory_bytes" in names
        assert "extra" not in names

    def test_snapshot_diff(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries_total")
        counter.inc()
        before = registry.snapshot()
        counter.inc(4)
        after = registry.snapshot()
        assert MetricsRegistry.diff(before, after) == {"queries_total": 4}
        assert MetricsRegistry.diff(after, after) == {}


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def small_trace() -> Trace:
    trace = Trace("q0001")
    root = Span(name=SPAN_QUERY, span_id=1, trace_id="q0001", node=NODE_CLIENT)
    root.set_sim_ns(100.0)
    child = Span(
        name=SPAN_STORAGE_PHASE,
        span_id=2,
        trace_id="q0001",
        parent_id=1,
        node=NODE_STORAGE,
    )
    child.set_sim_ns(60.0)
    child.annotate_audit("reads", 0, "ab" * 32)
    marker = Span(
        name="merkle_verify", span_id=3, trace_id="q0001", parent_id=2,
        node=NODE_STORAGE,
    )
    trace.add(root), trace.add(child), trace.add(marker)
    return trace


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl([small_trace()], path, metrics=registry)

        traces, metrics = read_jsonl(path)
        assert len(traces) == 1 and traces[0].trace_id == "q0001"
        assert metrics == {"queries_total": 1.0}
        loaded = {s.span_id: s for s in traces[0].spans}
        assert loaded[1].sim_ns == 100.0
        assert loaded[2].parent_id == 1
        assert loaded[2].audit == [{"log": "reads", "sequence": 0, "digest": "ab" * 32}]
        assert loaded[3].sim_ns == 0.0

    def test_sequential_layout_nests(self):
        layout = sequential_layout(small_trace())
        root_start, root_dur = layout[1]
        child_start, child_dur = layout[2]
        assert root_start == 0.0 and root_dur == 100.0
        assert child_start >= root_start
        assert child_start + child_dur <= root_start + root_dur

    def test_chrome_trace_schema(self):
        doc = to_chrome_trace([small_trace()])
        events = doc["traceEvents"]
        by_ph = {}
        for event in events:
            by_ph.setdefault(event["ph"], []).append(event)
        # Process-name metadata for each node, X for timed, i for markers.
        meta_names = {e["args"]["name"] for e in by_ph["M"]}
        assert {NODE_CLIENT, NODE_STORAGE} <= meta_names
        complete = {e["name"]: e for e in by_ph["X"]}
        assert complete[SPAN_QUERY]["dur"] == pytest.approx(100.0 / 1000)
        assert complete[SPAN_STORAGE_PHASE]["args"]["audit"]
        assert all("ts" in e for e in events if e["ph"] != "M")
        instants = by_ph["i"]
        assert instants[0]["name"] == "merkle_verify"
        assert instants[0]["s"] == "t"

    def test_chrome_file_is_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace([small_trace()], path)
        with open(path, encoding="utf-8") as fp:
            doc = json.load(fp)
        assert "traceEvents" in doc


# ---------------------------------------------------------------------------
# End-to-end acceptance: traced client round trip on TPC-H
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_submit():
    deployment = Deployment(scale_factor=0.001, seed=11)
    tracer = deployment.enable_tracing()
    deployment.attest_all()
    client = register_client(deployment, "alice")
    deployment.monitor.provision_database(
        "tpch",
        policy_text=(
            f"read :- sessionKeyIs('{client.fingerprint}') & logUpdate(reads)"
        ),
    )
    response = client.submit(
        deployment, "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25"
    )
    return deployment, tracer, response


class TestAcceptance:
    def test_trace_covers_simulated_time(self, traced_submit):
        deployment, tracer, response = traced_submit
        trace = tracer.last_trace()
        assert trace is not None
        # The root's simulated time is the client-visible breakdown...
        assert trace.total_sim_ns == pytest.approx(response.breakdown.total_ns)
        # ...and the phase spans cover at least 90% of it.
        assert trace.coverage() >= 0.9

    def test_spans_nest_across_nodes(self, traced_submit):
        _, tracer, _ = traced_submit
        trace = tracer.last_trace()
        root = trace.root
        assert root.name == SPAN_QUERY and root.node == NODE_CLIENT
        nodes_by_name = {s.name: s.node for s in trace.spans}
        assert nodes_by_name[SPAN_POLICY_CHECK] == NODE_MONITOR
        assert nodes_by_name[SPAN_STORAGE_PHASE] == NODE_STORAGE
        assert nodes_by_name[SPAN_HOST_JOIN_AGG] == NODE_HOST
        # ndp_filter nests under storage_phase which nests under the root.
        phase = trace.find(SPAN_STORAGE_PHASE)[0]
        scan = trace.find(SPAN_NDP_FILTER)[0]
        assert phase.parent_id == root.span_id
        assert scan.parent_id == phase.span_id
        assert all(s.name in KNOWN_SPAN_NAMES for s in trace.spans)

    def test_trace_carries_verifiable_audit_digests(self, traced_submit):
        deployment, tracer, response = traced_submit
        trace = tracer.last_trace()
        refs = audit_references(trace)
        logs = {r["log"] for r in refs}
        assert "reads" in logs  # the logUpdate obligation
        assert "operations" in logs  # session lifecycle
        assert verify_trace_audit(trace, deployment.monitor) == len(refs)
        assert query_digest_of(trace) == response.proof.query_digest.hex()

    def test_tampered_reference_is_detected(self, traced_submit):
        deployment, tracer, _ = traced_submit
        source = tracer.last_trace()
        # Work on a copy via the JSONL round trip, then flip one digest.
        import io

        buffer = io.StringIO()
        write_jsonl([source], buffer)
        buffer.seek(0)
        (copy,), _ = read_jsonl(buffer)
        for span in copy.spans:
            if span.audit:
                span.audit[0]["digest"] = "00" * 32
                break
        with pytest.raises(IntegrityError, match="stale digest"):
            verify_trace_audit(copy, deployment.monitor)

    def test_untraced_trace_is_not_evidence(self, traced_submit):
        deployment, _, _ = traced_submit
        empty = Trace("q9999")
        empty.add(Span(name=SPAN_QUERY, span_id=1, trace_id="q9999"))
        with pytest.raises(IntegrityError, match="no audit references"):
            verify_trace_audit(empty, deployment.monitor)

    def test_chrome_export_of_real_trace(self, traced_submit, tmp_path):
        _, tracer, _ = traced_submit
        path = str(tmp_path / "query.json")
        write_chrome_trace([tracer.last_trace()], path)
        with open(path, encoding="utf-8") as fp:
            doc = json.load(fp)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] in ("X", "i")}
        assert {SPAN_QUERY, SPAN_STORAGE_PHASE, SPAN_HOST_JOIN_AGG} <= names


# ---------------------------------------------------------------------------
# repro-trace CLI
# ---------------------------------------------------------------------------


class TestCLI:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl([small_trace()], path, metrics=registry)
        return path

    def test_summary(self, trace_file, capsys):
        assert trace_cli(["summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert SPAN_QUERY in out and "metric value" in out

    def test_tree_and_filter(self, trace_file, capsys):
        assert trace_cli(["tree", trace_file]) == 0
        assert "q0001" in capsys.readouterr().out
        assert trace_cli(["tree", trace_file, "--trace-id", "missing"]) == 1

    def test_top(self, trace_file, capsys):
        assert trace_cli(["top", trace_file, "-n", "2"]) == 0
        assert SPAN_QUERY in capsys.readouterr().out

    def test_export_chrome_and_jsonl(self, trace_file, tmp_path, capsys):
        chrome = str(tmp_path / "out.json")
        assert trace_cli(["export", trace_file, "-o", chrome]) == 0
        with open(chrome, encoding="utf-8") as fp:
            assert "traceEvents" in json.load(fp)

        jsonl = str(tmp_path / "out.jsonl")
        assert (
            trace_cli(["export", trace_file, "-o", jsonl, "--format", "jsonl"]) == 0
        )
        traces, _ = read_jsonl(jsonl)
        assert len(traces) == 1

    def test_diff(self, trace_file, tmp_path, capsys):
        other = small_trace()
        other.root.set_sim_ns(250.0)
        new = str(tmp_path / "new.jsonl")
        write_jsonl([other], new)
        assert trace_cli(["diff", trace_file, new]) == 0
        assert SPAN_QUERY in capsys.readouterr().out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            trace_cli(["summary", "/nonexistent/trace.jsonl"])


def test_render_helpers_accept_real_traces():
    tracer = make_tracer()
    with tracer.span(SPAN_QUERY, node=NODE_CLIENT) as root:
        with tracer.span(SPAN_STORAGE_PHASE, node=NODE_STORAGE) as phase:
            phase.set_sim_ns(10.0)
    root.set_sim_ns(20.0)
    trace = tracer.last_trace()
    assert SPAN_STORAGE_PHASE in render_tree(trace)
    assert SPAN_QUERY in render_summary([trace])

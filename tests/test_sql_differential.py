"""Differential testing: our engine vs SQLite on identical data.

SQLite (stdlib) acts as the oracle.  Dates are stored as ISO strings on
the SQLite side and converted for comparison.  Floating-point results are
compared with a tolerance; row order is ignored unless the query has a
total ORDER BY.
"""

from __future__ import annotations

import datetime
import math
import sqlite3

import pytest

from repro.crypto import Rng
from repro.sql import memory_database

ROWS_T = 180
ROWS_U = 60


@pytest.fixture(scope="module")
def engines():
    rng = Rng("differential")
    ours = memory_database()
    oracle = sqlite3.connect(":memory:")

    ours.execute("CREATE TABLE t (id INTEGER, grp INTEGER, val REAL, tag TEXT, d DATE)")
    oracle.execute("CREATE TABLE t (id INTEGER, grp INTEGER, val REAL, tag TEXT, d TEXT)")
    ours.execute("CREATE TABLE u (uid INTEGER, grp INTEGER, label TEXT)")
    oracle.execute("CREATE TABLE u (uid INTEGER, grp INTEGER, label TEXT)")

    tags = ["alpha", "beta", "gamma", "delta", None]
    base = datetime.date(2020, 1, 1)
    t_rows = []
    for i in range(ROWS_T):
        grp = rng.randint(0, 9) if rng.random() > 0.05 else None
        val = round(rng.random() * 100, 2) if rng.random() > 0.1 else None
        tag = tags[rng.randint(0, 4)]
        day = base + datetime.timedelta(days=rng.randint(0, 700))
        t_rows.append((i, grp, val, tag, day))
    u_rows = []
    for i in range(ROWS_U):
        u_rows.append((i, rng.randint(0, 12), f"label-{rng.randint(0, 5)}"))

    ours.store.insert_rows("t", t_rows)
    ours.store.insert_rows("u", u_rows)
    oracle.executemany(
        "INSERT INTO t VALUES (?,?,?,?,?)",
        [(a, b, c, d, e.isoformat()) for a, b, c, d, e in t_rows],
    )
    oracle.executemany("INSERT INTO u VALUES (?,?,?)", u_rows)
    return ours, oracle


def _normalize(value):
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return round(value, 6)
    return value


def _compare(ours_rows, oracle_rows, ordered):
    a = [tuple(_normalize(v) for v in row) for row in ours_rows]
    b = [tuple(_normalize(v) for v in row) for row in oracle_rows]
    if not ordered:
        a, b = sorted(a, key=repr), sorted(b, key=repr)
    assert len(a) == len(b), f"row count {len(a)} vs oracle {len(b)}"
    for row_a, row_b in zip(a, b):
        assert len(row_a) == len(row_b)
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, (int, float)):
                assert math.isclose(x, float(y), rel_tol=1e-9, abs_tol=1e-9), (x, y)
            else:
                assert x == y, (row_a, row_b)


QUERIES = [
    # (sql for ours, sql for sqlite (None = same), has total order)
    ("SELECT id, val FROM t WHERE val > 50", None, False),
    ("SELECT id FROM t WHERE val IS NULL", None, False),
    ("SELECT id FROM t WHERE grp = 3 AND val <= 40.5", None, False),
    ("SELECT id FROM t WHERE tag LIKE 'a%' OR tag LIKE '%ta'", None, False),
    ("SELECT id FROM t WHERE tag NOT LIKE '%a%' AND tag IS NOT NULL", None, False),
    ("SELECT id FROM t WHERE val BETWEEN 20 AND 30", None, False),
    ("SELECT id FROM t WHERE grp IN (1, 3, 5)", None, False),
    ("SELECT id FROM t WHERE grp NOT IN (1, 3, 5)", None, False),
    ("SELECT count(*), count(val), count(grp) FROM t", None, False),
    ("SELECT sum(val), min(val), max(val) FROM t", None, False),
    ("SELECT avg(val) FROM t WHERE grp = 2", None, False),
    ("SELECT grp, count(*) FROM t GROUP BY grp", None, False),
    ("SELECT grp, sum(val) FROM t WHERE val IS NOT NULL GROUP BY grp", None, False),
    ("SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 15", None, False),
    ("SELECT tag, count(DISTINCT grp) FROM t GROUP BY tag", None, False),
    ("SELECT DISTINCT grp FROM t", None, False),
    ("SELECT DISTINCT tag, grp FROM t WHERE id < 50", None, False),
    (
        "SELECT id, val FROM t WHERE val IS NOT NULL ORDER BY val DESC, id LIMIT 10",
        None,
        True,
    ),
    ("SELECT id FROM t ORDER BY id LIMIT 5", None, True),
    (
        "SELECT t.id, u.uid FROM t, u WHERE t.grp = u.grp AND t.val > 80",
        None,
        False,
    ),
    (
        "SELECT u.label, count(t.id) FROM u LEFT OUTER JOIN t ON u.grp = t.grp GROUP BY u.label",
        None,
        False,
    ),
    (
        "SELECT a.id, b.id FROM t a, t b WHERE a.grp = b.grp AND a.id < b.id AND a.val > 95",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE grp IN (SELECT grp FROM u WHERE label = 'label-1')",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE grp NOT IN (SELECT grp FROM t WHERE grp IS NOT NULL)",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE EXISTS (SELECT 1 FROM t WHERE t.grp = u.grp AND t.val > 90)",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE NOT EXISTS (SELECT 1 FROM t WHERE t.grp = u.grp)",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE val = (SELECT max(val) FROM t)",
        None,
        False,
    ),
    (
        "SELECT id FROM t outer_t WHERE val > "
        "(SELECT avg(val) FROM t WHERE grp = outer_t.grp) AND grp IS NOT NULL",
        None,
        False,
    ),
    (
        "SELECT g, n FROM (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) sub WHERE n > 10",
        None,
        False,
    ),
    (
        "SELECT CASE WHEN val > 50 THEN 'high' WHEN val > 20 THEN 'mid' ELSE 'low' END, count(*) "
        "FROM t WHERE val IS NOT NULL GROUP BY CASE WHEN val > 50 THEN 'high' WHEN val > 20 THEN 'mid' ELSE 'low' END",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE d >= DATE '2020-06-01' AND d < DATE '2021-01-01'",
        "SELECT id FROM t WHERE d >= '2020-06-01' AND d < '2021-01-01'",
        False,
    ),
    (
        "SELECT sum(val * 2 - 1), sum(val) * 2 FROM t WHERE val IS NOT NULL",
        None,
        False,
    ),
    ("SELECT id, -val FROM t WHERE val > 99", None, False),
    ("SELECT tag || '-suffix' FROM t WHERE id < 10", None, False),
    ("SELECT abs(val - 50) FROM t WHERE id < 20 AND val IS NOT NULL", None, False),
    ("SELECT grp % 3, count(*) FROM t WHERE grp IS NOT NULL GROUP BY grp % 3", None, False),
]


@pytest.mark.parametrize("ours_sql,oracle_sql,ordered", QUERIES, ids=[q[0][:60] for q in QUERIES])
def test_against_sqlite(engines, ours_sql, oracle_sql, ordered):
    ours, oracle = engines
    ours_rows = ours.execute(ours_sql).rows
    oracle_rows = oracle.execute(oracle_sql or ours_sql).fetchall()
    _compare(ours_rows, oracle_rows, ordered)


def test_randomized_filter_queries(engines):
    """Sweep generated single-table filters against the oracle."""
    ours, oracle = engines
    rng = Rng("sweep")
    comparators = ["<", "<=", "=", ">", ">=", "<>"]
    for _ in range(60):
        column = rng.choice(["id", "grp", "val"])
        op = rng.choice(comparators)
        threshold = rng.randint(0, 100)
        sql = f"SELECT id FROM t WHERE {column} {op} {threshold}"
        _compare(ours.execute(sql).rows, oracle.execute(sql).fetchall(), False)


def test_randomized_group_queries(engines):
    ours, oracle = engines
    rng = Rng("sweep2")
    aggs = ["count(*)", "sum(val)", "min(val)", "max(val)", "count(val)"]
    for _ in range(30):
        agg = rng.choice(aggs)
        lo = rng.randint(0, 80)
        sql = f"SELECT grp, {agg} FROM t WHERE id >= {lo} GROUP BY grp"
        _compare(ours.execute(sql).rows, oracle.execute(sql).fetchall(), False)


# ---------------------------------------------------------------------------
# Vectorized execution (ISSUE 9): the morsel path is a pure optimization
# ---------------------------------------------------------------------------


def _row_and_vectorized(db, sql):
    """Run *sql* under both execution models, leaving the knob off."""
    db.set_vectorized(False)
    row = db.execute(sql).rows
    db.set_vectorized(True)
    try:
        vec = db.execute(sql).rows
    finally:
        db.set_vectorized(False)
    return row, vec


def test_randomized_vectorized_parity(engines):
    """Property: batch execution matches the row path on random
    TPC-H-shaped queries (arithmetic scans, grouped aggregates, and
    join-aggregates in the mold of Q6 / Q1 / Q3)."""
    ours, oracle = engines
    rng = Rng("vector-sweep")
    comparators = ["<", "<=", "=", ">", ">=", "<>"]
    aggs = ["count(*)", "sum(val)", "min(val)", "max(val)", "avg(val)", "count(tag)"]
    for _ in range(40):
        conjuncts = [(rng.choice(["id", "grp", "val"]), rng.choice(comparators),
                      rng.randint(0, 100))]
        if rng.randint(0, 1):
            conjuncts.append((rng.choice(["id", "grp", "val"]), ">=", rng.randint(0, 60)))

        def pred(prefix=""):
            return " AND ".join(f"{prefix}{c} {op} {v}" for c, op, v in conjuncts)

        shape = rng.randint(0, 2)
        if shape == 0:  # Q6-shaped arithmetic filter scan
            sql = f"SELECT id, val * 2 + grp FROM t WHERE {pred()}"
        elif shape == 1:  # Q1-shaped grouped aggregate
            sql = f"SELECT grp, {rng.choice(aggs)} FROM t WHERE {pred()} GROUP BY grp"
        else:  # Q3-shaped join + aggregate
            sql = (
                "SELECT u.label, count(*) FROM t, u "
                f"WHERE t.grp = u.grp AND {pred('t.')} GROUP BY u.label"
            )
        row_rows, vec_rows = _row_and_vectorized(ours, sql)
        assert sorted(vec_rows, key=repr) == sorted(row_rows, key=repr), sql
        if shape != 1:  # avg() NULL handling differs from SQLite's text affinity
            _compare(vec_rows, oracle.execute(sql).fetchall(), False)


def test_vectorized_off_is_byte_identical_across_configs(tiny_deployment):
    """With the knob off, every deployment configuration must be
    bit-for-bit the seed row path: same rows, same meters, same
    simulated nanoseconds — on both the serial and the pipelined ship
    path.  ``vectorized=False`` is the default, so each pair differs in
    the explicit knob only."""
    from repro.core import RunConfig
    from repro.tpch import ALL_QUERIES

    pairs = [
        (RunConfig(pipeline=False), RunConfig(pipeline=False, vectorized=False)),
        (RunConfig(), RunConfig(vectorized=False)),
    ]
    for number in (3, 6):
        sql = ALL_QUERIES[number].sql
        for config in ("hons", "hos", "vcs", "scs", "sos"):
            for default_cfg, off_cfg in pairs:
                base = tiny_deployment.run_query(sql, config, run_config=default_cfg)
                off = tiny_deployment.run_query(sql, config, run_config=off_cfg)
                assert off.rows == base.rows, (number, config)
                assert off.host_meter == base.host_meter, (number, config)
                assert off.storage_meter == base.storage_meter, (number, config)
                assert off.breakdown.total_ns == base.breakdown.total_ns, (number, config)


def test_vectorized_rows_agree_across_configs(tiny_deployment):
    """With the knob on, all five configurations still return the row
    path's answer — vectorization changes the schedule, never the rows —
    and the vectorized counters actually accrue where execution runs."""
    from repro.core import RunConfig
    from repro.tpch import ALL_QUERIES

    for number in (3, 6):
        sql = ALL_QUERIES[number].sql
        reference = sorted(tiny_deployment.run_query(sql, "hons").rows)
        for config in ("hons", "hos", "vcs", "scs", "sos"):
            vec = tiny_deployment.run_query(
                sql, config, run_config=RunConfig(vectorized=True)
            )
            assert sorted(vec.rows) == reference, (number, config)
            batches = vec.host_meter.get("vector_batches") + vec.storage_meter.get(
                "vector_batches"
            )
            assert batches > 0, (number, config)

"""Differential testing: our engine vs SQLite on identical data.

SQLite (stdlib) acts as the oracle.  Dates are stored as ISO strings on
the SQLite side and converted for comparison.  Floating-point results are
compared with a tolerance; row order is ignored unless the query has a
total ORDER BY.
"""

from __future__ import annotations

import datetime
import math
import sqlite3

import pytest

from repro.crypto import Rng
from repro.sql import memory_database

ROWS_T = 180
ROWS_U = 60


@pytest.fixture(scope="module")
def engines():
    rng = Rng("differential")
    ours = memory_database()
    oracle = sqlite3.connect(":memory:")

    ours.execute("CREATE TABLE t (id INTEGER, grp INTEGER, val REAL, tag TEXT, d DATE)")
    oracle.execute("CREATE TABLE t (id INTEGER, grp INTEGER, val REAL, tag TEXT, d TEXT)")
    ours.execute("CREATE TABLE u (uid INTEGER, grp INTEGER, label TEXT)")
    oracle.execute("CREATE TABLE u (uid INTEGER, grp INTEGER, label TEXT)")

    tags = ["alpha", "beta", "gamma", "delta", None]
    base = datetime.date(2020, 1, 1)
    t_rows = []
    for i in range(ROWS_T):
        grp = rng.randint(0, 9) if rng.random() > 0.05 else None
        val = round(rng.random() * 100, 2) if rng.random() > 0.1 else None
        tag = tags[rng.randint(0, 4)]
        day = base + datetime.timedelta(days=rng.randint(0, 700))
        t_rows.append((i, grp, val, tag, day))
    u_rows = []
    for i in range(ROWS_U):
        u_rows.append((i, rng.randint(0, 12), f"label-{rng.randint(0, 5)}"))

    ours.store.insert_rows("t", t_rows)
    ours.store.insert_rows("u", u_rows)
    oracle.executemany(
        "INSERT INTO t VALUES (?,?,?,?,?)",
        [(a, b, c, d, e.isoformat()) for a, b, c, d, e in t_rows],
    )
    oracle.executemany("INSERT INTO u VALUES (?,?,?)", u_rows)
    return ours, oracle


def _normalize(value):
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return round(value, 6)
    return value


def _compare(ours_rows, oracle_rows, ordered):
    a = [tuple(_normalize(v) for v in row) for row in ours_rows]
    b = [tuple(_normalize(v) for v in row) for row in oracle_rows]
    if not ordered:
        a, b = sorted(a, key=repr), sorted(b, key=repr)
    assert len(a) == len(b), f"row count {len(a)} vs oracle {len(b)}"
    for row_a, row_b in zip(a, b):
        assert len(row_a) == len(row_b)
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, (int, float)):
                assert math.isclose(x, float(y), rel_tol=1e-9, abs_tol=1e-9), (x, y)
            else:
                assert x == y, (row_a, row_b)


QUERIES = [
    # (sql for ours, sql for sqlite (None = same), has total order)
    ("SELECT id, val FROM t WHERE val > 50", None, False),
    ("SELECT id FROM t WHERE val IS NULL", None, False),
    ("SELECT id FROM t WHERE grp = 3 AND val <= 40.5", None, False),
    ("SELECT id FROM t WHERE tag LIKE 'a%' OR tag LIKE '%ta'", None, False),
    ("SELECT id FROM t WHERE tag NOT LIKE '%a%' AND tag IS NOT NULL", None, False),
    ("SELECT id FROM t WHERE val BETWEEN 20 AND 30", None, False),
    ("SELECT id FROM t WHERE grp IN (1, 3, 5)", None, False),
    ("SELECT id FROM t WHERE grp NOT IN (1, 3, 5)", None, False),
    ("SELECT count(*), count(val), count(grp) FROM t", None, False),
    ("SELECT sum(val), min(val), max(val) FROM t", None, False),
    ("SELECT avg(val) FROM t WHERE grp = 2", None, False),
    ("SELECT grp, count(*) FROM t GROUP BY grp", None, False),
    ("SELECT grp, sum(val) FROM t WHERE val IS NOT NULL GROUP BY grp", None, False),
    ("SELECT grp, count(*) FROM t GROUP BY grp HAVING count(*) > 15", None, False),
    ("SELECT tag, count(DISTINCT grp) FROM t GROUP BY tag", None, False),
    ("SELECT DISTINCT grp FROM t", None, False),
    ("SELECT DISTINCT tag, grp FROM t WHERE id < 50", None, False),
    (
        "SELECT id, val FROM t WHERE val IS NOT NULL ORDER BY val DESC, id LIMIT 10",
        None,
        True,
    ),
    ("SELECT id FROM t ORDER BY id LIMIT 5", None, True),
    (
        "SELECT t.id, u.uid FROM t, u WHERE t.grp = u.grp AND t.val > 80",
        None,
        False,
    ),
    (
        "SELECT u.label, count(t.id) FROM u LEFT OUTER JOIN t ON u.grp = t.grp GROUP BY u.label",
        None,
        False,
    ),
    (
        "SELECT a.id, b.id FROM t a, t b WHERE a.grp = b.grp AND a.id < b.id AND a.val > 95",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE grp IN (SELECT grp FROM u WHERE label = 'label-1')",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE grp NOT IN (SELECT grp FROM t WHERE grp IS NOT NULL)",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE EXISTS (SELECT 1 FROM t WHERE t.grp = u.grp AND t.val > 90)",
        None,
        False,
    ),
    (
        "SELECT uid FROM u WHERE NOT EXISTS (SELECT 1 FROM t WHERE t.grp = u.grp)",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE val = (SELECT max(val) FROM t)",
        None,
        False,
    ),
    (
        "SELECT id FROM t outer_t WHERE val > "
        "(SELECT avg(val) FROM t WHERE grp = outer_t.grp) AND grp IS NOT NULL",
        None,
        False,
    ),
    (
        "SELECT g, n FROM (SELECT grp AS g, count(*) AS n FROM t GROUP BY grp) sub WHERE n > 10",
        None,
        False,
    ),
    (
        "SELECT CASE WHEN val > 50 THEN 'high' WHEN val > 20 THEN 'mid' ELSE 'low' END, count(*) "
        "FROM t WHERE val IS NOT NULL GROUP BY CASE WHEN val > 50 THEN 'high' WHEN val > 20 THEN 'mid' ELSE 'low' END",
        None,
        False,
    ),
    (
        "SELECT id FROM t WHERE d >= DATE '2020-06-01' AND d < DATE '2021-01-01'",
        "SELECT id FROM t WHERE d >= '2020-06-01' AND d < '2021-01-01'",
        False,
    ),
    (
        "SELECT sum(val * 2 - 1), sum(val) * 2 FROM t WHERE val IS NOT NULL",
        None,
        False,
    ),
    ("SELECT id, -val FROM t WHERE val > 99", None, False),
    ("SELECT tag || '-suffix' FROM t WHERE id < 10", None, False),
    ("SELECT abs(val - 50) FROM t WHERE id < 20 AND val IS NOT NULL", None, False),
    ("SELECT grp % 3, count(*) FROM t WHERE grp IS NOT NULL GROUP BY grp % 3", None, False),
]


@pytest.mark.parametrize("ours_sql,oracle_sql,ordered", QUERIES, ids=[q[0][:60] for q in QUERIES])
def test_against_sqlite(engines, ours_sql, oracle_sql, ordered):
    ours, oracle = engines
    ours_rows = ours.execute(ours_sql).rows
    oracle_rows = oracle.execute(oracle_sql or ours_sql).fetchall()
    _compare(ours_rows, oracle_rows, ordered)


def test_randomized_filter_queries(engines):
    """Sweep generated single-table filters against the oracle."""
    ours, oracle = engines
    rng = Rng("sweep")
    comparators = ["<", "<=", "=", ">", ">=", "<>"]
    for _ in range(60):
        column = rng.choice(["id", "grp", "val"])
        op = rng.choice(comparators)
        threshold = rng.randint(0, 100)
        sql = f"SELECT id FROM t WHERE {column} {op} {threshold}"
        _compare(ours.execute(sql).rows, oracle.execute(sql).fetchall(), False)


def test_randomized_group_queries(engines):
    ours, oracle = engines
    rng = Rng("sweep2")
    aggs = ["count(*)", "sum(val)", "min(val)", "max(val)", "count(val)"]
    for _ in range(30):
        agg = rng.choice(aggs)
        lo = rng.randint(0, 80)
        sql = f"SELECT grp, {agg} FROM t WHERE id >= {lo} GROUP BY grp"
        _compare(ours.execute(sql).rows, oracle.execute(sql).fetchall(), False)

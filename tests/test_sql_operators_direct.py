"""Direct unit tests for the physical operators (no parser/planner)."""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.sql.expressions import Scope
from repro.sql.operators import (
    Aggregate,
    AggSpec,
    Distinct,
    ExecContext,
    Filter,
    HashJoin,
    HashSemiJoin,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    RowsSource,
    Sort,
)


def _source(rows, *names):
    ctx = ExecContext()
    scope = Scope([(None, n) for n in names])
    return ctx, RowsSource(ctx, rows, scope)


def col(i):
    return lambda row: row[i]


class TestScanFilterProject:
    def test_rows_source(self):
        _, src = _source([(1,), (2,)], "a")
        assert list(src.rows()) == [(1,), (2,)]

    def test_filter_three_valued(self):
        ctx, src = _source([(1,), (None,), (3,)], "a")
        predicate = lambda row: None if row[0] is None else row[0] > 1
        out = list(Filter(ctx, src, predicate).rows())
        assert out == [(3,)]  # NULL predicate drops the row
        assert ctx.meter.predicate_evals == 3

    def test_project(self):
        ctx, src = _source([(1, 2)], "a", "b")
        scope = Scope([(None, "s")])
        out = list(Project(ctx, src, [lambda r: r[0] + r[1]], scope).rows())
        assert out == [(3,)]


class TestHashJoinDirect:
    def _join(self, left_rows, right_rows, kind="inner", residual=None):
        ctx = ExecContext()
        left = RowsSource(ctx, left_rows, Scope([("l", "k"), ("l", "v")]))
        right = RowsSource(ctx, right_rows, Scope([("r", "k"), ("r", "w")]))
        join = HashJoin(ctx, left, right, [col(0)], [col(0)], kind=kind, residual=residual)
        return ctx, list(join.rows())

    def test_inner(self):
        _, out = self._join([(1, "a"), (2, "b")], [(1, "x"), (3, "y")])
        assert out == [(1, "a", 1, "x")]

    def test_duplicates_multiply(self):
        _, out = self._join([(1, "a")], [(1, "x"), (1, "y")])
        assert len(out) == 2

    def test_left_outer_pads(self):
        _, out = self._join([(1, "a"), (2, "b")], [(1, "x")], kind="left")
        assert (2, "b", None, None) in out

    def test_residual_applies(self):
        _, out = self._join(
            [(1, 10), (1, 20)], [(1, 15)],
            residual=lambda row: row[1] > row[3],
        )
        assert out == [(1, 20, 1, 15)]

    def test_left_outer_residual_miss_pads(self):
        _, out = self._join(
            [(1, 10)], [(1, 15)], kind="left",
            residual=lambda row: row[1] > row[3],
        )
        assert out == [(1, 10, None, None)]

    def test_null_keys_do_not_match(self):
        _, out = self._join([(None, "a")], [(None, "x")])
        assert out == []

    def test_bad_kind_rejected(self):
        ctx = ExecContext()
        src = RowsSource(ctx, [], Scope([(None, "a")]))
        with pytest.raises(ExecutionError):
            HashJoin(ctx, src, src, [], [], kind="full")

    def test_memory_released_after_iteration(self):
        ctx, out = self._join([(1, "a")], [(1, "x")] * 100)
        assert ctx.allocated_bytes == 0
        assert ctx.meter.peak_memory_bytes > 0


class TestSemiAntiJoin:
    def _semi(self, left_rows, right_rows, **kw):
        ctx = ExecContext()
        left = RowsSource(ctx, left_rows, Scope([("l", "k")]))
        right = RowsSource(ctx, right_rows, Scope([("r", "k")]))
        return list(HashSemiJoin(ctx, left, right, [col(0)], [col(0)], **kw).rows())

    def test_semi(self):
        assert self._semi([(1,), (2,)], [(1,)]) == [(1,)]

    def test_semi_no_duplication(self):
        assert self._semi([(1,)], [(1,), (1,)]) == [(1,)]

    def test_anti(self):
        assert self._semi([(1,), (2,)], [(1,)], anti=True) == [(2,)]

    def test_null_aware_anti_poisoned_by_null(self):
        assert self._semi([(1,)], [(None,), (2,)], anti=True, null_aware=True) == []

    def test_anti_without_null_awareness(self):
        assert self._semi([(1,)], [(None,), (2,)], anti=True) == [(1,)]

    def test_null_probe_dropped(self):
        assert self._semi([(None,)], [(1,)]) == []
        assert self._semi([(None,)], [(1,)], anti=True) == []

    def test_residual(self):
        ctx = ExecContext()
        left = RowsSource(ctx, [(1, 5), (1, 50)], Scope([("l", "k"), ("l", "v")]))
        right = RowsSource(ctx, [(1, 10)], Scope([("r", "k"), ("r", "w")]))
        out = list(
            HashSemiJoin(
                ctx, left, right, [col(0)], [col(0)],
                residual=lambda row: row[1] > row[3],
            ).rows()
        )
        assert out == [(1, 50)]


class TestNestedLoop:
    def test_cross(self):
        ctx = ExecContext()
        left = RowsSource(ctx, [(1,), (2,)], Scope([("l", "a")]))
        right = RowsSource(ctx, [(10,), (20,)], Scope([("r", "b")]))
        out = list(NestedLoopJoin(ctx, left, right, None).rows())
        assert len(out) == 4

    def test_condition(self):
        ctx = ExecContext()
        left = RowsSource(ctx, [(1,), (2,)], Scope([("l", "a")]))
        right = RowsSource(ctx, [(1,), (2,)], Scope([("r", "b")]))
        out = list(
            NestedLoopJoin(ctx, left, right, lambda row: row[0] < row[1]).rows()
        )
        assert out == [(1, 2)]

    def test_left_outer(self):
        ctx = ExecContext()
        left = RowsSource(ctx, [(1,), (9,)], Scope([("l", "a")]))
        right = RowsSource(ctx, [(1,)], Scope([("r", "b")]))
        out = list(
            NestedLoopJoin(ctx, left, right, lambda row: row[0] == row[1], kind="left").rows()
        )
        assert out == [(1, 1), (9, None)]


class TestAggregateDirect:
    def _agg(self, rows, group_fns, specs):
        ctx = ExecContext()
        src = RowsSource(ctx, rows, Scope([(None, "g"), (None, "v")]))
        scope = Scope([(None, f"o{i}") for i in range(len(group_fns) + len(specs))])
        return list(Aggregate(ctx, src, group_fns, specs, scope).rows())

    def test_grouped(self):
        out = self._agg(
            [("a", 1), ("a", 2), ("b", 5)],
            [col(0)],
            [AggSpec("sum", col(1), False), AggSpec("count_star", None, False)],
        )
        assert sorted(out) == [("a", 3, 2), ("b", 5, 1)]

    def test_global_empty_input(self):
        out = self._agg([], [], [AggSpec("sum", col(1), False), AggSpec("count_star", None, False)])
        assert out == [(None, 0)]

    def test_min_max_ignore_nulls(self):
        out = self._agg(
            [("a", None), ("a", 3), ("a", 1)],
            [col(0)],
            [AggSpec("min", col(1), False), AggSpec("max", col(1), False),
             AggSpec("count", col(1), False)],
        )
        assert out == [("a", 1, 3, 2)]

    def test_avg(self):
        out = self._agg(
            [("a", 2), ("a", 4)], [col(0)], [AggSpec("avg", col(1), False)]
        )
        assert out == [("a", 3)]

    def test_distinct_spec(self):
        out = self._agg(
            [("a", 1), ("a", 1), ("a", 2)],
            [col(0)],
            [AggSpec("sum", col(1), True)],
        )
        assert out == [("a", 3)]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutionError):
            AggSpec("median", col(1), False)


class TestSortLimitDistinct:
    def test_sort_multi_key(self):
        ctx, src = _source([(2, "b"), (1, "z"), (1, "a")], "n", "s")
        out = list(Sort(ctx, src, [col(0), col(1)], [False, True]).rows())
        assert out == [(1, "z"), (1, "a"), (2, "b")]

    def test_sort_nulls_last_both_directions(self):
        ctx, src = _source([(None,), (2,), (1,)], "n")
        asc = list(Sort(ctx, src, [col(0)], [False]).rows())
        assert asc == [(1,), (2,), (None,)]
        ctx2, src2 = _source([(None,), (2,), (1,)], "n")
        desc = list(Sort(ctx2, src2, [col(0)], [True]).rows())
        assert desc == [(2,), (1,), (None,)]

    def test_limit(self):
        ctx, src = _source([(i,) for i in range(10)], "a")
        assert len(list(Limit(ctx, src, 3).rows())) == 3
        ctx2, src2 = _source([(1,)], "a")
        assert list(Limit(ctx2, src2, 0).rows()) == []

    def test_distinct(self):
        ctx, src = _source([(1,), (1,), (2,)], "a")
        assert list(Distinct(ctx, src).rows()) == [(1,), (2,)]

    def test_sort_counts_ops(self):
        ctx, src = _source([(i,) for i in range(100)], "a")
        list(Sort(ctx, src, [col(0)], [False]).rows())
        assert ctx.meter.sort_ops >= 100

"""Simulation substrate: clock, meters, cost model, network."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChannelError
from repro.sim import (
    CAT_CPU,
    CAT_DECRYPTION,
    CAT_EPC_PAGING,
    CAT_FRESHNESS,
    CAT_IO,
    CAT_NETWORK,
    CostModel,
    Meter,
    MIB,
    NetworkLink,
    PAGE_SIZE,
    SimClock,
    TimeBreakdown,
)


class TestClock:
    def test_charge_advances(self):
        clock = SimClock()
        clock.charge(1000, CAT_CPU)
        clock.charge(500, CAT_IO)
        assert clock.now_ns == 1500
        assert clock.breakdown.by_category[CAT_CPU] == 1000

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-1)

    def test_breakdown_minus(self):
        a = TimeBreakdown()
        a.add(CAT_CPU, 100)
        a.add(CAT_IO, 50)
        b = a.copy()
        b.add(CAT_CPU, 30)
        delta = b.minus(a)
        assert delta.by_category == {CAT_CPU: 30}

    def test_breakdown_scaled(self):
        a = TimeBreakdown()
        a.add(CAT_CPU, 100)
        assert a.scaled(0.5).by_category[CAT_CPU] == 50

    def test_fraction(self):
        a = TimeBreakdown()
        a.add(CAT_CPU, 75)
        a.add(CAT_IO, 25)
        assert a.fraction(CAT_CPU) == 0.75
        assert TimeBreakdown().fraction(CAT_CPU) == 0

    def test_merge(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add(CAT_CPU, 10)
        b.add(CAT_CPU, 5)
        b.add(CAT_IO, 2)
        a.merge(b)
        assert a.by_category[CAT_CPU] == 15
        assert a.total_ns == 17


class TestMeter:
    def test_merge_sums_counts(self):
        a, b = Meter(), Meter()
        a.rows_scanned = 10
        b.rows_scanned = 5
        b.pages_read = 2
        a.merge(b)
        assert a.rows_scanned == 15
        assert a.pages_read == 2

    def test_merge_maxes_peak_memory(self):
        a, b = Meter(), Meter()
        a.peak_memory_bytes = 100
        b.peak_memory_bytes = 50
        a.merge(b)
        assert a.peak_memory_bytes == 100

    def test_bump_known_and_extra(self):
        m = Meter()
        m.bump("rows_scanned", 3)
        m.bump("custom_counter", 2)
        assert m.rows_scanned == 3
        assert m.extra["custom_counter"] == 2

    def test_note_memory_high_water(self):
        m = Meter()
        m.note_memory(100)
        m.note_memory(50)
        assert m.peak_memory_bytes == 100

    def test_cpu_ops_weighting(self):
        m = Meter()
        m.rows_scanned = 10
        assert m.cpu_ops == 10.0
        m.hash_inserts = 4
        assert m.cpu_ops == 10.0 + 2.5 * 4

    def test_copy_is_independent(self):
        m = Meter()
        m.rows_scanned = 1
        c = m.copy()
        c.rows_scanned = 99
        assert m.rows_scanned == 1


class TestCostModel:
    cm = CostModel()

    def test_arm_slower_than_x86(self):
        m = Meter()
        m.rows_scanned = 1000
        x86 = self.cm.cpu_time_ns(m, platform="x86")
        arm = self.cm.cpu_time_ns(m, platform="arm")
        assert arm > x86
        assert arm == pytest.approx(x86 / self.cm.arm_core_speed)

    def test_enclave_overhead(self):
        m = Meter()
        m.rows_scanned = 1000
        plain = self.cm.cpu_time_ns(m, platform="x86")
        enclave = self.cm.cpu_time_ns(m, platform="x86", in_enclave=True)
        assert enclave == pytest.approx(plain * self.cm.sgx_cpu_overhead)

    def test_multicore_helps_but_sublinearly(self):
        m = Meter()
        m.rows_scanned = 10_000
        one = self.cm.cpu_time_ns(m, platform="arm", cores=1)
        sixteen = self.cm.cpu_time_ns(m, platform="arm", cores=16)
        assert sixteen < one
        assert sixteen > one / 16  # Amdahl: never perfectly linear

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            self.cm.cpu_time_ns(Meter(), platform="risc-v")

    def test_crypto_costs_scale_with_counts(self):
        m = Meter()
        m.pages_decrypted = 10
        assert self.cm.decryption_ns(m, platform="x86") == 10 * self.cm.page_decrypt_ns
        m2 = Meter()
        m2.page_macs_verified = 5
        m2.merkle_nodes_hashed = 20
        expected = 5 * self.cm.page_mac_ns + 20 * self.cm.merkle_node_hash_ns
        assert self.cm.freshness_ns(m2, platform="x86") == expected

    def test_arm_crypto_cheaper_than_arm_cpu(self):
        # The crypto accelerators narrow the ARM gap for crypto work.
        assert self.cm.arm_crypto_speed > self.cm.arm_core_speed

    def test_epc_no_faults_below_limit(self):
        m = Meter()
        m.pages_read = 10
        m.peak_memory_bytes = 1 * MIB
        bd = self.cm.phase_breakdown(m, platform="x86", in_enclave=True)
        assert bd.by_category.get(CAT_EPC_PAGING, 0) == 0

    def test_epc_streaming_faults(self):
        cm = self.cm.scaled(epc_limit_bytes=100 * PAGE_SIZE)
        m = Meter()
        m.pages_read = 500
        m.peak_memory_bytes = 90 * PAGE_SIZE
        bd = cm.phase_breakdown(m, platform="x86", in_enclave=True)
        # budget = 10 pages -> 490 streamed faults
        assert bd.by_category[CAT_EPC_PAGING] == pytest.approx(490 * cm.epc_fault_ns)

    def test_epc_thrash_regime_continuous(self):
        cm = self.cm.scaled(epc_limit_bytes=100 * PAGE_SIZE)
        m = Meter()
        m.pages_read = 500
        m.peak_memory_bytes = 100 * PAGE_SIZE  # exactly at the limit
        at_limit = cm.phase_breakdown(m, platform="x86", in_enclave=True)
        m.peak_memory_bytes = 101 * PAGE_SIZE
        just_over = cm.phase_breakdown(m, platform="x86", in_enclave=True)
        assert just_over.by_category[CAT_EPC_PAGING] >= at_limit.by_category[CAT_EPC_PAGING]

    def test_remote_io_charges_network(self):
        m = Meter()
        m.pages_read = 100
        local = self.cm.phase_breakdown(m, platform="x86")
        remote = self.cm.phase_breakdown(m, platform="x86", remote_io=True)
        assert CAT_IO in local.by_category
        assert CAT_NETWORK in remote.by_category
        assert remote.total_ns > local.total_ns

    def test_memory_limit_spill(self):
        m = Meter()
        m.peak_memory_bytes = 10 * MIB
        fits = self.cm.phase_breakdown(m, platform="arm", memory_limit_bytes=20 * MIB)
        spills = self.cm.phase_breakdown(m, platform="arm", memory_limit_bytes=5 * MIB)
        assert spills.total_ns > fits.total_ns

    def test_scaled_returns_modified_copy(self):
        other = self.cm.scaled(net_bandwidth=1e9)
        assert other.net_bandwidth == 1e9
        assert self.cm.net_bandwidth != 1e9

    @given(pages=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_breakdown_nonnegative(self, pages):
        m = Meter()
        m.pages_read = pages
        bd = self.cm.phase_breakdown(m, platform="arm")
        assert all(v >= 0 for v in bd.by_category.values())


class TestNetwork:
    def _link(self):
        clock = SimClock()
        link = NetworkLink(clock, CostModel())
        link.register("a")
        link.register("b")
        return clock, link

    def test_send_receive(self):
        _, link = self._link()
        link.send("a", "b", b"hello")
        sender, payload = link.receive("b")
        assert (sender, payload) == ("a", b"hello")

    def test_charges_time(self):
        clock, link = self._link()
        link.send("a", "b", bytes(1_000_000))
        assert clock.now_ns > 0

    def test_in_order_delivery(self):
        _, link = self._link()
        link.send("a", "b", b"1")
        link.send("a", "b", b"2")
        assert link.receive("b")[1] == b"1"
        assert link.receive("b")[1] == b"2"

    def test_unknown_endpoint_rejected(self):
        _, link = self._link()
        with pytest.raises(ChannelError):
            link.send("a", "nobody", b"x")
        with pytest.raises(ChannelError):
            link.receive("nobody")

    def test_empty_inbox_rejected(self):
        _, link = self._link()
        with pytest.raises(ChannelError):
            link.receive("b")

    def test_duplicate_registration_rejected(self):
        _, link = self._link()
        with pytest.raises(ChannelError):
            link.register("a")

    def test_meter_accounting(self):
        _, link = self._link()
        meter = Meter()
        link.send("a", "b", bytes(100), meter=meter)
        assert meter.bytes_sent == 100
        assert meter.messages_sent == 1
        recv_meter = Meter()
        link.receive("b", meter=recv_meter)
        assert recv_meter.bytes_received == 100

    def test_pending(self):
        _, link = self._link()
        assert link.pending("b") == 0
        link.send("a", "b", b"x")
        assert link.pending("b") == 1

"""Tests for the interprocedural taint/dataflow engine (repro.analysis.flow).

Four layers:

* propagation properties — taint must survive tuple unpacking, augmented
  assignment, comprehensions, ``dict.get`` chains and decorator-wrapped
  helpers (the shapes that defeat naive def-use matching);
* the regression corpus under ``tests/flow_corpus/`` — every known-bad
  snippet fires exactly its expected rules, every known-good snippet is
  clean;
* seeded mutations of the real tree — deleting the batch Merkle walk in
  ``SecurePager.read_pages`` must fire TAINT002, logging a derived key in
  ``KeyManager.open_session`` must fire TAINT001;
* CLI plumbing — SARIF 2.1.0 structure, ``--explain``, exit 2 on empty
  path sets, and the baseline multiset tiebreaker.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import Analyzer, collect_files
from repro.analysis.findings import Finding
from repro.analysis.flow import FlowProgram
from repro.analysis.registry import select_rules

REPO = Path(__file__).resolve().parent.parent
CORPUS = Path(__file__).resolve().parent / "flow_corpus"
FLOW_RULES = ["TAINT001", "TAINT002", "TAINT003", "FLOW001"]


def flow_hits(source: str) -> set[tuple[str, int]]:
    """Run the dataflow program over one snippet; return (rule, line) pairs."""
    tree = ast.parse(textwrap.dedent(source))
    program = FlowProgram([("snippet.py", None, tree)])
    return {(h.rule_id, h.line) for h in program.hits}


def flow_rule_ids(source: str) -> set[str]:
    return {rule for rule, _ in flow_hits(source)}


class TestPropagation:
    def test_tuple_unpacking_is_element_wise(self):
        hits = flow_hits(
            """
            def f(root, link):
                key, label = hkdf(root, b"x", 32), "session-1"
                print(label)
                print(key)
            """
        )
        assert hits == {("TAINT001", 5)}  # only the key, not the label

    def test_nested_tuple_unpacking(self):
        assert flow_rule_ids(
            """
            def f(root):
                (key, salt), n = (hkdf(root, b"x", 32), b"s"), 3
                print(key)
            """
        ) == {"TAINT001"}

    def test_augmented_assignment_accumulates(self):
        assert flow_rule_ids(
            """
            def f(root):
                blob = b"prefix:"
                blob += hkdf(root, b"x", 32)
                print(blob)
            """
        ) == {"TAINT001"}

    def test_comprehension_binds_iteration_taint(self):
        assert flow_rule_ids(
            """
            def f(root, infos):
                keys = [hkdf(root, info, 32) for info in infos]
                hexed = [k.hex() for k in keys]
                print(hexed)
            """
        ) == {"TAINT001"}

    def test_dict_get_chain(self):
        assert flow_rule_ids(
            """
            def f(root):
                vault = {"page": hkdf(root, b"page", 32)}
                print(vault.get("page"))
            """
        ) == {"TAINT001"}

    def test_decorator_wrapped_function_summary(self):
        assert flow_rule_ids(
            """
            def traced(fn):
                return fn

            @traced
            def derive(root):
                return hkdf(root, b"x", 32)

            def audit(root):
                print(derive(root))
            """
        ) == {"TAINT001"}

    def test_for_loop_target(self):
        assert flow_rule_ids(
            """
            def f(pager, link, pgnos):
                for payload in pager.read_pages(pgnos):
                    link.send(payload)
            """
        ) == {"FLOW001"}

    def test_digest_declassifies(self):
        assert (
            flow_rule_ids(
                """
                def f(root):
                    key = hkdf(root, b"x", 32)
                    print(sha256(key).hex())
                """
            )
            == set()
        )

    def test_guard_is_flow_sensitive(self):
        # Decode *before* the MAC check fires; after it, clean.
        bad = flow_rule_ids(
            """
            def f(link, mac_key):
                frame = link.receive()
                obj = json.loads(frame)
                if not constant_time_eq(hmac_sha256(mac_key, frame), frame):
                    raise ValueError("bad")
                return obj
            """
        )
        good = flow_rule_ids(
            """
            def f(link, mac_key):
                frame = link.receive()
                if not constant_time_eq(hmac_sha256(mac_key, frame), frame):
                    raise ValueError("bad")
                return json.loads(frame)
            """
        )
        assert "TAINT002" in bad and good == set()

    def test_mac_alone_does_not_clear_storage_taint(self):
        # constant_time_eq proves integrity, not freshness: storage bytes
        # stay tainted until a verify_* (Merkle) walk.
        assert flow_rule_ids(
            """
            def f(device, mac_key, pgno):
                raw = device.read_page(pgno)
                if not constant_time_eq(hmac_sha256(mac_key, raw), raw):
                    raise ValueError("bad")
                return unpack_page(raw)
            """
        ) == {"TAINT002"}

    def test_handler_guard_does_not_sanitize_fallthrough(self):
        # A verify call inside an except handler must not clear taint on
        # the non-exceptional path.
        assert flow_rule_ids(
            """
            def f(device, tree, pgno, digest, root):
                raw = device.read_page(pgno)
                try:
                    pass
                except Exception:
                    tree.verify_leaf(pgno, digest, root)
                return unpack_page(raw)
            """
        ) == {"TAINT002"}

    def test_exception_interpolation(self):
        assert flow_rule_ids(
            """
            def f(root):
                key = hkdf(root, b"x", 32)
                raise ValueError(f"bad key {key.hex()}")
            """
        ) == {"TAINT001"}

    def test_interprocedural_two_hop_summary(self):
        assert flow_rule_ids(
            """
            def inner(root):
                return hkdf(root, b"x", 32)

            def outer(root):
                return inner(root)

            def audit(root):
                print(outer(root))
            """
        ) == {"TAINT001"}

    def test_recursion_terminates(self):
        program_hits = flow_hits(
            """
            def walk(root, depth):
                if depth == 0:
                    return hkdf(root, b"x", 32)
                return walk(root, depth - 1)

            def audit(root):
                print(walk(root, 3))
            """
        )
        assert ("TAINT001", 8) in program_hits


class TestCorpus:
    @pytest.mark.parametrize(
        "snippet", sorted(CORPUS.glob("*.py")), ids=lambda p: p.stem
    )
    def test_snippet(self, snippet):
        header = [
            line
            for line in snippet.read_text().splitlines()
            if line.startswith("# expect:")
        ]
        assert header, f"{snippet.name} has no '# expect:' header"
        expected = set()
        for line in header:
            value = line.split(":", 1)[1].strip()
            if value != "none":
                expected.update(v.strip() for v in value.split(","))

        analyzer = Analyzer(rules=select_rules(FLOW_RULES), root=CORPUS)
        result = analyzer.run([snippet])
        got = {f.rule_id for f in result.findings}
        assert got == expected, (
            f"{snippet.name}: expected {sorted(expected)}, got "
            f"{[f.render() for f in result.findings]}"
        )

    def test_corpus_has_positive_and_negative_for_every_rule(self):
        names = [p.stem for p in CORPUS.glob("*.py")]
        assert any(n.startswith("kb_") for n in names)
        assert any(n.startswith("kg_") for n in names)
        # Each rule must be demonstrated by at least one known-bad file.
        fired = set()
        for snippet in CORPUS.glob("kb_*.py"):
            for line in snippet.read_text().splitlines():
                if line.startswith("# expect:"):
                    fired.update(
                        v.strip() for v in line.split(":", 1)[1].split(",")
                    )
        assert fired >= set(FLOW_RULES)


def _copy_tree_and_lint(tmp_path: Path, mutate, select: list[str]):
    tree = tmp_path / "repro"
    shutil.copytree(REPO / "src" / "repro", tree)
    mutate(tree)
    analyzer = Analyzer(rules=select_rules(select), root=tmp_path)
    return analyzer.run([tree])


class TestSeededMutations:
    def test_clean_tree_has_no_flow_findings(self, tmp_path):
        result = _copy_tree_and_lint(tmp_path, lambda tree: None, FLOW_RULES)
        assert result.findings == []

    def test_deleting_batch_merkle_walk_fires_taint002(self, tmp_path):
        def mutate(tree: Path) -> None:
            pager = tree / "storage" / "securepager.py"
            source = pager.read_text()
            call = "self.tree.verify_leaves(misses, digests, self._trusted_root)"
            assert call in source
            pager.write_text(source.replace(call, "pass"))

        result = _copy_tree_and_lint(tmp_path, mutate, ["TAINT002"])
        assert any(
            f.rule_id == "TAINT002" and "securepager" in f.path
            for f in result.findings
        ), [f.render() for f in result.findings]

    def test_logging_derived_key_fires_taint001(self, tmp_path):
        def mutate(tree: Path) -> None:
            km = tree / "monitor" / "keymanager.py"
            source = km.read_text()
            anchor = "key = hkdf(self._root, session_id.encode(), 32)"
            assert anchor in source
            km.write_text(
                source.replace(
                    anchor, anchor + '\n        print("derived", key)'
                )
            )

        result = _copy_tree_and_lint(tmp_path, mutate, ["TAINT001"])
        assert any(
            f.rule_id == "TAINT001" and "keymanager" in f.path
            for f in result.findings
        ), [f.render() for f in result.findings]

    def test_swallowing_integrity_error_fires_taint003(self, tmp_path):
        def mutate(tree: Path) -> None:
            stores = tree / "sql" / "stores.py"
            source = stores.read_text()
            stores.write_text(
                source
                + "\n\ndef quiet_scan(pager, pgno):\n"
                "    from ..errors import IntegrityError\n"
                "    try:\n"
                "        return pager.read_page(pgno)\n"
                "    except IntegrityError:\n"
                "        return None\n"
            )

        result = _copy_tree_and_lint(tmp_path, mutate, ["TAINT003"])
        assert any(f.rule_id == "TAINT003" for f in result.findings)


def _validate_sarif(log: dict) -> None:
    """Hand-rolled structural check against the SARIF 2.1.0 shape."""
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    assert isinstance(log["runs"], list) and len(log["runs"]) == 1
    run = log["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert isinstance(driver["rules"], list) and driver["rules"]
    for rule in driver["rules"]:
        assert rule["id"]
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "none", "note", "warning", "error",
        )
    rule_ids = {r["id"] for r in driver["rules"]}
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] in ("none", "note", "warning", "error")
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1
        if "ruleIndex" in result:
            assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        for suppression in result.get("suppressions", []):
            assert suppression["kind"] in ("inSource", "external")


class TestSarifExport:
    def test_sarif_output_is_valid(self, tmp_path):
        snippet = tmp_path / "leak.py"
        snippet.write_text(
            "import logging\n"
            "def f(root):\n"
            "    key = hkdf(root, b'x', 32)\n"
            "    logging.info('k=%r', key)\n"
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis",
                str(snippet), "--format", "sarif",
            ],
            capture_output=True, text=True,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        log = json.loads(proc.stdout)
        _validate_sarif(log)
        assert any(
            r["ruleId"] == "TAINT001" for r in log["runs"][0]["results"]
        )

    def test_grandfathered_findings_become_suppressions(self, tmp_path):
        snippet = tmp_path / "leak.py"
        snippet.write_text("def f(root):\n    print(hkdf(root, b'x', 32))\n")
        analyzer = Analyzer(rules=select_rules(["TAINT001"]), root=tmp_path)
        first = analyzer.run([snippet])
        baseline = Baseline.from_findings(first.findings)
        second = analyzer.run([snippet], baseline=baseline)

        from repro.analysis.sarif import to_sarif

        log = to_sarif(second, select_rules(["TAINT001"]))
        _validate_sarif(log)
        results = log["runs"][0]["results"]
        assert len(results) == 1 and results[0]["suppressions"]


class TestCliPlumbing:
    def test_empty_path_set_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert cli_main([str(empty)]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_collect_files_raises_on_empty(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path])

    def test_explain_lists_catalog(self, capsys):
        assert cli_main(["--explain", "TAINT001"]) == 0
        out = capsys.readouterr().out
        assert "hkdf" in out and "sources:" in out and "sanitizers:" in out

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert cli_main(["--explain", "TAINT999"]) == 2

    def test_analyzer_does_not_swallow_keyboard_interrupt(
        self, tmp_path, monkeypatch
    ):
        victim = tmp_path / "mod.py"
        victim.write_text("x = 1\n")
        original = Path.read_text

        def boom(self, *args, **kwargs):
            if self.name == "mod.py":
                raise KeyboardInterrupt
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", boom)
        with pytest.raises(KeyboardInterrupt):
            Analyzer(rules=select_rules(["SEC001"]), root=tmp_path).run([victim])


class TestBaselineMultiset:
    def _finding(self, line: int, message: str = "dup") -> Finding:
        return Finding(
            rule_id="SEC001", path="a.py", line=line, col=1, message=message
        )

    def test_duplicate_identities_consume_counts(self):
        baseline = Baseline.from_findings([self._finding(1)])
        new, old = baseline.split([self._finding(1), self._finding(9)])
        assert [f.line for f in old] == [1]
        assert [f.line for f in new] == [9]

    def test_tiebreak_is_occurrence_ordered_not_input_ordered(self):
        baseline = Baseline.from_findings([self._finding(1)])
        # Same findings, reversed input order: the earliest occurrence
        # (line 1) must still be the grandfathered one.
        new, old = baseline.split([self._finding(9), self._finding(1)])
        assert [f.line for f in old] == [1]
        assert [f.line for f in new] == [9]

    def test_duplicates_round_trip_through_dump_and_load(self, tmp_path):
        findings = [self._finding(1), self._finding(9)]
        Baseline.from_findings(findings).dump(tmp_path / "b.json")
        loaded = Baseline.load(tmp_path / "b.json")
        new, old = loaded.split(findings + [self._finding(20)])
        assert len(old) == 2 and [f.line for f in new] == [20]

"""CI self-check: the shipped tree must stay clean under its own analyzer.

Runs the real CLI in a subprocess, exactly as CI and developers invoke it,
so regressions in packaging (``python -m repro.analysis``) fail here too.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_lint(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        """``repro-lint src/repro --fail-on-findings`` gates every PR."""
        proc = run_lint("src/repro", "--fail-on-findings")
        assert proc.returncode == 0, (
            "the analyzer found violations in the shipped tree:\n" + proc.stdout
        )

    def test_seeded_violation_fails_the_gate(self, tmp_path):
        """A digest compared with ``==`` must flip the exit code to 1."""
        bad = tmp_path / "seeded.py"
        bad.write_text(
            "def verify(page_digest, expected):\n"
            "    return page_digest == expected\n"
        )
        proc = run_lint(str(bad), "--fail-on-findings")
        assert proc.returncode == 1
        assert "SEC001" in proc.stdout

    def test_seeded_layering_violation_fails_the_gate(self, tmp_path):
        """An inverted import (crypto → monitor) must also fail."""
        pkg = tmp_path / "repro" / "crypto"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "seeded.py").write_text("from ..monitor import TrustedMonitor\n")
        proc = run_lint(str(tmp_path / "repro"), "--fail-on-findings")
        assert proc.returncode == 1
        assert "ARCH001" in proc.stdout

    def test_entry_point_registered(self):
        """The ``repro-lint`` console script ships in pyproject.toml."""
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'repro-lint = "repro.analysis.cli:main"' in pyproject

    def test_telemetry_tree_is_gated(self):
        """The telemetry package is linted (ARCH004 guards its isolation)."""
        proc = run_lint("src/repro/telemetry", "--fail-on-findings")
        assert proc.returncode == 0, (
            "the telemetry package violates its isolation rules:\n" + proc.stdout
        )

    def test_seeded_telemetry_violation_fails_the_gate(self, tmp_path):
        """Telemetry importing repro.crypto must fail the gate (ARCH004)."""
        pkg = tmp_path / "repro" / "telemetry"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "seeded.py").write_text("from ..crypto import hmac_sha256\n")
        proc = run_lint(str(tmp_path / "repro"), "--fail-on-findings")
        assert proc.returncode == 1
        assert "ARCH004" in proc.stdout

    def test_stats_tree_is_gated(self):
        """The stats package is linted (ARCH006 guards its sql surface)."""
        proc = run_lint("src/repro/stats", "--fail-on-findings")
        assert proc.returncode == 0, (
            "the stats package violates its surface rules:\n" + proc.stdout
        )

    def test_seeded_stats_violation_fails_the_gate(self, tmp_path):
        """Stats importing the stores must fail the gate (ARCH006)."""
        pkg = tmp_path / "repro" / "stats"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "seeded.py").write_text("from ..sql.stores import PagedStore\n")
        proc = run_lint(str(tmp_path / "repro"), "--fail-on-findings")
        assert proc.returncode == 1
        assert "ARCH006" in proc.stdout

    def test_shard_tree_is_gated(self):
        """The shard package is linted (ARCH010 guards its confinement)."""
        proc = run_lint("src/repro/shard", "--fail-on-findings")
        assert proc.returncode == 0, (
            "the shard package violates its confinement rules:\n" + proc.stdout
        )

    def test_seeded_shard_violation_fails_the_gate(self, tmp_path):
        """Shard importing the planner must fail the gate (ARCH010)."""
        pkg = tmp_path / "repro" / "shard"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "seeded.py").write_text("from ..sql.planner import Planner\n")
        proc = run_lint(str(tmp_path / "repro"), "--fail-on-findings")
        assert proc.returncode == 1
        assert "ARCH010" in proc.stdout

    def test_trace_entry_point_registered(self):
        """The ``repro-trace`` console script ships in pyproject.toml."""
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert 'repro-trace = "repro.telemetry.cli:main"' in pyproject

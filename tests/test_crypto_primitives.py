"""Hashes, HKDF, the deterministic RNG and the hash-CTR stream cipher."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    Rng,
    constant_time_eq,
    hash_ctr_crypt,
    hkdf,
    hmac_sha256,
    hmac_sha512,
    sha256,
    sha512,
)


class TestHashes:
    def test_sha256_known_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha512_length(self):
        assert len(sha512(b"abc")) == 64

    def test_hmac_sha256_rfc4231_case1(self):
        key = bytes([0x0B] * 20)
        assert hmac_sha256(key, b"Hi There").hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_hmac_sha512_rfc4231_case2(self):
        assert hmac_sha512(b"Jefe", b"what do ya want for nothing?").hex().startswith(
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
        )

    def test_constant_time_eq(self):
        assert constant_time_eq(b"same", b"same")
        assert not constant_time_eq(b"same", b"diff")


class TestHKDF:
    def test_deterministic(self):
        assert hkdf(b"key", b"info") == hkdf(b"key", b"info")

    def test_domain_separation(self):
        assert hkdf(b"key", b"a") != hkdf(b"key", b"b")

    def test_key_separation(self):
        assert hkdf(b"key1", b"x") != hkdf(b"key2", b"x")

    @pytest.mark.parametrize("length", [1, 16, 32, 33, 64, 100])
    def test_requested_length(self, length):
        assert len(hkdf(b"k", b"i", length)) == length

    def test_prefix_property(self):
        # HKDF output is a stream: shorter requests are prefixes.
        assert hkdf(b"k", b"i", 16) == hkdf(b"k", b"i", 64)[:16]


class TestRng:
    def test_deterministic_across_instances(self):
        assert Rng(42).bytes(100) == Rng(42).bytes(100)

    def test_different_seeds_differ(self):
        assert Rng(1).bytes(32) != Rng(2).bytes(32)

    def test_stream_advances(self):
        rng = Rng(7)
        assert rng.bytes(16) != rng.bytes(16)

    def test_fork_is_independent(self):
        rng = Rng(3)
        child_a = rng.fork("a")
        child_b = rng.fork("b")
        assert child_a.bytes(16) != child_b.bytes(16)
        # Forking does not perturb the parent stream.
        fresh = Rng(3)
        fresh.fork("a")
        assert fresh.bytes(8) == Rng(3).bytes(8)

    def test_seed_types(self):
        assert Rng(5).bytes(8) == Rng(5).bytes(8)
        assert Rng("label").bytes(8) == Rng("label").bytes(8)
        assert Rng(b"raw").bytes(8) == Rng(b"raw").bytes(8)

    @given(lo=st.integers(-100, 100), span=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_randint_bounds(self, lo, span):
        rng = Rng(lo * 1000 + span)
        value = rng.randint(lo, lo + span)
        assert lo <= value <= lo + span

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Rng(0).randint(5, 4)

    def test_random_in_unit_interval(self):
        rng = Rng(9)
        for _ in range(100):
            assert 0.0 <= rng.random() < 1.0

    def test_shuffle_is_permutation(self):
        rng = Rng(11)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_choice(self):
        rng = Rng(13)
        seq = ["a", "b", "c"]
        assert all(rng.choice(seq) in seq for _ in range(20))

    def test_uniformity_rough(self):
        rng = Rng(17)
        counts = [0] * 10
        for _ in range(5000):
            counts[rng.randint(0, 9)] += 1
        assert min(counts) > 350  # ~500 expected per bucket


class TestHashCtr:
    def test_symmetric(self):
        key, nonce = bytes(32), bytes(16)
        data = b"stream me" * 50
        assert hash_ctr_crypt(key, nonce, hash_ctr_crypt(key, nonce, data)) == data

    def test_empty(self):
        assert hash_ctr_crypt(bytes(32), bytes(16), b"") == b""

    def test_nonce_matters(self):
        key = bytes(32)
        data = bytes(100)
        a = hash_ctr_crypt(key, b"n" * 16, data)
        b = hash_ctr_crypt(key, b"m" * 16, data)
        assert a != b

    def test_keystream_looks_random(self):
        # Encrypting zeros exposes the keystream; it should not repeat in
        # 32-byte blocks.
        ks = hash_ctr_crypt(bytes(32), bytes(16), bytes(128))
        blocks = [ks[i : i + 32] for i in range(0, 128, 32)]
        assert len(set(blocks)) == 4

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(max_size=500), key=st.binary(min_size=16, max_size=32))
    def test_roundtrip_property(self, data, key):
        nonce = bytes(16)
        assert hash_ctr_crypt(key, nonce, hash_ctr_crypt(key, nonce, data)) == data

"""End-to-end security: the paper's §3.3 threat model, attack by attack.

Each test plays the adversary against a full deployment: tampering with
the untrusted medium mid-query, rolling the storage back, forking it,
impersonating nodes, and reading secrets out of enclaves or off the wire.
"""

from __future__ import annotations

import pytest

from repro.core import Deployment
from repro.errors import (
    AttestationError,
    EnclaveError,
    FreshnessError,
    IntegrityError,
)
from repro.tpch import ALL_QUERIES


@pytest.fixture()
def deployment():
    dep = Deployment(scale_factor=0.0005, seed=99)
    dep.attest_all()
    return dep


class TestVolatileStateAttacks:
    def test_host_enclave_memory_unreadable(self, deployment):
        """§3.3: the OS-level attacker cannot read the host engine's state."""
        deployment.host_engine.begin_session()
        deployment.host_engine.receive_table(
            "secrets", [("v", "TEXT")], [("customer-record",)]
        )
        with pytest.raises(EnclaveError):
            deployment.host_enclave.get("session_db")
        deployment.host_engine.end_session()

    def test_session_cleanup_erases_temp_tables(self, deployment):
        deployment.run_query(ALL_QUERIES[6].sql, "scs")
        # After the run the enclave holds no residual session state.
        assert deployment.host_enclave.memory_in_use == 0


class TestPersistentStateAttacks:
    def test_tamper_during_query_detected(self, deployment):
        """Bit-flip a data page between queries: the next scs run fails."""
        victim_page = deployment.storage_engine.db.store.pages_of("lineitem")[0]
        deployment.secure_device.corrupt(victim_page, offset=100)
        with pytest.raises(IntegrityError):
            deployment.run_query(ALL_QUERIES[6].sql, "scs")

    def test_plaintext_never_on_secure_medium(self, deployment):
        """Confidentiality at rest: no TPC-H string is stored in clear."""
        markers = [b"Supplier#", b"Customer#", b"Brand#", b"AFRICA", b"EUROPE"]
        device = deployment.secure_device
        for pgno in range(device.num_pages):
            raw = device.raw_page(pgno)
            for marker in markers:
                assert marker not in raw, f"page {pgno} leaks {marker!r}"

    def test_rollback_across_restart_detected(self, deployment):
        """Snapshot, mutate, restore: the reopened store detects staleness."""
        from repro.sql import Database, PagedStore
        from repro.storage import SecurePager, TAAnchor

        engine = deployment.storage_engine
        snapshot = deployment.secure_device.snapshot()
        engine.db.execute("DELETE FROM region WHERE r_regionkey = 0")
        engine.commit()
        deployment.secure_device.restore(snapshot)

        master_key = engine.trusted_os.invoke("secure-storage", "get_master_key")
        with pytest.raises(FreshnessError):
            SecurePager(
                deployment.secure_device,
                master_key,
                TAAnchor(engine.trusted_os),
                deployment.rng.fork("attacker-reopen"),
            )

    def test_fork_detection_via_epoch(self, deployment):
        """Two replicas cannot both stay consistent with one RPMB."""
        engine = deployment.storage_engine
        fork = deployment.secure_device.fork("forked-replica")

        # The original keeps committing; the fork's tree is now stale
        # relative to the RPMB anchor.
        engine.db.execute("DELETE FROM region WHERE r_regionkey = 4")
        engine.commit()

        from repro.storage import SecurePager, TAAnchor

        master_key = engine.trusted_os.invoke("secure-storage", "get_master_key")
        with pytest.raises(FreshnessError):
            SecurePager(
                fork,
                master_key,
                TAAnchor(engine.trusted_os),
                deployment.rng.fork("fork-open"),
            )

    def test_epoch_advances_on_anchor(self, deployment):
        engine = deployment.storage_engine
        epoch0 = engine.trusted_os.invoke("secure-storage", "current_epoch")
        engine.db.execute("DELETE FROM region WHERE r_regionkey = 1")
        engine.commit()
        epoch1 = engine.trusted_os.invoke("secure-storage", "current_epoch")
        assert epoch1 > epoch0


class TestImpersonationAttacks:
    def test_rogue_storage_node_rejected(self, deployment):
        """§3.3: 'the attacker may attempt to impersonate a trusted device
        so as to convince the host engine to offload to an alternative
        storage system controlled by the adversary'."""
        from repro.crypto import Rng
        from repro.tee.trustzone import DeviceVendor

        mallory_vendor = DeviceVendor("mallory-devices", Rng("mal"))
        rogue = mallory_vendor.provision_device("storage-1", location="eu-west")
        rogue.secure_boot(
            mallory_vendor.sign_firmware("optee", b"sw", "3.4"),
            mallory_vendor.sign_firmware("linux", b"nw", "5.4.3"),
        )
        challenge = deployment.rng.bytes(16)
        quote = rogue.sign_attestation(challenge)
        with pytest.raises(AttestationError):
            deployment.attestation.attest_storage(
                quote, rogue.boot_state.certificate_chain, challenge
            )

    def test_modified_host_engine_rejected(self, deployment):
        backdoored = deployment.host_platform.create_enclave(
            "backdoored-engine", b"host engine code + backdoor"
        )
        with pytest.raises(AttestationError):
            deployment.attestation.attest_host(
                backdoored.generate_quote(deployment.rng.bytes(16)),
                location="eu-central",
                fw_version="1.0",
            )

    def test_unregistered_sgx_platform_rejected(self, deployment):
        from repro.crypto import Rng
        from repro.sim import CostModel, SimClock
        from repro.tee.sgx import SgxPlatform

        ghost = SgxPlatform("ghost-host", SimClock(), CostModel(), Rng("g"))
        enclave = ghost.create_enclave("host-engine", b"host engine code v1")
        with pytest.raises(AttestationError):
            deployment.attestation.attest_host(
                enclave.generate_quote(deployment.rng.bytes(16)),
                location="eu-central",
                fw_version="1.0",
            )


class TestNetworkAttacks:
    def test_wire_traffic_is_ciphertext(self, deployment):
        """Run a real scs query and inspect every frame that crossed the
        link: shipped tuples must never be readable."""
        recorded = []
        original_send = deployment.link.send

        def spying_send(sender, recipient, payload, meter=None, charge_time=True):
            recorded.append(bytes(payload))
            return original_send(sender, recipient, payload, meter, charge_time)

        deployment.link.send = spying_send
        try:
            result = deployment.run_query(
                "SELECT n_name FROM nation WHERE n_regionkey = 0", "scs"
            )
        finally:
            deployment.link.send = original_send
        assert result.rows  # something was actually shipped
        leaked = [f for f in recorded if b"ALGERIA" in f or b"ETHIOPIA" in f]
        assert not leaked, "shipped records visible on the wire"

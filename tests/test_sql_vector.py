"""Unit tests for the vectorized data plane and operators (ISSUE 9).

Covers the ``repro.sql.vector`` containers (morsels, validity bitmaps,
selection vectors, RecordBatch round trips), the lazy batch expression
semantics of ``repro.sql.vexec`` (AND/OR/CASE over sub-selections), the
engine-level row/vector parity and metering split, the host store's
shipped-batch stash (``batches_reused``), and the per-batch
``vector_eval`` telemetry markers.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.sql import ast_nodes as A
from repro.sql import memory_database
from repro.sql.expressions import Scope
from repro.sql.operators import ExecContext, RowsSource
from repro.sql.records import decode_batch
from repro.sql.values import sql_gt
from repro.sql.vector import (
    DEFAULT_MORSEL_ROWS,
    ColumnVector,
    Morsel,
    density_pct,
    morsels_from_rows,
    select_true,
)
from repro.sql.vexec import RowsToMorsels, VecExprCompiler
from repro.telemetry import SPAN_VECTOR_EVAL, RecordingTracer

ROWS = [
    (1, 0, None, "alpha"),
    (2, 1, 2.5, "beta"),
    (3, 1, -4.0, None),
    (4, 2, 0.5, "gamma"),
]


def _database():
    db = memory_database()
    db.execute("CREATE TABLE t (id INTEGER, grp INTEGER, val REAL, tag TEXT)")
    for row in ROWS:
        db.execute(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            row,
        )
    return db


# ---------------------------------------------------------------------------
# Containers
# ---------------------------------------------------------------------------


class TestColumnVector:
    def test_validity_bitmap_is_lsb_first(self):
        column = ColumnVector([1, None, 3, None, None, 6, 7, 8, 9])
        assert column.null_count() == 3
        # Bits 0,2,5,6,7 set in byte 0; bit 8 (value 9) in byte 1.
        assert column.validity() == bytes([0b11100101, 0b00000001])

    def test_gather(self):
        column = ColumnVector(["a", "b", "c", "d"])
        assert column.gather([3, 1]) == ["d", "b"]


class TestMorsel:
    def test_row_round_trip_preserves_nulls(self):
        morsel = Morsel.from_rows(ROWS)
        assert morsel.width == 4
        assert morsel.row_count == 4
        assert morsel.to_rows() == ROWS

    def test_payload_round_trip_is_lossless(self):
        morsel = Morsel.from_rows(ROWS)
        payload = morsel.to_payload()
        assert decode_batch(payload) == ROWS
        again = Morsel.from_payload(payload)
        assert again.to_rows() == ROWS

    def test_zero_rows_need_explicit_width(self):
        with pytest.raises(ExecutionError):
            Morsel.from_rows([])
        empty = Morsel.from_rows([], width=3)
        assert empty.width == 3 and empty.row_count == 0

    def test_selection_narrows_without_copying(self):
        morsel = Morsel.from_rows(ROWS)
        narrowed = morsel.with_selection([1, 3])
        assert narrowed.columns is morsel.columns  # shared buffers
        assert narrowed.active_count == 2
        assert narrowed.to_rows() == [ROWS[1], ROWS[3]]
        assert morsel.selection is None  # original untouched

    def test_chunking_respects_batch_rows(self):
        rows = [(i,) for i in range(10)]
        morsels = list(morsels_from_rows(iter(rows), width=1, batch_rows=4))
        assert [m.row_count for m in morsels] == [4, 4, 2]
        assert [r for m in morsels for r in m.to_rows()] == rows
        assert DEFAULT_MORSEL_ROWS >= 1


class TestKernels:
    def test_select_true_uses_where_semantics(self):
        # Truthy non-NULL values qualify; NULL and FALSE do not — same
        # rule as the row path's is_true.
        flags = [True, False, None, 1, 0, "x"]
        assert select_true(flags, list(range(6))) == [0, 3, 5]

    def test_density_pct(self):
        assert density_pct(25, 100) == 25.0
        assert density_pct(1, 3) == 33.33
        assert density_pct(0, 0) == 0.0


# ---------------------------------------------------------------------------
# Lazy batch expression semantics
# ---------------------------------------------------------------------------


def _compile(expr):
    scope = Scope([("t", "a"), ("t", "b")])
    return VecExprCompiler(scope).compile(expr)


def _col(name):
    return A.Column(name=name, table="t")


class TestLazyEvaluation:
    """The batch compiler must evaluate exactly the rows the row compiler
    would — a type error the row path short-circuits past cannot surface."""

    # Row 0 hides an incomparable TEXT value behind a guard; an eager
    # kernel would raise ExecutionError evaluating it.
    MORSEL = Morsel.from_rows([(0, "boom"), (1, 5)])

    def test_premise_eager_evaluation_would_raise(self):
        with pytest.raises(ExecutionError):
            sql_gt("boom", 1)

    def test_and_short_circuits_over_subselection(self):
        fn = _compile(
            A.Binary(
                "AND",
                A.Binary("<>", _col("a"), A.Literal(0)),
                A.Binary(">", _col("b"), A.Literal(1)),
            )
        )
        assert fn(self.MORSEL, [0, 1]) == [False, True]

    def test_or_short_circuits_over_subselection(self):
        fn = _compile(
            A.Binary(
                "OR",
                A.Binary("=", _col("a"), A.Literal(0)),
                A.Binary(">", _col("b"), A.Literal(1)),
            )
        )
        assert fn(self.MORSEL, [0, 1]) == [True, True]

    def test_case_branches_evaluate_only_undecided_rows(self):
        fn = _compile(
            A.Case(
                whens=(
                    (A.Binary("=", _col("a"), A.Literal(0)), A.Literal(0)),
                ),
                default=A.Binary("+", _col("b"), A.Literal(1)),
            )
        )
        assert fn(self.MORSEL, [0, 1]) == [0, 6]


# ---------------------------------------------------------------------------
# Engine parity and metering
# ---------------------------------------------------------------------------

PARITY_QUERIES = [
    "SELECT id, val FROM t WHERE grp = 1",
    "SELECT grp, count(*), sum(val) FROM t GROUP BY grp ORDER BY grp",
    "SELECT a.id, b.id FROM t a, t b WHERE a.grp = b.grp AND a.id < b.id",
    "SELECT id FROM t WHERE tag LIKE '%a' OR val IS NULL",
    "SELECT count(*) FROM t WHERE grp <> 0 AND 10 / grp > 4",
]


class TestEngineParity:
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_vectorized_matches_row_path(self, sql):
        row_db, vec_db = _database(), _database()
        vec_db.set_vectorized(True)
        assert sorted(vec_db.execute(sql).rows) == sorted(row_db.execute(sql).rows)

    def test_metering_is_split_by_execution_model(self):
        db = _database()
        db.set_vectorized(True)
        before_scanned = db.meter.rows_scanned
        before_batches = db.meter.get("vector_batches")
        db.execute("SELECT id FROM t WHERE grp = 1")
        # Vectorized operators meter batches/values, never the row-path
        # counters — that split is what the cost model prices.
        assert db.meter.rows_scanned == before_scanned
        assert db.meter.get("vector_batches") > before_batches
        assert db.meter.get("vector_values") > 0

    def test_escape_hatch_restores_row_metering(self):
        db = _database()
        db.set_vectorized(True)
        db.set_vectorized(False)
        db.execute("SELECT id FROM t WHERE grp = 1")
        assert db.meter.rows_scanned == len(ROWS)
        assert db.meter.get("vector_batches") == 0

    def test_selection_density_accrues_on_filters(self):
        db = _database()
        db.set_vectorized(True)
        db.execute("SELECT id FROM t WHERE grp = 1")  # 2 of 4 rows pass
        assert db.meter.get("selection_density_pct") == 50.0


# ---------------------------------------------------------------------------
# Shipped-batch stash (HostEngine.ingest_batch's fast path)
# ---------------------------------------------------------------------------


class TestBatchStash:
    def test_stash_is_served_at_original_boundaries(self):
        db = _database()
        store = db.store
        first = Morsel.from_rows(ROWS[:3])
        second = Morsel.from_rows(ROWS[3:])
        store.stash_morsel("t", first)
        store.stash_morsel("t", second)
        served = list(store.scan_morsels("t"))
        assert [m.row_count for m in served] == [3, 1]
        assert served[0] is first and served[1] is second
        assert db.meter.get("batches_reused") == 2

    def test_stale_stash_is_ignored(self):
        db = _database()
        store = db.store
        store.stash_morsel("t", Morsel.from_rows(ROWS[:2]))  # 2 != 4 rows
        served = list(store.scan_morsels("t"))
        assert [m.row_count for m in served] == [len(ROWS)]
        assert db.meter.get("batches_reused") == 0

    def test_replace_rows_invalidates_stash(self):
        db = _database()
        store = db.store
        store.stash_morsel("t", Morsel.from_rows(ROWS))
        db.execute("UPDATE t SET grp = 9 WHERE id = 1")
        served = list(store.scan_morsels("t"))
        assert db.meter.get("batches_reused") == 0
        assert sorted(r for m in served for r in m.to_rows())[0][1] == 9


# ---------------------------------------------------------------------------
# Telemetry markers and the row/morsel adapter
# ---------------------------------------------------------------------------


class TestVectorTelemetry:
    def test_vector_eval_events_per_operator_batch(self):
        db = _database()
        db.set_vectorized(True)
        tracer = RecordingTracer()
        db.tracer = tracer
        with tracer.span("query"):
            db.execute("SELECT id, val FROM t WHERE grp = 1")
        events = [
            span
            for trace in tracer.traces
            for span in trace.spans
            if span.name == SPAN_VECTOR_EVAL
        ]
        operators = {event.attributes["operator"] for event in events}
        assert {"seq_scan", "filter", "project"} <= operators
        fltr = next(e for e in events if e.attributes["operator"] == "filter")
        assert fltr.attributes["rows_in"] == 4
        assert fltr.attributes["rows_out"] == 2

    def test_row_path_emits_no_vector_events(self):
        db = _database()
        tracer = RecordingTracer()
        db.tracer = tracer
        with tracer.span("query"):
            db.execute("SELECT id FROM t WHERE grp = 1")
        assert not [
            span
            for trace in tracer.traces
            for span in trace.spans
            if span.name == SPAN_VECTOR_EVAL
        ]


class TestRowsToMorsels:
    def test_adapter_chunks_row_operators(self):
        ctx = ExecContext()
        scope = Scope([("t", "id")])
        rows = [(i,) for i in range(7)]
        adapter = RowsToMorsels(ctx, RowsSource(ctx, rows, scope), batch_rows=3)
        morsels = list(adapter.morsels())
        assert [m.row_count for m in morsels] == [3, 3, 1]
        assert list(adapter.rows()) == rows

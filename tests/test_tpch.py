"""TPC-H substrate: generator fidelity and query semantics."""

from __future__ import annotations

import datetime

import pytest

from repro.tpch import (
    ALL_QUERIES,
    EVALUATED_NUMBERS,
    Cardinalities,
    TPCHGenerator,
    q1_with_selectivity,
)
from repro.tpch.dbgen import (
    DATE_HI,
    DATE_LO,
    NATIONS,
    PRIORITIES,
    REGIONS,
    SEGMENTS,
    SHIP_MODES,
)


@pytest.fixture(scope="module")
def data():
    return TPCHGenerator(scale_factor=0.002, seed=7).generate_all()


class TestCardinalities:
    def test_scaling(self):
        card = Cardinalities.for_scale(1.0)
        assert card.supplier == 10_000
        assert card.part == 200_000
        assert card.customer == 150_000
        assert card.orders == 1_500_000

    def test_minimums_at_tiny_scale(self):
        card = Cardinalities.for_scale(1e-9)
        assert card.supplier >= 3
        assert card.orders >= 10

    def test_fixed_tables(self, data):
        assert len(data["region"]) == 5
        assert len(data["nation"]) == 25

    def test_partsupp_four_per_part(self, data):
        assert len(data["partsupp"]) == 4 * len(data["part"])

    def test_lineitems_per_order(self, data):
        per_order: dict[int, int] = {}
        for row in data["lineitem"]:
            per_order[row[0]] = per_order.get(row[0], 0) + 1
        assert set(per_order) == {o[0] for o in data["orders"]}
        assert all(1 <= n <= 7 for n in per_order.values())


class TestReferentialIntegrity:
    def test_nation_region_fk(self, data):
        regions = {r[0] for r in data["region"]}
        assert all(n[2] in regions for n in data["nation"])

    def test_supplier_nation_fk(self, data):
        nations = {n[0] for n in data["nation"]}
        assert all(s[3] in nations for s in data["supplier"])

    def test_orders_customer_fk(self, data):
        customers = {c[0] for c in data["customer"]}
        assert all(o[1] in customers for o in data["orders"])

    def test_lineitem_fks(self, data):
        parts = {p[0] for p in data["part"]}
        suppliers = {s[0] for s in data["supplier"]}
        orders = {o[0] for o in data["orders"]}
        partsupp = {(ps[0], ps[1]) for ps in data["partsupp"]}
        for li in data["lineitem"]:
            assert li[0] in orders
            assert li[1] in parts
            assert li[2] in suppliers
            # dbgen invariant: the lineitem's supplier stocks its part.
            assert (li[1], li[2]) in partsupp

    def test_primary_keys_unique(self, data):
        for table, key_width in [("supplier", 1), ("customer", 1), ("part", 1), ("orders", 1)]:
            keys = [row[:key_width] for row in data[table]]
            assert len(keys) == len(set(keys)), table
        li_keys = [(r[0], r[3]) for r in data["lineitem"]]
        assert len(li_keys) == len(set(li_keys))


class TestValueDomains:
    def test_categoricals(self, data):
        assert {r[1] for r in data["region"]} == set(REGIONS)
        assert {n[1] for n in data["nation"]} == {n for n, _ in NATIONS}
        assert {c[6] for c in data["customer"]} <= set(SEGMENTS)
        assert {o[5] for o in data["orders"]} <= set(PRIORITIES)
        assert {li[14] for li in data["lineitem"]} <= set(SHIP_MODES)

    def test_part_brand_format(self, data):
        for p in data["part"]:
            assert p[3].startswith("Brand#")
            brand_num = int(p[3].removeprefix("Brand#"))
            assert 11 <= brand_num <= 55

    def test_part_size_range(self, data):
        assert all(1 <= p[5] <= 50 for p in data["part"])

    def test_lineitem_numeric_domains(self, data):
        for li in data["lineitem"]:
            assert 1 <= li[4] <= 50  # quantity
            assert 0 <= li[6] <= 0.10  # discount
            assert 0 <= li[7] <= 0.08  # tax
            assert li[8] in ("R", "A", "N")
            assert li[9] in ("F", "O")

    def test_date_relationships(self, data):
        orders_by_key = {o[0]: o for o in data["orders"]}
        for li in data["lineitem"]:
            order_date = orders_by_key[li[0]][4]
            ship, commit, receipt = li[10], li[11], li[12]
            assert order_date < ship
            assert ship < receipt
            assert DATE_LO <= order_date <= DATE_HI

    def test_order_status_consistent_with_lines(self, data):
        lines_by_order: dict[int, list] = {}
        for li in data["lineitem"]:
            lines_by_order.setdefault(li[0], []).append(li[9])
        for o in data["orders"]:
            statuses = set(lines_by_order[o[0]])
            if statuses == {"F"}:
                assert o[2] == "F"
            elif statuses == {"O"}:
                assert o[2] == "O"
            else:
                assert o[2] == "P"

    def test_q16_complaint_suppliers_exist_at_scale(self):
        rows = TPCHGenerator(scale_factor=0.05, seed=1).supplier()
        assert any("Complaints" in r[6] for r in rows)

    def test_q13_special_requests_exist_at_scale(self):
        orders, _ = TPCHGenerator(scale_factor=0.005, seed=1).orders_and_lineitems()
        assert any("special" in o[8] and "requests" in o[8] for o in orders)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = TPCHGenerator(0.001, seed=5).generate_all()
        b = TPCHGenerator(0.001, seed=5).generate_all()
        assert a == b

    def test_different_seed_differs(self):
        a = TPCHGenerator(0.001, seed=5).orders_and_lineitems()
        b = TPCHGenerator(0.001, seed=6).orders_and_lineitems()
        assert a != b


class TestQueries:
    def test_sixteen_evaluated(self):
        assert EVALUATED_NUMBERS == [2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 16, 18, 19, 21]
        assert 1 in ALL_QUERIES and len(ALL_QUERIES) == 17

    def test_q1_selectivity_variant(self):
        q = q1_with_selectivity(0.15)
        assert "l_shipdate <= DATE '" in q.sql
        with pytest.raises(ValueError):
            q1_with_selectivity(0.0)
        with pytest.raises(ValueError):
            q1_with_selectivity(1.5)

    def test_selectivity_monotone(self, tpch_memory_db):
        counts = []
        for s in (0.1, 0.3, 0.6):
            q = q1_with_selectivity(s)
            rows = tpch_memory_db.execute(
                q.sql.split("GROUP BY")[0].replace(
                    q.sql.split("FROM")[0], "SELECT count(*) "
                )
            )
            counts.append(rows.scalar())
        assert counts == sorted(counts)

    @pytest.mark.parametrize("number", sorted(ALL_QUERIES))
    def test_queries_run(self, tpch_memory_db, number):
        result = tpch_memory_db.execute(ALL_QUERIES[number].sql)
        assert result.columns  # executed and produced a shape

    def test_q1_semantics(self, tpch_memory_db):
        result = tpch_memory_db.execute(ALL_QUERIES[1].sql)
        assert 1 <= len(result.rows) <= 6  # at most |returnflag| x |linestatus|
        for row in result.rows:
            assert row[0] in ("R", "A", "N")
            assert row[1] in ("F", "O")
            sum_qty, avg_qty, count = row[2], row[6], row[9]
            assert avg_qty == pytest.approx(sum_qty / count)

    def test_q6_equals_manual_computation(self, tpch_memory_db):
        result = tpch_memory_db.execute(ALL_QUERIES[6].sql).scalar()
        manual = 0.0
        d0 = datetime.date(1994, 1, 1)
        d1 = datetime.date(1995, 1, 1)
        for li in tpch_memory_db.store.scan("lineitem"):
            if d0 <= li[10] < d1 and 0.05 <= li[6] <= 0.07 and li[4] < 24:
                manual += li[5] * li[6]
        if manual == 0.0:
            assert result is None or result == pytest.approx(0.0)
        else:
            assert result == pytest.approx(manual)

    def test_q4_counts_match_exists_semantics(self, tpch_memory_db):
        result = tpch_memory_db.execute(ALL_QUERIES[4].sql)
        total = sum(row[1] for row in result.rows)
        check = tpch_memory_db.execute(
            "SELECT count(*) FROM orders WHERE o_orderdate >= DATE '1993-07-01' "
            "AND o_orderdate < DATE '1993-10-01' AND EXISTS ("
            "SELECT * FROM lineitem WHERE l_orderkey = o_orderkey "
            "AND l_commitdate < l_receiptdate)"
        ).scalar()
        assert total == check

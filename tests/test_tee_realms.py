"""ARM v9 Realms: isolation, attestation, and the smaller TCB."""

from __future__ import annotations

import pytest

from repro.crypto import Rng, verify_chain
from repro.errors import AttestationError, EnclaveError, SecureBootError
from repro.tee.trustzone import DeviceVendor, RealmManager


@pytest.fixture()
def booted():
    vendor = DeviceVendor("v9-vendor", Rng(55))
    device = vendor.provision_device("ccadev", location="eu-west")
    device.secure_boot(
        vendor.sign_firmware("rmm+optee", b"secure world with RMM", "9.0"),
        vendor.sign_firmware("linux", b"untrusted normal world", "6.1"),
    )
    return vendor, device


class TestRealmLifecycle:
    def test_requires_boot(self):
        vendor = DeviceVendor("cold-vendor", Rng(56))
        cold = vendor.provision_device("cold", location="eu")
        with pytest.raises(SecureBootError):
            RealmManager(cold)

    def test_create_and_lookup(self, booted):
        _, device = booted
        rmm = RealmManager(device)
        realm = rmm.create_realm("engine", b"engine image")
        assert rmm.realm("engine") is realm

    def test_duplicate_rejected(self, booted):
        _, device = booted
        rmm = RealmManager(device)
        rmm.create_realm("engine", b"x")
        with pytest.raises(EnclaveError):
            rmm.create_realm("engine", b"y")

    def test_unknown_realm_rejected(self, booted):
        _, device = booted
        with pytest.raises(EnclaveError):
            RealmManager(device).realm("ghost")

    def test_measurement_tracks_image(self, booted):
        _, device = booted
        rmm = RealmManager(device)
        a = rmm.create_realm("a", b"image v1")
        b = rmm.create_realm("b", b"image v2")
        assert a.measurement.digest != b.measurement.digest


class TestRealmIsolation:
    def test_normal_world_cannot_read(self, booted):
        _, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")
        realm.register_entry("store", lambda: realm.put("k", "secret"))
        realm.enter("store")
        with pytest.raises(EnclaveError):
            realm.get("k")

    def test_inside_access_works(self, booted):
        _, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")

        def roundtrip():
            realm.put("k", 42)
            return realm.get("k")

        realm.register_entry("rt", roundtrip)
        assert realm.enter("rt") == 42

    def test_entries_count_transitions(self, booted):
        _, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")
        realm.register_entry("noop", lambda: None)
        realm.enter("noop")
        assert realm.meter.enclave_transitions == 2

    def test_unknown_entry_rejected(self, booted):
        _, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")
        with pytest.raises(EnclaveError):
            realm.enter("missing")


class TestRealmAttestation:
    def test_token_verifies_against_chain(self, booted):
        vendor, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")
        token = realm.attestation_token(b"challenge")
        leaf = verify_chain(device.boot_state.certificate_chain, vendor.root_public_key)
        assert leaf.public_key.verify(token.signed_payload(), token.signature)
        assert token.report_data == b"cca-realm-token"

    def test_token_quotes_realm_not_os(self, booted):
        _, device = booted
        realm = RealmManager(device).create_realm("engine", b"img")
        token = realm.attestation_token(b"c")
        assert token.measurement.digest != device.boot_state.normal_world_measurement.digest


class TestRealmDeployment:
    def test_modified_os_still_attests_in_realm_mode(self):
        """The whole point: a patched normal-world OS no longer breaks
        attestation, because only the realm image is quoted."""
        from repro.core import Deployment
        from repro.tpch import ALL_QUERIES

        dep = Deployment(scale_factor=0.0005, seed=12, armv9_realms=True,
                         storage_fw_version="6.1")
        dep.attest_all()
        result = dep.run_query(ALL_QUERIES[6].sql, "scs")
        assert result.rows is not None

    def test_modified_realm_image_rejected(self):
        from repro.core import Deployment

        dep = Deployment(scale_factor=0.0005, seed=13, armv9_realms=True)
        backdoored = dep.storage_engine._rmm.create_realm(
            "evil-engine", b"engine + backdoor"
        )
        challenge = dep.rng.bytes(16)
        token = backdoored.attestation_token(challenge)
        with pytest.raises(AttestationError):
            dep.attestation.attest_storage(
                token, dep.tz_device.boot_state.certificate_chain, challenge
            )

    def test_tcb_shrinks(self):
        from repro.core import Deployment

        classic = Deployment(scale_factor=0.0005, seed=14)
        realms = Deployment(scale_factor=0.0005, seed=14, armv9_realms=True)
        assert realms.tcb_bytes() < classic.tcb_bytes()
        classic_components = {c["component"] for c in classic.tcb_report() if c["trusted"]}
        realm_components = {c["component"] for c in realms.tcb_report() if c["trusted"]}
        assert any("OS" in c or "normal world" in c for c in classic_components)
        assert not any("OS" in c for c in realm_components)

    def test_realm_mode_slightly_slower(self):
        from repro.core import Deployment
        from repro.tpch import ALL_QUERIES

        classic = Deployment(scale_factor=0.0005, seed=15)
        classic.attest_all()
        realms = Deployment(scale_factor=0.0005, seed=15, armv9_realms=True)
        realms.attest_all()
        a = classic.run_query(ALL_QUERIES[6].sql, "sos")
        b = realms.run_query(ALL_QUERIES[6].sql, "sos")
        assert sorted(a.rows) == sorted(b.rows)
        assert a.total_ms < b.total_ms <= a.total_ms * 1.15

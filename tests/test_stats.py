"""Zone-map skip-scans: synopses, pruning, authenticated persistence."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.core import Deployment, RunConfig, register_client
from repro.crypto import Rng
from repro.errors import ExecutionError, FreshnessError, IntegrityError
from repro.sql.catalog import TableSchema
from repro.sql.engine import Database
from repro.sql.stores import ZONEMAP_META_KEY, PagedStore
from repro.stats import (
    STATS_COUNTERS,
    PageSynopsis,
    PruningPredicate,
    TableZoneMaps,
    deserialize_zone_maps,
    serialize_zone_maps,
)
from repro.storage import BlockDevice, InMemoryAnchor, Pager, SecurePager


class TestPageSynopsis:
    def test_from_rows_bounds_and_nulls(self):
        rows = [(3, "b"), (None, "a"), (7, None), (5, "c")]
        syn = PageSynopsis.from_rows(rows, ["INTEGER", "TEXT"])
        assert syn.row_count == 4
        assert syn.entries[0] == (3, 7, 1)
        assert syn.entries[1] == ("a", "c", 1)

    def test_all_null_column(self):
        syn = PageSynopsis.from_rows([(None,), (None,)], ["INTEGER"])
        assert syn.entries[0] == (None, None, 2)

    def test_unorderable_mix_is_unprunable(self):
        # Decoded pages can hold a type mix the planner never promised
        # anything about — the synopsis must refuse, not guess.
        syn = PageSynopsis.from_rows([(1,), ("text",)], ["INTEGER"])
        assert syn.entries[0] is None

    def test_jsonable_roundtrip_with_dates(self):
        rows = [
            (1, datetime.date(1995, 6, 17)),
            (None, datetime.date(1992, 1, 2)),
        ]
        syn = PageSynopsis.from_rows(rows, ["INTEGER", "DATE"])
        back = PageSynopsis.from_jsonable(syn.to_jsonable(), ["INTEGER", "DATE"])
        assert back.row_count == syn.row_count
        assert back.entries == syn.entries
        assert isinstance(back.entries[1][0], datetime.date)

    def test_size_bytes_is_positive_and_stable(self):
        syn = PageSynopsis.from_rows([(1, "x")], ["INTEGER", "TEXT"])
        assert syn.size_bytes() > 0
        assert syn.size_bytes() == syn.size_bytes()


class TestTableZoneMaps:
    def test_rejects_unknown_types(self):
        with pytest.raises(ValueError):
            TableZoneMaps(["BLOB"])

    def test_covers_requires_exact_page_set(self):
        maps = TableZoneMaps(["INTEGER"])
        maps.set_page(1, PageSynopsis.from_rows([(1,)], ["INTEGER"]))
        maps.set_page(2, PageSynopsis.from_rows([(2,)], ["INTEGER"]))
        assert maps.covers([1, 2])
        assert not maps.covers([1])  # extra synopsis: stale
        assert not maps.covers([1, 2, 3])  # missing synopsis: stale
        maps.drop_page(2)
        assert maps.covers([1])

    def test_serialize_roundtrip(self):
        maps = TableZoneMaps(["INTEGER", "DATE"])
        maps.set_page(
            4,
            PageSynopsis.from_rows(
                [(1, datetime.date(2000, 1, 1)), (None, None)], ["INTEGER", "DATE"]
            ),
        )
        blob = serialize_zone_maps({"t": maps})
        back = deserialize_zone_maps(blob)
        assert back["t"].column_types == ["INTEGER", "DATE"]
        assert back["t"].pages[4].entries == maps.pages[4].entries
        # Canonical encoding: serializing the round-trip is a fixed point.
        assert serialize_zone_maps(back) == blob


def _syn(values, nulls=0, types=("INTEGER",)):
    rows = [(v,) for v in values] + [(None,)] * nulls
    return PageSynopsis.from_rows(rows, list(types))


class TestPruningPredicate:
    def test_cmp_lt(self):
        syn = _syn([10, 20, 30])
        assert not PruningPredicate([("cmp", 0, ("<", 10))]).page_may_match(syn)
        assert PruningPredicate([("cmp", 0, ("<", 11))]).page_may_match(syn)

    def test_cmp_le_gt_ge(self):
        syn = _syn([10, 20, 30])
        assert not PruningPredicate([("cmp", 0, ("<=", 9))]).page_may_match(syn)
        assert PruningPredicate([("cmp", 0, ("<=", 10))]).page_may_match(syn)
        assert not PruningPredicate([("cmp", 0, (">", 30))]).page_may_match(syn)
        assert PruningPredicate([("cmp", 0, (">", 29))]).page_may_match(syn)
        assert not PruningPredicate([("cmp", 0, (">=", 31))]).page_may_match(syn)
        assert PruningPredicate([("cmp", 0, (">=", 30))]).page_may_match(syn)

    def test_cmp_eq_uses_both_bounds(self):
        syn = _syn([10, 20, 30])
        assert not PruningPredicate([("cmp", 0, ("=", 9))]).page_may_match(syn)
        assert not PruningPredicate([("cmp", 0, ("=", 31))]).page_may_match(syn)
        assert PruningPredicate([("cmp", 0, ("=", 20))]).page_may_match(syn)

    def test_cmp_ne_skips_only_constant_pages(self):
        constant = _syn([7, 7, 7])
        varied = _syn([7, 8])
        assert not PruningPredicate([("cmp", 0, ("<>", 7))]).page_may_match(constant)
        assert PruningPredicate([("cmp", 0, ("<>", 7))]).page_may_match(varied)
        assert PruningPredicate([("cmp", 0, ("<>", 9))]).page_may_match(constant)

    def test_comparisons_skip_all_null_pages(self):
        all_null = _syn([], nulls=3)
        assert not PruningPredicate([("cmp", 0, ("<", 10**9))]).page_may_match(
            all_null
        )
        assert not PruningPredicate([("between", 0, (0, 10**9))]).page_may_match(
            all_null
        )
        assert not PruningPredicate([("in", 0, (1, 2, 3))]).page_may_match(all_null)

    def test_isnull_polarities(self):
        mixed = _syn([1], nulls=1)
        no_nulls = _syn([1, 2])
        all_null = _syn([], nulls=2)
        is_null = PruningPredicate([("isnull", 0, (False,))])
        not_null = PruningPredicate([("isnull", 0, (True,))])
        assert is_null.page_may_match(mixed) and not_null.page_may_match(mixed)
        assert not is_null.page_may_match(no_nulls)
        assert not not_null.page_may_match(all_null)

    def test_between_and_in(self):
        syn = _syn([10, 20, 30])
        assert not PruningPredicate([("between", 0, (31, 40))]).page_may_match(syn)
        assert not PruningPredicate([("between", 0, (1, 9))]).page_may_match(syn)
        assert PruningPredicate([("between", 0, (25, 40))]).page_may_match(syn)
        assert not PruningPredicate([("in", 0, (1, 2, 31))]).page_may_match(syn)
        assert PruningPredicate([("in", 0, (1, 25))]).page_may_match(syn)

    def test_unprunable_entry_keeps_page(self):
        unprunable = PageSynopsis(2, [None])
        assert PruningPredicate([("cmp", 0, ("<", -1))]).page_may_match(unprunable)

    def test_out_of_range_column_keeps_page(self):
        syn = _syn([1])
        assert PruningPredicate([("cmp", 5, ("<", -1))]).page_may_match(syn)

    def test_incomparable_literal_keeps_page(self):
        # sql_lt(int, str) raises — the conjunct must go inconclusive.
        syn = _syn([1, 2])
        assert PruningPredicate([("cmp", 0, ("<", "text"))]).page_may_match(syn)

    def test_conjunction_skips_when_any_conjunct_proves_empty(self):
        syn = _syn([10, 20])
        pred = PruningPredicate(
            [("cmp", 0, (">", 0)), ("cmp", 0, ("<", 5))]
        )
        assert not pred.page_may_match(syn)


def _paged_store(secure: bool = True):
    device = BlockDevice()
    if secure:
        rng = Rng("stats-store")
        pager = SecurePager(device, rng.bytes(32), InMemoryAnchor(), rng.fork("iv"))
    else:
        pager = Pager(device)
    return device, pager, PagedStore(pager)


def _fill(store, rows_per_page_hint: int = 300, pages: int = 4):
    schema = TableSchema(name="t", columns=[("a", "INTEGER"), ("b", "TEXT")])
    store.create_table(schema)
    n = rows_per_page_hint * pages
    store.insert_rows("t", [(i, f"r{i:06d}") for i in range(n)])
    return n


class TestPagedStoreZoneMaps:
    def test_insert_builds_full_coverage(self):
        _, _, store = _paged_store()
        _fill(store)
        schema = store.catalog.table("t")
        assert len(schema.pages) > 1
        assert store.zone_maps["t"].covers(schema.pages)

    def test_pruned_scan_matches_full_scan_and_bumps_counters(self):
        _, _, store = _paged_store()
        n = _fill(store)
        pred = PruningPredicate([("cmp", 0, ("<", 10))])
        full = [r for r in store.scan("t") if r[0] < 10]
        pruned = [r for r in store.scan("t", pruning=pred) if r[0] < 10]
        assert pruned == full
        total = len(store.catalog.table("t").pages)
        assert store.meter.extra["pages_skipped"] > 0
        assert (
            store.meter.extra["pages_scanned"] + store.meter.extra["pages_skipped"]
            == total
        )
        assert store.meter.extra["zone_map_bytes"] > 0
        assert n == sum(1 for _ in store.scan("t"))

    def test_unpruned_scan_leaves_counters_untouched(self):
        _, _, store = _paged_store()
        _fill(store)
        list(store.scan("t"))
        for name in STATS_COUNTERS:
            assert store.meter.extra.get(name, 0) == 0

    def test_stale_map_fails_closed_to_full_scan(self):
        _, _, store = _paged_store()
        _fill(store)
        schema = store.catalog.table("t")
        # Forget one page's synopsis: covers() must reject the whole map.
        store.zone_maps["t"].drop_page(schema.pages[0])
        pred = PruningPredicate([("cmp", 0, ("<", -1))])
        assert list(store.scan("t", pruning=pred)) == list(store.scan("t"))
        for name in STATS_COUNTERS:
            assert store.meter.extra.get(name, 0) == 0

    def test_replace_rows_rebuilds_synopses(self):
        _, _, store = _paged_store()
        _fill(store)
        store.replace_rows("t", [(10_000 + i, "new") for i in range(10)])
        schema = store.catalog.table("t")
        maps = store.zone_maps["t"]
        assert maps.covers(schema.pages)
        # Pre-rewrite bounds are gone: a filter on the old range prunes all.
        pred = PruningPredicate([("cmp", 0, ("<", 10_000))])
        assert list(store.scan("t", pruning=pred)) == []

    def test_drop_table_discards_synopses(self):
        _, _, store = _paged_store()
        _fill(store)
        store.drop_table("t")
        assert "t" not in store.zone_maps

    def test_synopses_persist_across_reopen(self):
        device, pager, store = _paged_store(secure=False)
        _fill(store)
        store.commit()
        reopened = PagedStore(Pager(device))
        schema = reopened.catalog.table("t")
        assert reopened.zone_maps["t"].covers(schema.pages)
        pred = PruningPredicate([("cmp", 0, ("<", 10))])
        assert len(list(reopened.scan("t", pruning=pred))) >= 10

    def test_undecodable_blob_fails_closed(self):
        device, pager, store = _paged_store(secure=False)
        _fill(store)
        pager.write_meta(ZONEMAP_META_KEY, b"not json")
        reopened = PagedStore(Pager(device))
        assert reopened.zone_maps == {}
        pred = PruningPredicate([("cmp", 0, ("<", -1))])
        assert list(reopened.scan("t", pruning=pred)) == list(reopened.scan("t"))


class TestPlannerPruning:
    def _db(self):
        _, pager, store = _paged_store()
        db = Database(store)
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        db.execute(
            "INSERT INTO t VALUES "
            + ", ".join(f"({i}, 'r{i:06d}')" for i in range(1200))
        )
        db.set_zone_maps(True)
        return db, store

    def test_selective_filter_skips_pages(self):
        db, store = self._db()
        rows = db.execute("SELECT count(*) FROM t WHERE a < 10").rows
        assert rows == [(10,)]
        assert store.meter.extra["pages_skipped"] > 0

    def test_rows_identical_with_and_without_pruning(self):
        db, store = self._db()
        sql = "SELECT a, b FROM t WHERE a BETWEEN 100 AND 140 ORDER BY a"
        pruned = db.execute(sql).rows
        db.set_zone_maps(False)
        assert db.execute(sql).rows == pruned

    def test_non_sargable_filter_scans_everything(self):
        db, store = self._db()
        db.execute("SELECT count(*) FROM t WHERE a + 0 < 10")
        assert store.meter.extra.get("pages_skipped", 0) == 0

    def test_in_and_isnull_prune(self):
        db, store = self._db()
        assert db.execute("SELECT count(*) FROM t WHERE a IN (3, 5)").rows == [(2,)]
        assert store.meter.extra["pages_skipped"] > 0
        skipped = store.meter.extra["pages_skipped"]
        assert db.execute("SELECT count(*) FROM t WHERE a IS NULL").rows == [(0,)]
        assert store.meter.extra["pages_skipped"] > skipped  # no NULLs anywhere

    def test_type_mismatch_still_raises_row_level_error(self):
        # A mis-typed literal is not sargable: extraction leaves it to the
        # row filter, which must raise exactly as it does unpruned.
        db, store = self._db()
        with pytest.raises(ExecutionError):
            db.execute("SELECT count(*) FROM t WHERE a < 'text'")
        db.set_zone_maps(False)
        with pytest.raises(ExecutionError):
            db.execute("SELECT count(*) FROM t WHERE a < 'text'")

    def test_memory_store_ignores_the_knob(self):
        db = Database()
        db.execute("CREATE TABLE m (x INTEGER)")
        db.set_zone_maps(True)  # must be a harmless no-op
        db.execute("INSERT INTO m VALUES (1), (2)")
        assert db.execute("SELECT count(*) FROM m WHERE x < 2").rows == [(1,)]


class TestPruningProperty:
    """Pruned and unpruned scans agree on random data + predicates."""

    def test_random_predicates_agree(self):
        rnd = random.Random(0xC0FFEE)
        _, pager, store = _paged_store()
        db = Database(store)
        db.execute(
            "CREATE TABLE p (i INTEGER, r REAL, s TEXT, d DATE)"
        )
        base = datetime.date(2020, 1, 1)

        def cell(kind):
            if rnd.random() < 0.15:
                return "NULL"
            if kind == "i":
                return str(rnd.randint(-50, 50))
            if kind == "r":
                return f"{rnd.uniform(-5, 5):.3f}"
            if kind == "s":
                return "'" + rnd.choice("abcdef") * rnd.randint(1, 30) + "'"
            day = base + datetime.timedelta(days=rnd.randint(0, 365))
            return f"DATE '{day.isoformat()}'"

        values = ", ".join(
            f"({cell('i')}, {cell('r')}, {cell('s')}, {cell('d')})"
            for _ in range(900)
        )
        db.execute("INSERT INTO p VALUES " + values)
        assert len(store.catalog.table("p").pages) > 1

        def predicate():
            col, kind = rnd.choice(
                [("i", "i"), ("r", "r"), ("s", "s"), ("d", "d")]
            )
            shape = rnd.choice(["cmp", "between", "in", "isnull"])
            if shape == "cmp":
                op = rnd.choice(["<", "<=", ">", ">=", "=", "<>"])
                return f"{col} {op} {cell(kind).replace('NULL', '0')}"
            if shape == "between":
                lo, hi = sorted(
                    [cell(kind).replace("NULL", "0") for _ in range(2)]
                )
                return f"{col} BETWEEN {lo} AND {hi}"
            if shape == "in":
                items = ", ".join(
                    cell(kind).replace("NULL", "0") for _ in range(3)
                )
                return f"{col} IN ({items})"
            return f"{col} IS {'NOT ' if rnd.random() < 0.5 else ''}NULL"

        for _ in range(40):
            where = " AND ".join(predicate() for _ in range(rnd.randint(1, 2)))
            sql = f"SELECT i, r, s, d FROM p WHERE {where}"
            db.set_zone_maps(True)
            try:
                pruned = db.execute(sql).rows
                pruned_err = None
            except ExecutionError as exc:
                pruned, pruned_err = None, str(exc)
            db.set_zone_maps(False)
            try:
                full = db.execute(sql).rows
                full_err = None
            except ExecutionError as exc:
                full, full_err = None, str(exc)
            assert (pruned_err is None) == (full_err is None), where
            if pruned_err is None:
                assert sorted(pruned, key=repr) == sorted(full, key=repr), where


def _secure_pager():
    rng = Rng("meta")
    device = BlockDevice()
    anchor = InMemoryAnchor()
    key = rng.bytes(32)
    pager = SecurePager(device, key, anchor, rng.fork("iv"))
    return device, anchor, key, pager, rng


class TestAuthenticatedMeta:
    def test_roundtrip_and_missing(self):
        _, _, _, pager, _ = _secure_pager()
        assert pager.read_meta("zone_maps") is None
        pager.write_meta("zone_maps", b'{"t": 1}')
        assert pager.read_meta("zone_maps") == b'{"t": 1}'

    def test_blob_is_not_plaintext_on_device(self):
        device, _, _, pager, _ = _secure_pager()
        pager.write_meta("zone_maps", b"secret synopsis")
        raw = device.read_meta("ameta:zone_maps")
        assert raw is not None and b"secret synopsis" not in raw

    def test_tampered_blob_raises_and_reports(self):
        device, _, _, pager, _ = _secure_pager()
        violations = []
        pager.on_violation = lambda pgno, reason: violations.append((pgno, reason))
        pager.write_meta("zone_maps", b"payload")
        raw = bytearray(device.read_meta("ameta:zone_maps"))
        raw[20] ^= 0xFF
        device.write_meta("ameta:zone_maps", bytes(raw))
        with pytest.raises(IntegrityError):
            pager.read_meta("zone_maps")
        assert violations and violations[0][0] == -1

    def test_forged_blob_raises(self):
        device, _, _, pager, _ = _secure_pager()
        device.write_meta("ameta:zone_maps", b"\x00" * 64)
        with pytest.raises(IntegrityError, match="forged"):
            pager.read_meta("zone_maps")

    def test_suppressed_blob_raises(self):
        device, _, _, pager, _ = _secure_pager()
        pager.write_meta("zone_maps", b"payload")
        del device._meta["ameta:zone_maps"]
        with pytest.raises(IntegrityError, match="suppressed"):
            pager.read_meta("zone_maps")

    def test_rolled_back_blob_raises_stale(self):
        device, _, _, pager, _ = _secure_pager()
        pager.write_meta("zone_maps", b"version 1")
        old = device.read_meta("ameta:zone_maps")
        pager.write_meta("zone_maps", b"version 2")
        device.write_meta("ameta:zone_maps", old)  # validly-MAC'd old blob
        with pytest.raises(IntegrityError, match="stale"):
            pager.read_meta("zone_maps")

    def test_full_rollback_fails_freshness_at_open(self):
        device, anchor, key, pager, rng = _secure_pager()
        pager.write_meta("zone_maps", b"version 1")
        pager.commit()
        snapshot = device.snapshot()
        pager.write_meta("zone_maps", b"version 2")
        pager.commit()
        device.restore(snapshot)  # blob + digest table + pages, all rolled back
        with pytest.raises(FreshnessError):
            SecurePager(device, key, anchor, rng.fork("reopen"))

    def test_reopen_verifies_against_anchored_meta_root(self):
        device, anchor, key, pager, rng = _secure_pager()
        pager.write_meta("zone_maps", b"synopses")
        pager.commit()
        reopened = SecurePager(device, key, anchor, rng.fork("reopen"))
        assert reopened.read_meta("zone_maps") == b"synopses"

    def test_meta_ops_leave_meters_untouched(self):
        _, _, _, pager, _ = _secure_pager()
        before = (pager.meter.pages_read, pager.meter.pages_decrypted,
                  pager.meter.page_macs_verified)
        pager.write_meta("zone_maps", b"x")
        pager.read_meta("zone_maps")
        after = (pager.meter.pages_read, pager.meter.pages_decrypted,
                 pager.meter.page_macs_verified)
        assert after == before


def _items_deployment(rows: int = 1200):
    deployment = Deployment(workload="none", database_name="appdb", seed=47)
    deployment.attest_all()
    client = register_client(deployment, "tenant")
    deployment.monitor.provision_database(
        "appdb",
        policy_text=f"read :- sessionKeyIs('{client.fingerprint}')\n",
    )
    db = deployment.storage_engine.db
    db.execute("CREATE TABLE items (id INTEGER, label TEXT)")
    db.store.insert_rows(
        "items", [(i, f"item-{i:06d}") for i in range(rows)]
    )
    db.commit()
    return deployment, client


class TestDeploymentZoneMaps:
    def test_sos_pruning_matches_baseline_rows(self):
        deployment, _ = _items_deployment()
        sql = "SELECT count(*) FROM items WHERE id < 12"
        baseline = deployment.run_query(sql, "sos")
        pruned = deployment.run_query(
            sql, "sos", run_config=RunConfig(zone_maps=True)
        )
        assert pruned.rows == baseline.rows == [(12,)]
        assert pruned.storage_meter.extra["pages_skipped"] > 0
        assert pruned.storage_meter.pages_read < baseline.storage_meter.pages_read
        assert pruned.breakdown.total_ns < baseline.breakdown.total_ns

    def test_escape_hatch_is_byte_identical(self):
        deployment, _ = _items_deployment()
        sql = "SELECT count(*) FROM items WHERE id < 12"
        baseline = deployment.run_query(sql, "sos")
        # A pruned run in between must not leak into later queries.
        deployment.run_query(sql, "sos", run_config=RunConfig(zone_maps=True))
        explicit = deployment.run_query(
            sql, "sos", run_config=RunConfig(zone_maps=False)
        )
        default = deployment.run_query(sql, "sos")
        for result in (explicit, default):
            assert result.rows == baseline.rows
            assert result.storage_meter == baseline.storage_meter
            assert result.breakdown.total_ns == baseline.breakdown.total_ns
            assert dict(result.breakdown.by_category) == dict(
                baseline.breakdown.by_category
            )

    def test_hos_pruning_matches_baseline_rows(self):
        deployment, _ = _items_deployment()
        sql = "SELECT count(*) FROM items WHERE id BETWEEN 100 AND 120"
        baseline = deployment.run_query(sql, "hos")
        pruned = deployment.run_query(
            sql, "hos", run_config=RunConfig(zone_maps=True)
        )
        assert pruned.rows == baseline.rows == [(21,)]
        assert pruned.host_meter.extra["pages_skipped"] > 0

    def test_zone_map_tamper_lands_in_audit_chain(self):
        """Forging the persisted synopses must refuse the query and leave
        a hash-chained record: the host-side open re-reads the zone-map
        blob through the authenticated metadata path."""
        deployment, _ = _items_deployment()
        raw = bytearray(deployment.secure_device._meta["ameta:zone_maps"])
        raw[30] ^= 0x01
        deployment.secure_device._meta["ameta:zone_maps"] = bytes(raw)
        with pytest.raises(IntegrityError):
            deployment.run_query("SELECT count(*) FROM items", "hos")
        operations = deployment.monitor.audit_log("operations")
        operations.verify_chain()
        violations = [
            e for e in operations.entries if e.action == "integrity_violation"
        ]
        assert violations, "zone-map tampering was not audited"
        assert violations[-1].client_key == "host-1"
        assert "page -1" in violations[-1].detail
        assert "zone_maps" in violations[-1].detail

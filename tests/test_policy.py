"""Policy language: parser, predicate semantics, interpreter, rewriter."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, PolicyError, PolicyParseError
from repro.policy import (
    And,
    EvalContext,
    ExpiryFilter,
    LogUpdate,
    NodeConfig,
    Or,
    PolicyInterpreter,
    Pred,
    ReuseMapFilter,
    apply_expiry_filter,
    apply_insert_extra_columns,
    apply_reuse_filter,
    evaluate,
    parse_document,
    parse_expression,
)
from repro.sql import ast_nodes as A
from repro.sql import memory_database
from repro.sql.parser import parse

HOST = NodeConfig("host-1", "eu-central", "1.0", "x86-sgx")
STORAGE = NodeConfig("storage-1", "eu-west", "5.4.3", "arm-trustzone")


def ctx(client="k-alice", host=HOST, storage=STORAGE, now=100):
    return EvalContext(
        client_key=client,
        host=host,
        storage=storage,
        current_time=now,
        latest_fw={"host": "1.0", "storage": "5.4.3"},
        key_directory={"alice": "k-alice", "bob": "k-bob"},
    )


class TestParser:
    def test_single_rule(self):
        doc = parse_document("read :- sessionKeyIs(alice)")
        assert doc.rules[0].permission == "read"
        assert doc.rules[0].expr == Pred("sessionKeyIs", ("alice",))

    def test_alternative_rule_arrows(self):
        for arrow in (":-", "::=", ":--"):
            doc = parse_document(f"read {arrow} sessionKeyIs(alice)")
            assert doc.rules[0].permission == "read"

    def test_precedence_and_binds_tighter(self):
        expr = parse_expression("sessionKeyIs(a) | sessionKeyIs(b) & le(T, ts)")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_parentheses(self):
        expr = parse_expression("(sessionKeyIs(a) | sessionKeyIs(b)) & le(T, ts)")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Or)

    def test_multi_arg_and_string_args(self):
        expr = parse_expression("storageLocIs('eu-west', 'eu-north')")
        assert expr == Pred("storageLocIs", ("eu-west", "eu-north"))

    def test_comments_and_blank_lines(self):
        doc = parse_document(
            """
            # producer access
            read :- sessionKeyIs(alice)   # trailing note is not supported here
            write :- sessionKeyIs(alice)
            """.replace("   # trailing note is not supported here", "")
        )
        assert len(doc.rules) == 2

    def test_same_permission_multiple_rules(self):
        doc = parse_document("read :- sessionKeyIs(a)\nread :- sessionKeyIs(b)")
        assert len(doc.rules_for("read")) == 2

    def test_bad_permission_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_document("fly :- sessionKeyIs(a)")

    def test_empty_document_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_document("   \n  # only comments\n")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_expression("sessionKeyIs(a) sessionKeyIs(b)")

    def test_missing_parens_rejected(self):
        with pytest.raises(PolicyParseError):
            parse_expression("sessionKeyIs a")

    def test_to_text_roundtrip(self):
        text = "read :- sessionKeyIs(a) & le(T, expiry) | sessionKeyIs(b)"
        doc = parse_document(text)
        again = parse_document(doc.to_text())
        assert doc == again


class TestPredicates:
    def test_session_key_match(self):
        assert evaluate(Pred("sessionKeyIs", ("alice",)), ctx()).satisfied
        assert not evaluate(Pred("sessionKeyIs", ("bob",)), ctx()).satisfied

    def test_session_key_raw_fingerprint(self):
        assert evaluate(Pred("sessionKeyIs", ("k-alice",)), ctx()).satisfied

    def test_locations(self):
        assert evaluate(Pred("hostLocIs", ("eu-central",)), ctx()).satisfied
        assert not evaluate(Pred("hostLocIs", ("us-east",)), ctx()).satisfied
        assert evaluate(Pred("storageLocIs", ("us-east", "eu-west")), ctx()).satisfied

    def test_location_without_node_fails(self):
        no_storage = ctx(storage=None)
        assert not evaluate(Pred("storageLocIs", ("eu-west",)), no_storage).satisfied

    def test_fw_version_floor(self):
        assert evaluate(Pred("fwVersionStorage", ("5.4.0",)), ctx()).satisfied
        assert evaluate(Pred("fwVersionStorage", ("5.4.3",)), ctx()).satisfied
        assert not evaluate(Pred("fwVersionStorage", ("5.5.0",)), ctx()).satisfied

    def test_fw_latest(self):
        assert evaluate(Pred("fwVersionStorage", ("latest",)), ctx()).satisfied
        stale = ctx(storage=NodeConfig("s", "eu-west", "5.4.2", "arm-trustzone"))
        assert not evaluate(Pred("fwVersionStorage", ("latest",)), stale).satisfied

    def test_latest_without_registry_rejected(self):
        bare = EvalContext(client_key="k", host=HOST, storage=STORAGE)
        with pytest.raises(PolicyError):
            evaluate(Pred("fwVersionHost", ("latest",)), bare)

    def test_bad_version_string_rejected(self):
        with pytest.raises(PolicyError):
            evaluate(Pred("fwVersionHost", ("one.two",)), ctx())

    def test_unknown_predicate_rejected(self):
        with pytest.raises(PolicyError):
            evaluate(Pred("teleportIs", ("yes",)), ctx())

    def test_arity_errors(self):
        with pytest.raises(PolicyError):
            evaluate(Pred("sessionKeyIs", ()), ctx())
        with pytest.raises(PolicyError):
            evaluate(Pred("fwVersionHost", ("1", "2")), ctx())

    def test_directives_always_satisfied_and_collected(self):
        verdict = evaluate(Pred("le", ("T", "expiry_ts")), ctx())
        assert verdict.satisfied
        assert verdict.directives == (ExpiryFilter("expiry_ts"),)
        verdict = evaluate(Pred("reuseMap", ("consent",)), ctx())
        assert verdict.directives == (ReuseMapFilter("consent"),)
        verdict = evaluate(Pred("logUpdate", ("audit", "K", "Q")), ctx())
        assert verdict.directives == (LogUpdate("audit", ("K", "Q")),)


class TestInterpreter:
    DOC = (
        "read :- sessionKeyIs(alice)\n"
        "read :- sessionKeyIs(bob) & le(T, expiry_ts) & logUpdate(shares)\n"
        "write :- sessionKeyIs(alice)\n"
    )

    def test_first_alternative_wins_without_directives(self):
        interp = PolicyInterpreter(parse_document(self.DOC))
        verdict = interp.check("read", ctx("k-alice"))
        assert verdict.directives == ()

    def test_second_alternative_carries_directives(self):
        interp = PolicyInterpreter(parse_document(self.DOC))
        verdict = interp.check("read", ctx("k-bob"))
        kinds = {type(d) for d in verdict.directives}
        assert kinds == {ExpiryFilter, LogUpdate}

    def test_denied_client(self):
        interp = PolicyInterpreter(parse_document(self.DOC))
        with pytest.raises(AccessDenied):
            interp.check("read", ctx("k-mallory"))

    def test_default_deny_missing_permission(self):
        interp = PolicyInterpreter(parse_document("read :- sessionKeyIs(alice)"))
        with pytest.raises(AccessDenied):
            interp.check("write", ctx("k-alice"))

    def test_write_denied_for_reader(self):
        interp = PolicyInterpreter(parse_document(self.DOC))
        with pytest.raises(AccessDenied):
            interp.check("write", ctx("k-bob"))

    def test_and_requires_both(self):
        doc = parse_document("read :- sessionKeyIs(alice) & hostLocIs(us-east)")
        with pytest.raises(AccessDenied):
            PolicyInterpreter(doc).check("read", ctx("k-alice"))

    def test_predicate_count(self):
        interp = PolicyInterpreter(parse_document(self.DOC))
        assert interp.predicate_count() == 5


class TestRewriter:
    def test_expiry_filter_added(self):
        select = parse("SELECT name FROM persons WHERE country = 'DE'")
        rewritten = apply_expiry_filter(select, "expiry_ts", 5000, {"persons"})
        sql = rewritten.to_sql()
        assert "expiry_ts" in sql and "5000" in sql
        # Original predicate is preserved.
        assert "country" in sql

    def test_untouched_when_table_not_protected(self):
        select = parse("SELECT a FROM other_table")
        rewritten = apply_expiry_filter(select, "expiry_ts", 5000, {"persons"})
        assert rewritten == select

    def test_rewrites_inside_derived_tables(self):
        select = parse("SELECT x FROM (SELECT name AS x FROM persons) sub")
        rewritten = apply_expiry_filter(select, "expiry_ts", 1, {"persons"})
        assert "expiry_ts" in rewritten.to_sql()

    def test_rewrites_inside_where_subqueries(self):
        select = parse(
            "SELECT a FROM other WHERE a IN (SELECT person_id FROM persons)"
        )
        rewritten = apply_expiry_filter(select, "expiry_ts", 1, {"persons"})
        assert "expiry_ts" in rewritten.to_sql()

    def test_reuse_filter_bit_arithmetic(self):
        select = parse("SELECT name FROM persons")
        rewritten = apply_reuse_filter(select, "reuse_map", 3, {"persons"})
        sql = rewritten.to_sql()
        assert "% 16" in sql and ">= 8" in sql

    def test_reuse_filter_semantics(self):
        db = memory_database()
        db.execute("CREATE TABLE persons (name TEXT, reuse_map INTEGER)")
        db.execute(
            "INSERT INTO persons VALUES ('optin', 15), ('optout', 7), ('other', 8)"
        )
        select = parse("SELECT name FROM persons")
        rewritten = apply_reuse_filter(select, "reuse_map", 3, {"persons"})
        rows = db.execute_statement(rewritten).rows
        assert sorted(rows) == [("optin",), ("other",)]

    def test_reuse_bad_position_rejected(self):
        select = parse("SELECT 1 FROM persons")
        with pytest.raises(PolicyError):
            apply_reuse_filter(select, "m", -1, {"persons"})

    def test_insert_extension(self):
        insert = parse("INSERT INTO persons (name) VALUES ('x'), ('y')")
        extended = apply_insert_extra_columns(
            insert, {"expiry_ts": 9000, "reuse_map": 15}
        )
        assert extended.columns == ("name", "expiry_ts", "reuse_map")
        assert all(len(row) == 3 for row in extended.rows)
        assert extended.rows[0][1] == A.Literal(9000)

    def test_insert_without_columns_rejected(self):
        insert = parse("INSERT INTO persons VALUES ('x')")
        with pytest.raises(PolicyError):
            apply_insert_extra_columns(insert, {"expiry_ts": 1})

    def test_insert_duplicate_policy_column_rejected(self):
        insert = parse("INSERT INTO persons (name, expiry_ts) VALUES ('x', 1)")
        with pytest.raises(PolicyError):
            apply_insert_extra_columns(insert, {"expiry_ts": 2})

    def test_expiry_semantics_end_to_end(self):
        db = memory_database()
        db.execute("CREATE TABLE persons (name TEXT, expiry_ts INTEGER)")
        db.execute("INSERT INTO persons VALUES ('live', 10000), ('expired', 10)")
        select = parse("SELECT name FROM persons")
        rewritten = apply_expiry_filter(select, "expiry_ts", 5000, {"persons"})
        assert db.execute_statement(rewritten).rows == [("live",)]

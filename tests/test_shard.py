"""Sharded scale-out: differential correctness, byte-identity, tamper
attribution, routing/pruning, and the adaptive offload optimizer.

The load-bearing property is *equivalence*: for every configuration and
execution knob, a sharded deployment must return the same rows as the
single-node deployment it decomposes — and at ``shards=1`` it must be
byte-identical (rows, meters, simulated time, observable fingerprints).
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.core import CONFIGS, Deployment, RunConfig
from repro.core.manual_partitions import MANUAL_PARTITIONS
from repro.errors import IntegrityError, IronSafeError, PartitionError
from repro.shard import (
    PLAIN_CLASS,
    SECURE_CLASS,
    SHARD_COUNTERS,
    ShardedDeployment,
    ShardingSpec,
    TablePartitioning,
    default_tpch_sharding,
    hash_value,
    range_bounds,
)
from repro.sim import Meter
from repro.telemetry import SPAN_OFFLOAD_PLAN
from repro.tpch import ALL_QUERIES

SF = 0.001
SEED = 11

# TPC-H-shaped query templates; thresholds are drawn from a fixed seed so
# the differential corpus is "random but reproducible".
_RNG = random.Random(20260808)
_QTY = _RNG.randint(20, 45)
_PRICE = _RNG.randint(50_000, 150_000)
_DISC = round(_RNG.uniform(0.02, 0.08), 2)

SHAPED_QUERIES = {
    "filter-scan": (
        "SELECT l_orderkey, l_partkey, l_quantity FROM lineitem "
        f"WHERE l_quantity > {_QTY}"
    ),
    "group-agg": (
        "SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity), "
        "AVG(l_extendedprice) FROM lineitem "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    ),
    "join-agg": (
        "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
        "WHERE l_orderkey = o_orderkey AND o_totalprice > "
        f"{_PRICE} GROUP BY o_orderpriority ORDER BY o_orderpriority"
    ),
    "replicated-join": (
        "SELECT n_name, COUNT(*) FROM nation, customer "
        "WHERE c_nationkey = n_nationkey "
        "GROUP BY n_name ORDER BY n_name"
    ),
    "selective-filter": (
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        f"WHERE l_discount < {_DISC} AND l_quantity > {_QTY}"
    ),
}

DECOMPOSABLE_AGG = (
    "SELECT l_returnflag, COUNT(*), SUM(l_extendedprice), MIN(l_shipdate), "
    "MAX(l_shipdate) FROM lineitem "
    f"WHERE l_quantity > {_QTY} GROUP BY l_returnflag ORDER BY l_returnflag"
)


def _sort_key(row):
    return tuple(
        (0, round(v, 6)) if isinstance(v, float) else (1, repr(v)) for v in row
    )


def assert_rows_match(got, expected, *, context=""):
    """Multiset row comparison with float tolerance (cross-shard folds
    re-order floating-point accumulation, so sums differ in the last ulp)."""
    assert len(got) == len(expected), (
        f"{context}: {len(got)} rows vs {len(expected)} expected"
    )
    for grow, erow in zip(sorted(got, key=_sort_key), sorted(expected, key=_sort_key)):
        assert len(grow) == len(erow), f"{context}: arity mismatch"
        for gval, eval_ in zip(grow, erow):
            if isinstance(gval, float) or isinstance(eval_, float):
                assert math.isclose(
                    gval, eval_, rel_tol=1e-9, abs_tol=1e-9
                ), f"{context}: {gval!r} != {eval_!r}"
            else:
                assert gval == eval_, f"{context}: {gval!r} != {eval_!r}"


def _build(shards: int, **kwargs) -> ShardedDeployment:
    deployment = ShardedDeployment(
        shards=shards, scale_factor=SF, seed=SEED, **kwargs
    )
    deployment.attest_all()
    return deployment


@pytest.fixture(scope="module")
def base() -> Deployment:
    deployment = Deployment(scale_factor=SF, seed=SEED)
    deployment.attest_all()
    return deployment


@pytest.fixture(scope="module")
def single() -> ShardedDeployment:
    return _build(1)


@pytest.fixture(scope="module")
def sharded2() -> ShardedDeployment:
    return _build(2)


@pytest.fixture(scope="module")
def sharded4() -> ShardedDeployment:
    return _build(4)


@pytest.fixture(scope="module")
def sharded8() -> ShardedDeployment:
    return _build(8)


def _pick(request, shards):
    return request.getfixturevalue(
        {1: "single", 2: "sharded2", 4: "sharded4", 8: "sharded8"}[shards]
    )


# ---------------------------------------------------------------------------
# Partitioning units
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_hash_value_deterministic_and_spread(self):
        assert hash_value(42) == hash_value(42)
        assert hash_value("ALGERIA") == hash_value("ALGERIA")
        assert {hash_value(i) % 4 for i in range(200)} == {0, 1, 2, 3}

    def test_range_bounds_partition_the_keyspace(self):
        bounds = range_bounds(200, 4)
        assert len(bounds) == 3
        assert list(bounds) == sorted(bounds)
        assert bounds == (51, 101, 151)

    def test_default_layout_replicates_small_tables(self):
        spec = default_tpch_sharding(4, SF)
        assert spec.is_replicated("nation")
        assert spec.is_replicated("region")
        assert spec.tables["lineitem"].scheme == "hash"
        assert spec.tables["part"].scheme == "range"

    def test_co_partitioning(self):
        spec = default_tpch_sharding(4, SF)
        # customer⋈orders on custkey: both hash on it → co-partitioned.
        assert spec.co_partitioned(
            (("customer", "c_custkey"), ("orders", "o_custkey"))
        )
        # orders is hashed on o_custkey, not o_orderkey.
        assert not spec.co_partitioned((("orders", "o_orderkey"),))

    def test_shard_rows_is_a_partition(self):
        spec = ShardingSpec(
            shards=3,
            tables={"t": TablePartitioning("hash", "k", 0)},
        )
        rows = [(i, f"v{i}") for i in range(100)]
        per_shard = spec.shard_rows("t", rows)
        assert len(per_shard) == 3
        merged = [row for shard in per_shard for row in shard]
        assert sorted(merged) == rows
        # Deterministic placement: same row always lands on the same shard.
        again = spec.shard_rows("t", rows)
        assert per_shard == again

    def test_replicated_rows_are_full_copies(self):
        spec = ShardingSpec(shards=2, tables={})
        rows = [(1,), (2,)]
        assert spec.shard_rows("nation", rows) == [rows, rows]


# ---------------------------------------------------------------------------
# shards=1 byte-identity with the seed deployment
# ---------------------------------------------------------------------------


class TestSingleShardByteIdentity:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    def test_identical_rows_meters_and_sim_time(self, base, single, config):
        sql = SHAPED_QUERIES["group-agg"]
        expected = base.run_query(sql, config)
        got = single.run_query(sql, config)
        assert got.rows == expected.rows
        assert got.columns == expected.columns
        assert got.storage_meter == expected.storage_meter
        assert got.host_meter == expected.host_meter
        assert got.breakdown.total_ns == expected.breakdown.total_ns
        assert got.total_ms == expected.total_ms

    def test_identical_observable_fingerprints(self):
        fingerprints = []
        for cls in (Deployment, ShardedDeployment):
            deployment = cls(scale_factor=SF, seed=SEED)
            deployment.attest_all()
            recorder = deployment.enable_observability()
            deployment.run_query(SHAPED_QUERIES["filter-scan"], "scs")
            fingerprints.append(recorder.last_trace().fingerprint())
        assert fingerprints[0] == fingerprints[1]


# ---------------------------------------------------------------------------
# Differential: sharded results match the single-node reference
# ---------------------------------------------------------------------------


class TestShardedDifferential:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    @pytest.mark.parametrize("name", sorted(SHAPED_QUERIES))
    def test_scs_matches_reference(self, request, base, shards, name):
        deployment = _pick(request, shards)
        sql = SHAPED_QUERIES[name]
        expected = base.run_query(sql, "scs")
        got = deployment.run_query(sql, "scs")
        assert_rows_match(got.rows, expected.rows, context=f"{name}@{shards}")

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("config", ["hons", "hos", "vcs"])
    def test_other_configs_match_reference(self, request, base, shards, config):
        sql = SHAPED_QUERIES["join-agg"]
        deployment = _pick(request, shards)
        expected = base.run_query(sql, config)
        got = deployment.run_query(sql, config)
        assert_rows_match(got.rows, expected.rows, context=f"{config}@{shards}")

    @pytest.mark.parametrize("vectorized", [False, True])
    @pytest.mark.parametrize("oblivious", ["off", "padded"])
    def test_knob_matrix_matches_reference(
        self, base, sharded4, vectorized, oblivious
    ):
        run_config = RunConfig(vectorized=vectorized, oblivious=oblivious)
        sql = SHAPED_QUERIES["group-agg"]
        expected = base.run_query(sql, "scs", run_config=run_config)
        got = sharded4.run_query(sql, "scs", run_config=run_config)
        assert_rows_match(
            got.rows, expected.rows, context=f"vec={vectorized},obl={oblivious}"
        )

    @pytest.mark.parametrize("shards", [2, 8])
    def test_storage_only_partial_final_agg(self, request, base, shards):
        deployment = _pick(request, shards)
        expected = base.run_query(DECOMPOSABLE_AGG, "sos")
        got = deployment.run_query(DECOMPOSABLE_AGG, "sos")
        assert_rows_match(got.rows, expected.rows, context=f"sos@{shards}")
        assert got.host_meter.get("partial_aggs_merged") > 0

    def test_tpch_queries_match_reference(self, base, sharded2):
        for number in (1, 3, 6):
            sql = ALL_QUERIES[number].sql
            expected = base.run_query(sql, "scs")
            got = sharded2.run_query(sql, "scs")
            assert_rows_match(got.rows, expected.rows, context=f"Q{number}")

    def test_concurrent_sessions_over_shards(self, sharded2):
        queries = [
            SHAPED_QUERIES["filter-scan"],
            SHAPED_QUERIES["group-agg"],
            SHAPED_QUERIES["join-agg"],
        ]
        result = sharded2.run_concurrent(queries, workers=2)
        assert len(result.sessions) == 3
        assert result.throughput_qps > 0
        assert result.speedup >= 1.0


# ---------------------------------------------------------------------------
# Routing, pruning, fan-out accounting
# ---------------------------------------------------------------------------


class TestRoutingAndPruning:
    def test_zone_maps_prune_range_partitioned_shards(self, base, sharded4):
        sql = "SELECT p_partkey, p_name FROM part WHERE p_partkey < 50"
        run_config = RunConfig(zone_maps=True)
        expected = base.run_query(sql, "scs", run_config=run_config)
        got = sharded4.run_query(sql, "scs", run_config=run_config)
        assert_rows_match(got.rows, expected.rows, context="pruned-scan")
        assert got.host_meter.get("shards_pruned") >= 1
        fanout = got.host_meter.get("shard_scan_fanout")
        assert 1 <= fanout < 4

    def test_unselective_scan_fans_out_to_all_shards(self, sharded4):
        got = sharded4.run_query(SHAPED_QUERIES["filter-scan"], "scs")
        assert got.host_meter.get("shard_scan_fanout") >= 4
        assert got.host_meter.get("shards_pruned") == 0

    def test_pruning_disabled_under_oblivious(self, sharded4):
        sql = "SELECT p_partkey, p_name FROM part WHERE p_partkey < 50"
        run_config = RunConfig(zone_maps=True, oblivious="padded")
        got = sharded4.run_query(sql, "scs", run_config=run_config)
        assert got.host_meter.get("shards_pruned") == 0

    def test_manual_split_falls_back_without_co_partitioning(self, sharded2):
        manual = dataclasses.replace(
            MANUAL_PARTITIONS[21], requires=(("lineitem", "l_suppkey"),)
        )
        result = sharded2.run_query(
            ALL_QUERIES[21].sql, "scs", manual_partition=manual
        )
        assert any("co-partitioning" in note for note in result.plan_notes)

    def test_co_partitioned_manual_split_is_honored(self, base, sharded2):
        manual = MANUAL_PARTITIONS[21]
        expected = base.run_query(ALL_QUERIES[21].sql, "scs", manual_partition=manual)
        got = sharded2.run_query(ALL_QUERIES[21].sql, "scs", manual_partition=manual)
        assert_rows_match(got.rows, expected.rows, context="manual-q21")
        assert not any("co-partitioning" in note for note in got.plan_notes)

    def test_sos_rejects_non_decomposable_queries(self, sharded2):
        # Cross-shard joins can't run as per-shard partials.
        with pytest.raises(PartitionError, match="scs"):
            sharded2.run_query(SHAPED_QUERIES["join-agg"], "sos")

    def test_sos_replicated_base_runs_on_one_shard(self, base, sharded4):
        sql = (
            "SELECT n_regionkey, COUNT(*) FROM nation "
            "GROUP BY n_regionkey ORDER BY n_regionkey"
        )
        expected = base.run_query(sql, "sos")
        got = sharded4.run_query(sql, "sos")
        # Replicated tables hold full copies; the partial must run on
        # exactly one shard or counts would multiply by the fan-out.
        assert_rows_match(got.rows, expected.rows, context="sos-replicated")


# ---------------------------------------------------------------------------
# Integrity: tamper attribution to the owning shard
# ---------------------------------------------------------------------------


class TestTamperAttribution:
    def test_corrupt_shard_is_named_with_one_incident(self, tmp_path):
        deployment = _build(4)
        recorder = deployment.enable_observability(flight_dir=str(tmp_path))
        node = deployment.nodes[2]
        victim = node.engine.db.store.pages_of("lineitem")[0]
        node.secure_device.corrupt(victim, offset=100)
        with pytest.raises(IntegrityError) as err:
            deployment.run_query(SHAPED_QUERIES["filter-scan"], "scs")
        assert "shard storage-3" in str(err.value)
        incidents = recorder.flight.incidents
        assert len(incidents) == 1
        assert incidents[0]["node"] == "storage-3"
        assert incidents[0]["page"] == victim
        dumps = sorted(tmp_path.glob("incident-*.jsonl"))
        assert len(dumps) == 1

    def test_other_shards_remain_healthy(self, tmp_path):
        deployment = _build(2)
        deployment.enable_observability(flight_dir=str(tmp_path))
        node = deployment.nodes[1]
        victim = node.engine.db.store.pages_of("lineitem")[0]
        node.secure_device.corrupt(victim, offset=100)
        with pytest.raises(IntegrityError, match="storage-2"):
            deployment.run_query(SHAPED_QUERIES["filter-scan"], "scs")
        # A query confined to healthy replicated data still succeeds.
        result = deployment.run_query(
            "SELECT n_name FROM nation ORDER BY n_name", "scs"
        )
        assert len(result.rows) == 25


# ---------------------------------------------------------------------------
# Adaptive offload optimizer (strategy="auto")
# ---------------------------------------------------------------------------


class TestAutoStrategy:
    def test_base_deployment_rejects_auto(self, base):
        with pytest.raises(IronSafeError, match="ShardedDeployment"):
            base.run_query(
                SHAPED_QUERIES["filter-scan"],
                "scs",
                run_config=RunConfig(strategy="auto"),
            )

    def test_auto_stays_in_the_secure_class(self, base, sharded2):
        run_config = RunConfig(strategy="auto")
        expected = base.run_query(DECOMPOSABLE_AGG, "scs")
        got = sharded2.run_query(DECOMPOSABLE_AGG, "scs", run_config=run_config)
        assert got.config in SECURE_CLASS
        assert_rows_match(got.rows, expected.rows, context="auto-secure")
        assert got.host_meter.get("optimizer_plans_considered") >= 2
        assert got.plan_notes and got.plan_notes[0].startswith("optimizer chose")

    def test_auto_stays_in_the_plain_class(self, sharded2):
        run_config = RunConfig(strategy="auto")
        got = sharded2.run_query(
            SHAPED_QUERIES["group-agg"], "vcs", run_config=run_config
        )
        assert got.config in PLAIN_CLASS

    def test_auto_matches_or_beats_manual(self, sharded2):
        # pipeline=False on both sides: manual runs default to the serial
        # ship path, so auto must be compared on the same one.
        for sql in (DECOMPOSABLE_AGG, SHAPED_QUERIES["group-agg"]):
            auto = sharded2.run_query(
                sql, "scs", run_config=RunConfig(pipeline=False, strategy="auto")
            )
            manual = {}
            for cfg in SECURE_CLASS:
                try:
                    manual[cfg] = sharded2.run_query(sql, cfg).total_ms
                except PartitionError:
                    continue  # sos can't run non-decomposable queries
            best = min(manual.values())
            assert auto.total_ms <= best * 1.001, (
                f"auto chose {auto.config} at {auto.total_ms:.3f}ms, "
                f"best manual is {best:.3f}ms ({manual})"
            )

    def test_prediction_recorded_in_telemetry(self, sharded2):
        tracer = sharded2.enable_tracing()
        result = sharded2.run_query(
            DECOMPOSABLE_AGG, "scs", run_config=RunConfig(strategy="auto")
        )
        spans = [
            span
            for trace in tracer.traces
            for span in trace.spans
            if span.name == SPAN_OFFLOAD_PLAN
        ]
        assert spans, "auto runs must emit an offload_plan span"
        span = spans[-1]
        assert span.attributes["chosen"] == result.config
        assert span.attributes["predicted_ms"] > 0
        assert span.attributes["actual_ms"] == pytest.approx(result.total_ms)


# ---------------------------------------------------------------------------
# Meter counters
# ---------------------------------------------------------------------------


class TestShardCounters:
    def test_counters_are_registered(self):
        meter = Meter()
        for name in SHARD_COUNTERS:
            assert meter.get(name) == 0
            meter.bump(name, 2)
            assert meter.get(name) == 2

    def test_serial_runs_never_bump_shard_counters(self, base):
        result = base.run_query(SHAPED_QUERIES["filter-scan"], "scs")
        for name in SHARD_COUNTERS:
            assert result.host_meter.get(name) == 0
            assert result.storage_meter.get(name) == 0

"""GDPR anti-pattern scenarios: semantics, not just timings."""

from __future__ import annotations

import pytest

from repro.errors import AccessDenied, ComplianceError
from repro.gdpr import GDPRWorkbench


@pytest.fixture(scope="module")
def workbench():
    return GDPRWorkbench(rows=400)


class TestTimelyDeletion:
    def test_expired_rows_hidden_from_consumer(self, workbench):
        sql = "SELECT count(*) FROM persons"
        base, _ = workbench.run_baseline(sql)
        consumer, _, _ = workbench.run_ironsafe(sql, workbench.bob)
        assert consumer.scalar() < base.scalar()

    def test_owner_sees_everything(self, workbench):
        sql = "SELECT count(*) FROM persons"
        base, _ = workbench.run_baseline(sql)
        owner, _, _ = workbench.run_ironsafe(sql, workbench.alice)
        assert owner.scalar() == base.scalar()

    def test_expiry_is_relative_to_request_time(self, workbench):
        sql = "SELECT count(*) FROM persons"
        early, _, _ = workbench.run_ironsafe(sql, workbench.bob, now=500)
        late, _, _ = workbench.run_ironsafe(sql, workbench.bob, now=50_000)
        assert late.scalar() == 0  # everything expired by then
        assert early.scalar() > 0


class TestIndiscriminateUse:
    def test_optout_rows_hidden(self, workbench):
        # Rows with reuse_map bit 3 cleared (every 3rd row) are invisible.
        result, _, _ = workbench.run_ironsafe(
            "SELECT count(*) FROM persons", workbench.bob, now=500
        )
        base, _ = workbench.run_baseline("SELECT count(*) FROM persons")
        # Consumer sees only opted-in rows.
        expected_optins = sum(1 for i in range(workbench.rows) if i % 3)
        assert result.scalar() == expected_optins
        assert result.scalar() < base.scalar()

    def test_unregistered_consumer_rejected(self, workbench):
        other = "deadbeef" * 8
        workbench.policy.key_directory["carol"] = other
        # carol matches no rule at all -> denied outright
        with pytest.raises(AccessDenied):
            workbench.run_ironsafe("SELECT count(*) FROM persons", other)


class TestTransparency:
    def test_every_consumer_read_logged(self, workbench):
        log = workbench.deployment.monitor.audit_log("sharing")
        before = len(log.entries)
        workbench.run_ironsafe("SELECT name FROM persons WHERE person_id = 1", workbench.bob)
        workbench.run_ironsafe("SELECT name FROM persons WHERE person_id = 2", workbench.bob)
        assert len(log.entries) == before + 2

    def test_owner_reads_not_logged(self, workbench):
        log = workbench.deployment.monitor.audit_log("sharing")
        before = len(log.entries)
        workbench.run_ironsafe("SELECT count(*) FROM persons", workbench.alice)
        assert len(log.entries) == before

    def test_log_records_query_text(self, workbench):
        marker = "SELECT email FROM persons WHERE person_id = 77"
        workbench.run_ironsafe(marker, workbench.bob)
        log = workbench.deployment.monitor.audit_log("sharing")
        assert any(marker in e.detail for e in log.entries)

    def test_signed_export_verifies(self, workbench):
        from repro.monitor import verify_export

        workbench.run_ironsafe("SELECT count(*) FROM persons", workbench.bob)
        export = workbench.deployment.monitor.export_log("sharing")
        verify_export(
            export,
            workbench.deployment.monitor.audit_log("sharing"),
            workbench.deployment.monitor.public_key,
        )


class TestRiskAgnostic:
    def test_compliant_nodes_accepted(self, workbench):
        from repro.gdpr import EXEC_POLICY

        _, _, auth = workbench.run_ironsafe(
            "SELECT count(*) FROM persons", workbench.bob, exec_policy=EXEC_POLICY
        )
        assert auth.storage_node is not None
        assert auth.storage_node.location == "eu-west"

    def test_noncompliant_host_refused(self, workbench):
        with pytest.raises(ComplianceError):
            workbench.run_ironsafe(
                "SELECT count(*) FROM persons",
                workbench.bob,
                exec_policy="hostLocIs(us-east)",
            )

    def test_noncompliant_storage_falls_back_to_host(self, workbench):
        _, _, auth = workbench.run_ironsafe(
            "SELECT count(*) FROM persons",
            workbench.bob,
            exec_policy="storageLocIs(us-east)",
        )
        assert auth.storage_node is None  # paper §4.2: host-only fallback

    def test_firmware_floor(self, workbench):
        with pytest.raises(ComplianceError):
            workbench.run_ironsafe(
                "SELECT count(*) FROM persons",
                workbench.bob,
                exec_policy="fwVersionHost('99.0')",
            )


class TestBreachEvidence:
    def test_proofs_verify(self, workbench):
        from repro.monitor import verify_proof

        _, _, auth = workbench.run_ironsafe(
            "SELECT count(*) FROM persons", workbench.bob
        )
        verify_proof(auth.proof, workbench.deployment.monitor.public_key)

    def test_audit_chain_tamper_evident(self, workbench):
        from repro.errors import IntegrityError

        workbench.run_ironsafe("SELECT count(*) FROM persons", workbench.bob)
        log = workbench.deployment.monitor.audit_log("sharing")
        log.verify_chain()
        entry = log.entries[0]
        original = log.entries[0]
        log.entries[0] = type(entry)(
            sequence=entry.sequence,
            timestamp=entry.timestamp,
            client_key=entry.client_key,
            action=entry.action,
            detail="covered-up",
            prev_digest=entry.prev_digest,
        )
        with pytest.raises(IntegrityError):
            log.verify_chain()
        log.entries[0] = original  # restore for other tests


class TestScenarioHarness:
    def test_all_scenarios_produce_overheads(self):
        workbench = GDPRWorkbench(rows=300)
        results = workbench.run_all()
        assert len(results) == 5
        names = [r.name for r in results]
        assert names == [
            "timely deletion",
            "indiscriminate use",
            "transparent sharing",
            "risk-agnostic processing",
            "undetected data breaches",
        ]
        for r in results:
            assert r.ironsafe_ms > r.baseline_ms > 0
            assert r.overhead > 1

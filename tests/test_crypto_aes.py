"""AES block cipher: FIPS-197 known-answer tests + properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto import AES
from repro.crypto.aes import INV_SBOX, SBOX
from repro.errors import CryptoError

# FIPS-197 appendix C vectors.
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_KATS = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,expected_hex", _KATS)
def test_fips197_known_answers(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(_PLAINTEXT).hex() == expected_hex


@pytest.mark.parametrize("key_hex,expected_hex", _KATS)
def test_fips197_decrypt(key_hex, expected_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(expected_hex)) == _PLAINTEXT


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert sorted(INV_SBOX) == list(range(256))


def test_sbox_inverse_relation():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_known_entries():
    # Spot values from the FIPS-197 table.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 31, 33])
def test_rejects_bad_key_sizes(bad_len):
    with pytest.raises(CryptoError):
        AES(bytes(bad_len))


@pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
def test_rejects_bad_block_sizes(bad_len):
    cipher = AES(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(bytes(bad_len))
    with pytest.raises(CryptoError):
        cipher.decrypt_block(bytes(bad_len))


@given(key=st.binary(min_size=32, max_size=32), block=st.binary(min_size=16, max_size=16))
def test_roundtrip_property(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_encryption_is_not_identity(key, block):
    # With overwhelming probability a block never encrypts to itself AND
    # to the same value under a flipped key.
    cipher = AES(key)
    flipped = bytes([key[0] ^ 1]) + key[1:]
    assert cipher.encrypt_block(block) != AES(flipped).encrypt_block(block)


def test_deterministic():
    cipher = AES(bytes(range(16)))
    block = bytes(range(16))
    assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

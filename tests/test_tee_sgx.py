"""Simulated SGX: enclaves, isolation, sealing, quotes and the IAS."""

from __future__ import annotations

import pytest

from repro.crypto import Rng
from repro.errors import AttestationError, EnclaveError, SealingError
from repro.sim import CostModel, SimClock
from repro.tee.sgx import IntelAttestationService, SgxPlatform, check_report


@pytest.fixture()
def platform():
    return SgxPlatform("plat-1", SimClock(), CostModel(), Rng(1))


@pytest.fixture()
def ias_setup():
    rng = Rng(2)
    ias = IntelAttestationService(rng)
    platform = SgxPlatform("plat-2", SimClock(), CostModel(), rng)
    ias.register_platform("plat-2", platform.attestation_key.public_key)
    return ias, platform


class TestEnclaveLifecycle:
    def test_measurement_depends_on_code(self, platform):
        a = platform.create_enclave("a", b"code v1")
        b = platform.create_enclave("b", b"code v2")
        assert a.measurement.digest != b.measurement.digest

    def test_same_code_same_measurement(self, platform):
        a = platform.create_enclave("a", b"identical")
        b = platform.create_enclave("b", b"identical")
        assert a.measurement.digest == b.measurement.digest

    def test_duplicate_name_rejected(self, platform):
        platform.create_enclave("dup", b"x")
        with pytest.raises(EnclaveError):
            platform.create_enclave("dup", b"y")

    def test_destroyed_enclave_unusable(self, platform):
        enclave = platform.create_enclave("gone", b"x")
        platform.destroy_enclave("gone")
        with pytest.raises(EnclaveError):
            enclave.ecall("anything")

    def test_destroy_unknown_rejected(self, platform):
        with pytest.raises(EnclaveError):
            platform.destroy_enclave("ghost")


class TestIsolation:
    def test_outside_read_rejected(self, platform):
        enclave = platform.create_enclave("iso", b"x")
        enclave.register_ecall("store", lambda: enclave.put("secret", 42, 8))
        enclave.ecall("store")
        with pytest.raises(EnclaveError, match="untrusted"):
            enclave.get("secret")

    def test_outside_write_rejected(self, platform):
        enclave = platform.create_enclave("iso2", b"x")
        with pytest.raises(EnclaveError):
            enclave.put("planted", "evil")

    def test_inside_access_works(self, platform):
        enclave = platform.create_enclave("iso3", b"x")

        def roundtrip():
            enclave.put("k", "v", 16)
            return enclave.get("k")

        enclave.register_ecall("rt", roundtrip)
        assert enclave.ecall("rt") == "v"

    def test_memory_accounting(self, platform):
        enclave = platform.create_enclave("mem", b"x")

        def allocate():
            enclave.put("blob", bytes(100), 1000)

        enclave.register_ecall("alloc", allocate)
        enclave.ecall("alloc")
        assert enclave.memory_in_use == 1000
        assert enclave.meter.peak_memory_bytes >= 1000

        def free():
            enclave.drop("blob", 1000)

        enclave.register_ecall("free", free)
        enclave.ecall("free")
        assert enclave.memory_in_use == 0

    def test_wipe_clears_state(self, platform):
        enclave = platform.create_enclave("wipe", b"x")

        def setup():
            enclave.put("a", 1, 10)
            enclave.wipe()
            return "a" in enclave._protected

        enclave.register_ecall("s", setup)
        assert enclave.ecall("s") is False
        assert enclave.memory_in_use == 0


class TestTransitions:
    def test_ecall_counts_two_transitions(self, platform):
        enclave = platform.create_enclave("t", b"x")
        enclave.register_ecall("noop", lambda: None)
        enclave.ecall("noop")
        assert enclave.meter.enclave_transitions == 2

    def test_ocall_counts_two_more(self, platform):
        enclave = platform.create_enclave("t2", b"x")

        def body():
            return enclave.ocall(lambda: "outside result")

        enclave.register_ecall("with_ocall", body)
        assert enclave.ecall("with_ocall") == "outside result"
        assert enclave.meter.enclave_transitions == 4

    def test_ocall_outside_rejected(self, platform):
        enclave = platform.create_enclave("t3", b"x")
        with pytest.raises(EnclaveError):
            enclave.ocall(lambda: None)

    def test_unknown_ecall_rejected(self, platform):
        enclave = platform.create_enclave("t4", b"x")
        with pytest.raises(EnclaveError):
            enclave.ecall("missing")

    def test_ocall_leaves_then_reenters(self, platform):
        enclave = platform.create_enclave("t5", b"x")
        observed = {}

        def body():
            observed["inside_before"] = enclave.inside
            enclave.ocall(lambda: observed.update(outside=enclave.inside))
            observed["inside_after"] = enclave.inside

        enclave.register_ecall("obs", body)
        enclave.ecall("obs")
        assert observed == {
            "inside_before": True,
            "outside": False,
            "inside_after": True,
        }


class TestSealing:
    def test_roundtrip(self, platform):
        enclave = platform.create_enclave("seal", b"x")
        assert enclave.unseal(enclave.seal(b"secret")) == b"secret"

    def test_other_enclave_cannot_unseal(self, platform):
        a = platform.create_enclave("a", b"code-a")
        b = platform.create_enclave("b", b"code-b")
        sealed = a.seal(b"for a only")
        with pytest.raises(SealingError):
            b.unseal(sealed)

    def test_other_platform_cannot_unseal(self):
        p1 = SgxPlatform("p1", SimClock(), CostModel(), Rng(5))
        p2 = SgxPlatform("p2", SimClock(), CostModel(), Rng(6))
        a = p1.create_enclave("same", b"identical code")
        b = p2.create_enclave("same", b"identical code")
        with pytest.raises(SealingError):
            b.unseal(a.seal(b"bound to p1"))

    def test_malformed_blob_rejected(self, platform):
        enclave = platform.create_enclave("m", b"x")
        with pytest.raises(SealingError):
            enclave.unseal(b"not json at all")


class TestAttestation:
    def test_valid_quote_accepted(self, ias_setup):
        ias, platform = ias_setup
        enclave = platform.create_enclave("e", b"app")
        report = ias.verify_quote(enclave.generate_quote(b"nonce"))
        check_report(report, ias.report_signing_key)

    def test_unregistered_platform_rejected(self, ias_setup):
        ias, _ = ias_setup
        rogue = SgxPlatform("rogue", SimClock(), CostModel(), Rng(7))
        enclave = rogue.create_enclave("e", b"app")
        report = ias.verify_quote(enclave.generate_quote(b"nonce"))
        with pytest.raises(AttestationError):
            check_report(report, ias.report_signing_key)

    def test_revoked_platform_rejected(self, ias_setup):
        ias, platform = ias_setup
        enclave = platform.create_enclave("e", b"app")
        ias.revoke_platform("plat-2")
        report = ias.verify_quote(enclave.generate_quote(b"nonce"))
        with pytest.raises(AttestationError):
            check_report(report, ias.report_signing_key)

    def test_tampered_quote_rejected(self, ias_setup):
        ias, platform = ias_setup
        enclave = platform.create_enclave("e", b"app")
        quote = enclave.generate_quote(b"nonce")
        forged = type(quote)(
            measurement=quote.measurement,
            challenge=b"different nonce",
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            signature=quote.signature,
        )
        report = ias.verify_quote(forged)
        with pytest.raises(AttestationError):
            check_report(report, ias.report_signing_key)

    def test_forged_report_rejected(self, ias_setup):
        ias, platform = ias_setup
        enclave = platform.create_enclave("e", b"app")
        report = ias.verify_quote(enclave.generate_quote(b"n"))
        forged = type(report)(
            quote_payload=report.quote_payload,
            is_valid=True,
            platform_id="someone-else",
            signature=report.signature,
        )
        with pytest.raises(AttestationError):
            check_report(forged, ias.report_signing_key)

    def test_quote_binds_report_data(self, ias_setup):
        _, platform = ias_setup
        enclave = platform.create_enclave("e", b"app")
        q1 = enclave.generate_quote(b"n", report_data=b"key-hash-1")
        q2 = enclave.generate_quote(b"n", report_data=b"key-hash-2")
        assert q1.signature != q2.signature

    def test_double_platform_registration_rejected(self, ias_setup):
        ias, platform = ias_setup
        with pytest.raises(AttestationError):
            ias.register_platform("plat-2", platform.attestation_key.public_key)

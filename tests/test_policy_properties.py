"""Property-based tests for the policy language (hypothesis-generated)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.policy import (
    And,
    EvalContext,
    NodeConfig,
    Or,
    Pred,
    evaluate,
    parse_document,
    parse_expression,
)
from repro.policy.ast import PolicyDocument, Rule

# -- generators -------------------------------------------------------------

_locations = st.sampled_from(["eu-west", "eu-north", "us-east", "ap-south"])
_keys = st.sampled_from(["ka", "kb", "kc"])
_versions = st.sampled_from(["1.0", "2.3", "5.4.3", "latest"])

_admission_pred = st.one_of(
    _keys.map(lambda k: Pred("sessionKeyIs", (k,))),
    st.lists(_locations, min_size=1, max_size=2, unique=True).map(
        lambda ls: Pred("hostLocIs", tuple(ls))
    ),
    st.lists(_locations, min_size=1, max_size=2, unique=True).map(
        lambda ls: Pred("storageLocIs", tuple(ls))
    ),
    _versions.map(lambda v: Pred("fwVersionHost", (v,))),
    _versions.map(lambda v: Pred("fwVersionStorage", (v,))),
)

_directive_pred = st.one_of(
    st.just(Pred("le", ("T", "expiry_ts"))),
    st.just(Pred("reuseMap", ("reuse_map",))),
    st.sampled_from(["log1", "log2"]).map(lambda l: Pred("logUpdate", (l,))),
)

_any_pred = st.one_of(_admission_pred, _directive_pred)


def _exprs(depth: int):
    if depth == 0:
        return _any_pred
    sub = _exprs(depth - 1)
    return st.one_of(
        _any_pred,
        st.tuples(sub, sub).map(lambda ab: And(*ab)),
        st.tuples(sub, sub).map(lambda ab: Or(*ab)),
    )


_expr = _exprs(3)

_ctx = st.builds(
    EvalContext,
    client_key=_keys,
    host=st.one_of(
        st.none(),
        st.builds(
            NodeConfig,
            node_id=st.just("h"),
            location=_locations,
            fw_version=st.sampled_from(["1.0", "5.4.3"]),
            platform=st.just("x86-sgx"),
        ),
    ),
    storage=st.one_of(
        st.none(),
        st.builds(
            NodeConfig,
            node_id=st.just("s"),
            location=_locations,
            fw_version=st.sampled_from(["1.0", "5.4.3"]),
            platform=st.just("arm-trustzone"),
        ),
    ),
    current_time=st.integers(0, 10_000),
    latest_fw=st.just({"host": "5.4.3", "storage": "5.4.3"}),
)


# -- properties ---------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(expr=_expr)
def test_to_text_parse_roundtrip(expr):
    assert parse_expression(expr.to_text()) == expr


@settings(max_examples=80, deadline=None)
@given(exprs=st.lists(_expr, min_size=1, max_size=4))
def test_document_roundtrip(exprs):
    perms = ["read", "write", "exec"]
    doc = PolicyDocument(
        tuple(Rule(perms[i % 3], e) for i, e in enumerate(exprs))
    )
    assert parse_document(doc.to_text()) == doc


@settings(max_examples=150, deadline=None)
@given(expr=_expr, ctx=_ctx)
def test_evaluation_total_and_deterministic(expr, ctx):
    """Evaluation never crashes on well-formed policies and is stable."""
    first = evaluate(expr, ctx)
    second = evaluate(expr, ctx)
    assert first == second
    assert isinstance(first.satisfied, bool)


@settings(max_examples=100, deadline=None)
@given(a=_expr, b=_expr, ctx=_ctx)
def test_and_or_laws(a, b, ctx):
    va, vb = evaluate(a, ctx), evaluate(b, ctx)
    v_and = evaluate(And(a, b), ctx)
    v_or = evaluate(Or(a, b), ctx)
    assert v_and.satisfied == (va.satisfied and vb.satisfied)
    assert v_or.satisfied == (va.satisfied or vb.satisfied)
    # OR short-circuits left: a satisfied => a's directives exactly.
    if va.satisfied:
        assert v_or == va


@settings(max_examples=100, deadline=None)
@given(expr=_expr, ctx=_ctx)
def test_directives_only_from_satisfied_paths(expr, ctx):
    verdict = evaluate(expr, ctx)
    if not verdict.satisfied:
        assert verdict.directives == ()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto import Rng


@pytest.fixture()
def rng() -> Rng:
    return Rng(1234)


@pytest.fixture(scope="session")
def tiny_deployment():
    """A small, attested TPC-H deployment shared by integration tests."""
    from repro.core import Deployment

    deployment = Deployment(scale_factor=0.001, seed=11)
    deployment.attest_all()
    return deployment


@pytest.fixture(scope="session")
def tpch_memory_db():
    """In-memory TPC-H database (tiny scale) for query-semantics tests."""
    from repro.sql import memory_database
    from repro.tpch import load_tpch

    db = memory_database()
    load_tpch(db, scale_factor=0.001, seed=11)
    return db

"""RSA signatures and the certificate-chain infrastructure."""

from __future__ import annotations

import pytest

from repro.crypto import (
    Rng,
    generate_keypair,
    issue_certificate,
    self_signed,
    verify_chain,
    verify_or_raise,
)
from repro.errors import CertificateError, CryptoError, SignatureError

_RNG = Rng("rsa-tests")
KEY = generate_keypair(_RNG)
OTHER = generate_keypair(_RNG.fork("other"))


class TestRSA:
    def test_sign_verify(self):
        sig = KEY.sign(b"message")
        assert KEY.public_key.verify(b"message", sig)

    def test_wrong_message_fails(self):
        sig = KEY.sign(b"message")
        assert not KEY.public_key.verify(b"other message", sig)

    def test_wrong_key_fails(self):
        sig = KEY.sign(b"message")
        assert not OTHER.public_key.verify(b"message", sig)

    def test_tampered_signature_fails(self):
        sig = bytearray(KEY.sign(b"message"))
        sig[0] ^= 1
        assert not KEY.public_key.verify(b"message", bytes(sig))

    def test_signature_deterministic(self):
        assert KEY.sign(b"x") == KEY.sign(b"x")

    def test_empty_message(self):
        sig = KEY.sign(b"")
        assert KEY.public_key.verify(b"", sig)

    def test_oversized_signature_rejected(self):
        bad = (KEY.n + 1).to_bytes((KEY.n.bit_length() + 15) // 8, "big")
        assert not KEY.public_key.verify(b"m", bad)

    def test_fingerprint_stable_and_distinct(self):
        assert KEY.public_key.fingerprint() == KEY.public_key.fingerprint()
        assert KEY.public_key.fingerprint() != OTHER.public_key.fingerprint()

    def test_verify_or_raise(self):
        sig = KEY.sign(b"ok")
        verify_or_raise(KEY.public_key, b"ok", sig, "test blob")
        with pytest.raises(SignatureError, match="test blob"):
            verify_or_raise(KEY.public_key, b"bad", sig, "test blob")

    def test_keygen_rejects_bad_sizes(self):
        with pytest.raises(CryptoError):
            generate_keypair(_RNG, bits=256)
        with pytest.raises(CryptoError):
            generate_keypair(_RNG, bits=1023)

    def test_distinct_keypairs(self):
        a = generate_keypair(Rng("a"))
        b = generate_keypair(Rng("b"))
        assert a.n != b.n


class TestCertificates:
    def _chain(self):
        root = generate_keypair(Rng("root"))
        mid = generate_keypair(Rng("mid"))
        leaf = generate_keypair(Rng("leaf"))
        root_cert = self_signed("root-ca", root, {"role": "root"})
        mid_cert = issue_certificate("root-ca", root, "mid-ca", mid.public_key)
        leaf_cert = issue_certificate(
            "mid-ca", mid, "device-7", leaf.public_key, {"location": "eu"}
        )
        return root, mid, leaf, [root_cert, mid_cert, leaf_cert]

    def test_valid_chain(self):
        root, _, _, chain = self._chain()
        leaf = verify_chain(chain, root.public_key)
        assert leaf.subject == "device-7"
        assert leaf.attributes["location"] == "eu"

    def test_single_self_signed(self):
        root = generate_keypair(Rng("solo"))
        cert = self_signed("solo", root)
        assert verify_chain([cert], root.public_key).subject == "solo"

    def test_empty_chain_rejected(self):
        root = generate_keypair(Rng("r"))
        with pytest.raises(CertificateError):
            verify_chain([], root.public_key)

    def test_wrong_trust_anchor_rejected(self):
        _, _, _, chain = self._chain()
        wrong = generate_keypair(Rng("wrong"))
        with pytest.raises(CertificateError):
            verify_chain(chain, wrong.public_key)

    def test_broken_issuer_linkage_rejected(self):
        root, _, leaf_key, chain = self._chain()
        # Leaf claims a different issuer.
        bad_leaf = issue_certificate(
            "unrelated-ca", generate_keypair(Rng("x")), "device-7", leaf_key.public_key
        )
        with pytest.raises(CertificateError, match="issuer"):
            verify_chain([chain[0], chain[1], bad_leaf], root.public_key)

    def test_forged_signature_rejected(self):
        root, _, _, chain = self._chain()
        forged = type(chain[2])(
            subject=chain[2].subject,
            issuer=chain[2].issuer,
            public_key=chain[2].public_key,
            attributes={"location": "us"},  # attribute swap invalidates sig
            signature=chain[2].signature,
        )
        with pytest.raises(CertificateError):
            verify_chain([chain[0], chain[1], forged], root.public_key)

    def test_attacker_cannot_extend_chain(self):
        root, _, _, chain = self._chain()
        mallory = generate_keypair(Rng("mallory"))
        fake = issue_certificate("device-7", mallory, "evil", mallory.public_key)
        # The leaf key did not sign this, so the chain must break.
        with pytest.raises(CertificateError):
            verify_chain(chain + [fake], root.public_key)

"""The complete 22-query TPC-H suite (including the paper's excluded six)."""

from __future__ import annotations

import pytest

from repro.tpch import (
    ALL_QUERIES,
    EVALUATED_NUMBERS,
    EXCLUDED_NUMBERS,
    FULL_SUITE,
)


class TestSuiteComposition:
    def test_full_suite_is_22(self):
        assert sorted(FULL_SUITE) == list(range(1, 23)) == sorted(
            set(EVALUATED_NUMBERS) | set(EXCLUDED_NUMBERS)
        )

    def test_excluded_set_matches_paper(self):
        # §6.1: 16 of 22 evaluated; 1, 11, 15, 17, 20, 22 are excluded
        # (Q1 is still used by the §6.3 microbenchmarks).
        assert EXCLUDED_NUMBERS == [1, 11, 15, 17, 20, 22]

    def test_no_overlap(self):
        assert not (set(EVALUATED_NUMBERS) & set(EXCLUDED_NUMBERS) - {1}) or True
        assert 1 not in EVALUATED_NUMBERS


@pytest.mark.parametrize("number", [11, 15, 17, 20, 22])
class TestExcludedQueries:
    def test_parses_and_roundtrips(self, number):
        from repro.sql.parser import parse

        first = parse(FULL_SUITE[number].sql)
        assert parse(first.to_sql()) == first

    def test_runs(self, tpch_memory_db, number):
        result = tpch_memory_db.execute(FULL_SUITE[number].sql)
        assert result.columns


class TestExcludedQuerySemantics:
    def test_q11_threshold(self, tpch_memory_db):
        """Every reported value exceeds the global-threshold subquery."""
        result = tpch_memory_db.execute(FULL_SUITE[11].sql)
        if not result.rows:
            pytest.skip("no GERMANY partsupp at this scale")
        threshold = tpch_memory_db.execute(
            "SELECT sum(ps_supplycost * ps_availqty) * 0.0001 "
            "FROM partsupp, supplier, nation "
            "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
            "AND n_name = 'GERMANY'"
        ).scalar()
        values = [row[1] for row in result.rows]
        assert all(v > threshold for v in values)
        assert values == sorted(values, reverse=True)

    def test_q15_is_the_max_revenue_supplier(self, tpch_memory_db):
        result = tpch_memory_db.execute(FULL_SUITE[15].sql)
        assert result.rows, "some supplier shipped in the window"
        top = result.rows[0][4]
        all_revenues = tpch_memory_db.execute(
            "SELECT max(total_revenue) FROM "
            "(SELECT l_suppkey AS sno, sum(l_extendedprice * (1 - l_discount)) AS total_revenue "
            "FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' "
            "AND l_shipdate < DATE '1996-04-01' GROUP BY l_suppkey) r"
        ).scalar()
        assert top == pytest.approx(all_revenues)

    def test_q17_single_value(self, tpch_memory_db):
        result = tpch_memory_db.execute(FULL_SUITE[17].sql)
        assert len(result.rows) == 1  # global aggregate

    def test_q22_country_codes(self, tpch_memory_db):
        result = tpch_memory_db.execute(FULL_SUITE[22].sql)
        for row in result.rows:
            assert row[0] in ("13", "31", "23", "29", "30", "18", "17")
            assert row[1] > 0

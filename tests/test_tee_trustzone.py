"""Simulated TrustZone: secure boot, RPMB, trusted OS, TAs, attestation."""

from __future__ import annotations

import pytest

from repro.crypto import Rng, verify_chain
from repro.errors import FreshnessError, RPMBError, SecureBootError, TEEError
from repro.tee.trustzone import (
    RPMB,
    AttestationTA,
    DeviceVendor,
    RPMBClient,
    SecureStorageTA,
    TrustedApplication,
    TrustedOS,
)


@pytest.fixture()
def vendor():
    return DeviceVendor("vendor-x", Rng(10))


@pytest.fixture()
def booted(vendor):
    device = vendor.provision_device("dev-1", location="eu-west")
    sw = vendor.sign_firmware("optee", b"secure world", "3.4")
    nw = vendor.sign_firmware("linux", b"normal world", "5.4.3")
    device.secure_boot(sw, nw)
    return device


class TestSecureBoot:
    def test_boot_success(self, booted):
        assert booted.booted
        assert booted.boot_state.normal_world_measurement.digest

    def test_unsigned_secure_world_refused(self, vendor):
        device = vendor.provision_device("dev-2", location="eu")
        from repro.tee.trustzone.device import FirmwareImage

        unsigned = FirmwareImage("optee", b"evil secure world", "3.4", b"")
        nw = vendor.sign_firmware("linux", b"nw", "5.4.3")
        with pytest.raises(SecureBootError):
            device.secure_boot(unsigned, nw)

    def test_tampered_secure_world_refused(self, vendor):
        device = vendor.provision_device("dev-3", location="eu")
        sw = vendor.sign_firmware("optee", b"secure world", "3.4")
        tampered = type(sw)(sw.name, b"secure world (patched)", sw.version, sw.signature)
        nw = vendor.sign_firmware("linux", b"nw", "5.4.3")
        with pytest.raises(SecureBootError):
            device.secure_boot(tampered, nw)

    def test_modified_normal_world_changes_measurement(self, vendor):
        d1 = vendor.provision_device("d-a", location="eu")
        d2 = vendor.provision_device("d-b", location="eu")
        sw = vendor.sign_firmware("optee", b"sw", "3.4")
        d1.secure_boot(sw, vendor.sign_firmware("linux", b"good image", "5.4.3"))
        d2.secure_boot(sw, vendor.sign_firmware("linux", b"evil image", "5.4.3"))
        assert (
            d1.boot_state.normal_world_measurement.digest
            != d2.boot_state.normal_world_measurement.digest
        )

    def test_boot_certificate_attributes(self, booted, vendor):
        leaf = verify_chain(booted.boot_state.certificate_chain, vendor.root_public_key)
        assert leaf.attributes["fw_version"] == "5.4.3"
        assert leaf.attributes["location"] == "eu-west"
        assert leaf.attributes["normal_world_hash"] == (
            booted.boot_state.normal_world_measurement.hex()
        )

    def test_attestation_requires_boot(self, vendor):
        device = vendor.provision_device("cold", location="eu")
        with pytest.raises(SecureBootError):
            device.sign_attestation(b"challenge")

    def test_key_derivation_purpose_bound(self, booted):
        assert booted.derive_key("a") != booted.derive_key("b")
        assert booted.derive_key("a") == booted.derive_key("a")

    def test_key_derivation_device_bound(self, vendor):
        d1 = vendor.provision_device("kd-1", location="eu")
        d2 = vendor.provision_device("kd-2", location="eu")
        assert d1.derive_key("same") != d2.derive_key("same")


class TestRPMB:
    def test_key_programs_once(self):
        rpmb = RPMB()
        rpmb.program_key(bytes(32))
        with pytest.raises(RPMBError):
            rpmb.program_key(bytes(32))

    def test_short_key_rejected(self):
        with pytest.raises(RPMBError):
            RPMB().program_key(b"short")

    def test_client_roundtrip(self):
        rpmb = RPMB()
        client = RPMBClient(rpmb, bytes(range(32)))
        client.write(0, b"hello rpmb")
        assert client.read(0, b"nonce0123456789a") == b"hello rpmb"

    def test_write_counter_increments(self):
        rpmb = RPMB()
        client = RPMBClient(rpmb, bytes(range(32)))
        assert rpmb.write_counter == 0
        client.write(0, b"a")
        client.write(1, b"b")
        assert rpmb.write_counter == 2

    def test_replayed_write_rejected(self):
        from repro.tee.trustzone.rpmb import _write_mac

        rpmb = RPMB()
        key = bytes(range(32))
        RPMBClient(rpmb, key).write(0, b"v1")
        # Replaying the same (counter=0) authenticated write must fail.
        mac = _write_mac(key, 0, b"v1", 0)
        with pytest.raises(RPMBError, match="stale"):
            rpmb.authenticated_write(0, b"v1", 0, mac)

    def test_forged_mac_rejected(self):
        rpmb = RPMB()
        rpmb.program_key(bytes(32))
        with pytest.raises(RPMBError):
            rpmb.authenticated_write(0, b"evil", 0, bytes(32))

    def test_unprogrammed_access_rejected(self):
        rpmb = RPMB()
        with pytest.raises(RPMBError):
            rpmb.authenticated_read(0, bytes(16))

    def test_read_response_mac_binds_nonce(self):
        rpmb = RPMB()
        client = RPMBClient(rpmb, bytes(range(32)))
        client.write(0, b"data")
        response = rpmb.authenticated_read(0, b"nonce-A-........")
        # Verifying against a different key must fail.
        with pytest.raises(RPMBError):
            response.verify(bytes(32))

    def test_address_bounds(self):
        rpmb = RPMB(num_blocks=4)
        rpmb.program_key(bytes(32))
        with pytest.raises(RPMBError):
            rpmb.authenticated_read(4, bytes(16))

    def test_oversized_block_rejected(self):
        rpmb = RPMB()
        client = RPMBClient(rpmb, bytes(range(32)))
        with pytest.raises(RPMBError):
            client.write(0, bytes(300))


class TestTrustedOS:
    def test_requires_boot(self, vendor):
        cold = vendor.provision_device("cold-2", location="eu")
        with pytest.raises(SecureBootError):
            TrustedOS(cold)

    def test_ta_dispatch(self, booted):
        tos = TrustedOS(booted)
        tos.load_ta(AttestationTA(booted))
        quote, chain = tos.invoke("attestation", "attest", b"challenge-1")
        assert quote.challenge == b"challenge-1"
        assert len(chain) == 3

    def test_smc_transitions_counted(self, booted):
        tos = TrustedOS(booted)
        tos.load_ta(AttestationTA(booted))
        tos.invoke("attestation", "attest", b"c")
        assert tos.meter.enclave_transitions == 2

    def test_unknown_ta_rejected(self, booted):
        tos = TrustedOS(booted)
        with pytest.raises(TEEError):
            tos.invoke("ghost", "cmd")

    def test_unknown_command_rejected(self, booted):
        tos = TrustedOS(booted)
        tos.load_ta(AttestationTA(booted))
        with pytest.raises(TEEError):
            tos.invoke("attestation", "ghost-cmd")

    def test_duplicate_ta_rejected(self, booted):
        tos = TrustedOS(booted)
        tos.load_ta(AttestationTA(booted))
        with pytest.raises(TEEError):
            tos.load_ta(AttestationTA(booted))


class TestSecureStorageTA:
    def _tos(self, device):
        tos = TrustedOS(device)
        tos.load_ta(SecureStorageTA(device))
        return tos

    def test_master_key_stable(self, booted):
        tos = self._tos(booted)
        k1 = tos.invoke("secure-storage", "get_master_key")
        k2 = tos.invoke("secure-storage", "get_master_key")
        assert k1 == k2
        assert len(k1) == 32

    def test_anchor_and_verify(self, booted):
        tos = self._tos(booted)
        tos.invoke("secure-storage", "anchor_root", b"root-1")
        tos.invoke("secure-storage", "verify_root", b"root-1")

    def test_rollback_detected(self, booted):
        tos = self._tos(booted)
        tos.invoke("secure-storage", "anchor_root", b"root-1")
        tos.invoke("secure-storage", "anchor_root", b"root-2")
        with pytest.raises(FreshnessError):
            tos.invoke("secure-storage", "verify_root", b"root-1")

    def test_epoch_monotonic(self, booted):
        tos = self._tos(booted)
        assert tos.invoke("secure-storage", "current_epoch") == 0
        tos.invoke("secure-storage", "anchor_root", b"r1")
        assert tos.invoke("secure-storage", "current_epoch") == 1
        tos.invoke("secure-storage", "anchor_root", b"r2")
        assert tos.invoke("secure-storage", "current_epoch") == 2

    def test_unanchored_store_accepts_first_root(self, booted):
        tos = self._tos(booted)
        tos.invoke("secure-storage", "verify_root", b"anything")  # no anchor yet


class TestAttestationProtocol:
    def test_quote_verifies_against_chain(self, booted, vendor):
        tos = TrustedOS(booted)
        tos.load_ta(AttestationTA(booted))
        quote, chain = tos.invoke("attestation", "attest", b"challenge-xyz")
        leaf = verify_chain(chain, vendor.root_public_key)
        assert leaf.public_key.verify(quote.signed_payload(), quote.signature)

    def test_impersonation_fails(self, vendor):
        """A device from another vendor cannot impersonate this fleet."""
        other_vendor = DeviceVendor("mallory-inc", Rng(77))
        rogue = other_vendor.provision_device("dev-1", location="eu-west")
        sw = other_vendor.sign_firmware("optee", b"secure world", "3.4")
        nw = other_vendor.sign_firmware("linux", b"normal world", "5.4.3")
        rogue.secure_boot(sw, nw)
        quote = rogue.sign_attestation(b"c")
        chain = rogue.boot_state.certificate_chain
        from repro.errors import CertificateError

        with pytest.raises(CertificateError):
            verify_chain(chain, vendor.root_public_key)
        assert quote.platform_id == "dev-1"  # same id, but the chain fails


class TestCustomTA:
    def test_command_registration(self, booted):
        class EchoTA(TrustedApplication):
            name = "echo"

            def _register_commands(self):
                self.command("echo", lambda x: x)

        tos = TrustedOS(booted)
        tos.load_ta(EchoTA(booted))
        assert tos.invoke("echo", "echo", "ping") == "ping"
        assert tos.has_ta("echo")
        assert not tos.has_ta("missing")

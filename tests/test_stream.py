"""Streaming ship pipeline: RecordBatch format, batching, overlap model,
and the pipelined deployment path (vs. the byte-identical serial escape
hatch)."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.core import Deployment, RunConfig, SERIAL_RUN_CONFIG
from repro.errors import IronSafeError, StorageError, StreamError
from repro.sql.records import (
    MAX_BATCH_ROWS,
    TAG_MIXED,
    decode_batch,
    encode_batch,
    encode_row,
)
from repro.stream import (
    BatchAssembler,
    BatchTiming,
    apportion_ns,
    overlap_saved_ns,
    pack_frame,
    pipelined_ns,
    serial_stage_ns,
    unpack_frame,
)

SQL = (
    "SELECT l_orderkey, l_partkey, l_quantity, l_extendedprice, l_shipdate "
    "FROM lineitem WHERE l_quantity > 10"
)


# ---------------------------------------------------------------------------
# RecordBatch wire format
# ---------------------------------------------------------------------------


class TestRecordBatchFormat:
    def test_round_trip_every_tag(self):
        rows = [
            (None, 1, 1.5, "text", datetime.date(2022, 6, 13)),
            (None, -(2**62), -0.0, "", datetime.date(1, 1, 1)),
            (None, 0, float("inf"), "naïve — ünïcode", datetime.date(9999, 12, 31)),
        ]
        assert decode_batch(encode_batch(rows)) == rows

    def test_bool_round_trips_as_int_like_encode_row(self):
        # The per-row format stores bools as INT; the batch format must
        # agree so the two ship paths deliver identical tables.
        rows = [(True, False), (False, True)]
        assert decode_batch(encode_batch(rows)) == [(1, 0), (0, 1)]

    def test_empty_batch_and_single_row(self):
        assert decode_batch(encode_batch([])) == []
        assert decode_batch(encode_batch([(42,)])) == [(42,)]

    def test_all_null_column(self):
        rows = [(None, 1), (None, 2)]
        assert decode_batch(encode_batch(rows)) == rows

    def test_mixed_column_falls_back_to_inline_tags(self):
        rows = [(1, "a"), (2.5, "b"), (None, "c"), ("x", "d")]
        payload = encode_batch(rows)
        ncols = payload[2]
        tags = payload[3 : 3 + ncols]
        assert tags[0] == TAG_MIXED
        assert decode_batch(payload) == rows

    def test_text_64k_boundary(self):
        at_limit = "x" * 0xFFFF
        assert decode_batch(encode_batch([(at_limit,)])) == [(at_limit,)]
        with pytest.raises(StorageError):
            encode_batch([("x" * (0xFFFF + 1),)])

    def test_row_count_limit(self):
        with pytest.raises(StorageError):
            encode_batch([(1,)] * (MAX_BATCH_ROWS + 1))

    def test_ragged_rows_rejected(self):
        with pytest.raises(StorageError):
            encode_batch([(1, 2), (3,)])

    def test_property_style_random_rows(self):
        """Seeded random batches over all value kinds round-trip exactly."""
        rng = random.Random(20220613)

        def value(kind):
            return {
                "null": lambda: None,
                "int": lambda: rng.randint(-(2**60), 2**60),
                "real": lambda: rng.uniform(-1e12, 1e12),
                "text": lambda: "".join(
                    chr(rng.randint(32, 0x10FF)) for _ in range(rng.randint(0, 40))
                ),
                "date": lambda: datetime.date.fromordinal(rng.randint(1, 3_650_000)),
            }[kind]()

        kinds = ["null", "int", "real", "text", "date"]
        for _ in range(25):
            ncols = rng.randint(1, 8)
            # Uniform columns sometimes, mixed columns sometimes.
            column_kinds = [
                kinds if rng.random() < 0.3 else [rng.choice(kinds[1:]), "null"]
                for _ in range(ncols)
            ]
            rows = [
                tuple(value(rng.choice(column_kinds[c])) for c in range(ncols))
                for _ in range(rng.randint(0, 50))
            ]
            assert decode_batch(encode_batch(rows)) == rows

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p[:-1],  # truncated value area
            lambda p: p + b"\x00",  # trailing bytes
            lambda p: p[:3] + bytes([250]) + p[4:],  # unknown column tag
            lambda p: p[:1],  # truncated header
        ],
    )
    def test_corruption_detected(self, mutate):
        payload = encode_batch([(1, "abc", 2.0), (2, "defg", 3.0)])
        with pytest.raises(StorageError):
            decode_batch(mutate(payload))

    def test_null_in_declared_column_via_bitmap_only(self):
        # A non-null cell in an all-NULL column cannot be expressed by a
        # well-formed encoder; flipping the bitmap bit must be caught.
        payload = bytearray(encode_batch([(None, 7)]))
        bitmap_offset = 2 + 1 + 2  # header + ncols tags
        payload[bitmap_offset] &= ~1  # claim column 0 is non-null
        with pytest.raises(StorageError):
            decode_batch(bytes(payload))


# ---------------------------------------------------------------------------
# Batch assembly
# ---------------------------------------------------------------------------


class TestBatchAssembler:
    def test_bounded_batches_and_adaptive_target(self):
        assembler = BatchAssembler(target_bytes=4096, initial_rows=8)
        rows = [(i, "v" * 40) for i in range(2000)]
        batches = list(assembler.batches(iter(rows)))
        assert [r for b in batches for r in b.rows] == rows
        # After feedback the target settles near target_bytes / row width.
        assert assembler.row_target > 8
        for batch in batches[1:-1]:
            assert batch.nbytes <= 4096 * 2
        assert all(b.payload == encode_batch(list(b.rows)) for b in batches)

    def test_empty_iterator_yields_nothing(self):
        assert list(BatchAssembler().batches(iter([]))) == []

    def test_invalid_target_rejected(self):
        with pytest.raises(StreamError):
            BatchAssembler(target_bytes=0)


# ---------------------------------------------------------------------------
# Compression framing
# ---------------------------------------------------------------------------


class TestCompressFraming:
    def test_raw_round_trip(self):
        frame, saved = pack_frame(b"hello", 0)
        assert saved == 0
        assert unpack_frame(frame) == (b"hello", False)

    def test_zlib_round_trip_and_savings(self):
        payload = b"abc" * 5000
        frame, saved = pack_frame(payload, 6)
        assert saved == len(payload) + 1 - len(frame)
        assert saved > 0
        assert unpack_frame(frame) == (payload, True)

    def test_incompressible_ships_raw(self):
        payload = random.Random(7).randbytes(256)
        frame, saved = pack_frame(payload, 9)
        assert saved == 0
        assert unpack_frame(frame) == (payload, False)

    def test_bad_frames_rejected(self):
        with pytest.raises(StreamError):
            unpack_frame(b"")
        with pytest.raises(StreamError):
            unpack_frame(bytes([99]) + b"x")
        with pytest.raises(StreamError):
            unpack_frame(bytes([1]) + b"not-zlib")
        with pytest.raises(StreamError):
            pack_frame(b"x", 10)


# ---------------------------------------------------------------------------
# Pipeline time model
# ---------------------------------------------------------------------------


class TestPipelineModel:
    def test_single_batch_is_serial(self):
        t = [BatchTiming(10.0, 5.0, 3.0)]
        assert pipelined_ns(t) == serial_stage_ns(t) == 18.0

    def test_bottleneck_stage_dominates(self):
        timings = [BatchTiming(10.0, 1.0, 2.0) for _ in range(100)]
        makespan = pipelined_ns(timings)
        assert makespan < serial_stage_ns(timings)
        # Steady state: scan is the bottleneck; tail adds one ship+ingest.
        assert makespan == pytest.approx(100 * 10.0 + 1.0 + 2.0)
        assert overlap_saved_ns(timings) == pytest.approx(99 * 3.0)

    def test_never_faster_than_any_stage_sum(self):
        rng = random.Random(99)
        timings = [
            BatchTiming(rng.uniform(0, 9), rng.uniform(0, 9), rng.uniform(0, 9))
            for _ in range(50)
        ]
        makespan = pipelined_ns(timings)
        for stage in ("scan_ns", "ship_ns", "ingest_ns"):
            assert makespan >= sum(getattr(t, stage) for t in timings)
        assert makespan <= serial_stage_ns(timings)

    def test_apportion_conserves_total(self):
        shares = apportion_ns(100.0, [1, 2, 7])
        assert sum(shares) == pytest.approx(100.0)
        assert shares == [10.0, 20.0, 70.0]
        assert apportion_ns(90.0, [0, 0, 0]) == [30.0, 30.0, 30.0]
        assert apportion_ns(5.0, []) == []


# ---------------------------------------------------------------------------
# Streaming scans keep the storage working set bounded
# ---------------------------------------------------------------------------


class TestStreamScan:
    def test_stream_matches_materialized_and_bounds_memory(self, tiny_deployment):
        engine = tiny_deployment.storage_engine
        meter = engine.fresh_meter()
        columns, batches = engine.stream_sql(
            "SELECT l_orderkey, l_comment FROM lineitem", batch_bytes=2048
        )
        streamed = [row for batch in batches for row in batch.rows]
        streamed_peak = meter.peak_memory_bytes

        meter = engine.fresh_meter()
        result = engine.db.execute("SELECT l_orderkey, l_comment FROM lineitem")
        assert streamed == result.rows
        materialized_bytes = sum(len(encode_row(r)) for r in result.rows)
        assert 0 < streamed_peak < materialized_bytes


# ---------------------------------------------------------------------------
# The pipelined deployment path
# ---------------------------------------------------------------------------


class TestPipelinedDeployment:
    def test_run_config_validation(self):
        with pytest.raises(IronSafeError):
            RunConfig(batch_bytes=0)
        with pytest.raises(IronSafeError):
            RunConfig(compress=True, compress_level=0)
        with pytest.raises(IronSafeError):
            RunConfig(pipeline=False, compress=True)
        assert SERIAL_RUN_CONFIG.pipeline is False

    @pytest.mark.parametrize("config", ["scs", "vcs"])
    def test_pipeline_returns_same_rows(self, tiny_deployment, config):
        serial = tiny_deployment.run_query(SQL, config)
        pipe = tiny_deployment.run_query(SQL, config, run_config=RunConfig())
        assert serial.columns == pipe.columns
        assert sorted(serial.rows) == sorted(pipe.rows)
        assert pipe.batches_shipped > 0
        assert serial.batches_shipped == 0

    def test_pipeline_never_slower_and_bounds_storage_memory(self, tiny_deployment):
        serial = tiny_deployment.run_query(SQL, "scs")
        pipe = tiny_deployment.run_query(
            SQL, "scs", run_config=RunConfig(batch_bytes=8 * 1024)
        )
        assert pipe.breakdown.total_ns <= serial.breakdown.total_ns
        assert (
            pipe.storage_meter.peak_memory_bytes
            < serial.storage_meter.peak_memory_bytes
        )

    def test_compression_saves_wire_bytes_and_meters_work(self, tiny_deployment):
        plain = tiny_deployment.run_query(SQL, "scs", run_config=RunConfig())
        comp = tiny_deployment.run_query(
            SQL, "scs", run_config=RunConfig(compress=True)
        )
        assert sorted(comp.rows) == sorted(plain.rows)
        assert comp.channel_bytes_saved > 0
        assert comp.bytes_shipped < plain.bytes_shipped
        assert comp.storage_meter.get("batch_bytes_compressed") > 0
        assert comp.host_meter.get("batch_bytes_decompressed") > 0
        # Compression trades simulated CPU for bytes moved: the crypto +
        # compression category grows even as wire bytes shrink.
        assert plain.channel_bytes_saved == 0

    def test_serial_escape_hatch_is_byte_identical(self):
        """pipeline=False must match a default deployment exactly:
        rows, every meter counter, and simulated nanoseconds."""
        import dataclasses

        a = Deployment(scale_factor=0.001, seed=11)
        b = Deployment(scale_factor=0.001, seed=11, run_config=SERIAL_RUN_CONFIG)
        ra = a.run_query(SQL, "scs")
        rb = b.run_query(SQL, "scs", run_config=RunConfig(pipeline=False))
        assert ra.rows == rb.rows
        assert ra.breakdown.total_ns == rb.breakdown.total_ns
        assert ra.breakdown.by_category == rb.breakdown.by_category
        for attr in ("storage_meter", "host_meter"):
            ma, mb = getattr(ra, attr), getattr(rb, attr)
            for f in dataclasses.fields(ma):
                assert getattr(ma, f.name) == getattr(mb, f.name), f.name

    def test_tamper_on_channel_detected_mid_stream(self, tiny_deployment):
        """Flipping a bit in a shipped batch record trips the channel MAC."""
        from repro.errors import ChannelError

        link = tiny_deployment.link
        original_send = link.send
        state = {"count": 0}

        def corrupting_send(src, dst, record, **kw):
            state["count"] += 1
            if state["count"] == 2 and src == "storage":
                record = record[:-1] + bytes([record[-1] ^ 0x01])
            return original_send(src, dst, record, **kw)

        link.send = corrupting_send
        try:
            with pytest.raises(ChannelError):
                tiny_deployment.run_query(SQL, "scs", run_config=RunConfig())
        finally:
            link.send = original_send
            tiny_deployment.host_engine.end_session()

    @pytest.mark.parametrize("number", [13, 21])
    def test_manual_partition_streams(self, tiny_deployment, number):
        from repro.core.manual_partitions import MANUAL_PARTITIONS
        from repro.tpch import ALL_QUERIES

        manual = MANUAL_PARTITIONS[number]
        serial = tiny_deployment.run_query(
            ALL_QUERIES[number].sql, "scs", manual_partition=manual
        )
        pipe = tiny_deployment.run_query(
            ALL_QUERIES[number].sql, "scs", manual_partition=manual,
            run_config=RunConfig(),
        )
        assert sorted(serial.rows) == sorted(pipe.rows)
        assert pipe.batches_shipped > 0

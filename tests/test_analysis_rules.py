"""Unit tests for every repro.analysis rule, plus suppressions/baseline.

Each rule gets at least one fixture snippet that must trigger it and one
that must not, so rule regressions are caught at the rule level rather
than by the whole-tree self-check.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import Analyzer, Baseline, all_rules, get_rule
from repro.analysis.importgraph import ImportGraph, module_name_for
from repro.analysis.registry import select_rules
from repro.analysis.suppressions import suppressed_rules


def run_source(tmp_path, source, select=None, name="snippet.py"):
    """Analyze one loose file containing *source* with the given rules."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    analyzer = Analyzer(rules=select_rules(select) if select else None, root=tmp_path)
    return analyzer.run([path])


def run_tree(tmp_path, files, select=None):
    """Analyze a fake package tree: {relative path: source}."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != tmp_path:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    analyzer = Analyzer(rules=select_rules(select) if select else None, root=tmp_path)
    return analyzer.run([tmp_path])


def rule_ids(result):
    return [f.rule_id for f in result.findings]


class TestSEC001ConstantTime:
    def test_digest_equality_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def verify(mac, expected_mac):
                if mac == expected_mac:
                    return True
            """,
            select=["SEC001"],
        )
        assert rule_ids(result) == ["SEC001"]

    def test_attribute_and_notequal_trigger(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def check(entry, prev):
                return entry.prev_digest != prev
            """,
            select=["SEC001"],
        )
        assert rule_ids(result) == ["SEC001"]

    def test_constant_time_eq_is_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            from repro.crypto import constant_time_eq

            def verify(mac, expected_mac):
                return constant_time_eq(mac, expected_mac)
            """,
            select=["SEC001"],
        )
        assert result.clean

    def test_innocent_names_are_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def route(tag, key, count):
                return tag == 3 or key == "users" or count != 0
            """,
            select=["SEC001"],
        )
        assert result.clean


class TestSEC002Randomness:
    def test_import_random_triggers(self, tmp_path):
        result = run_source(tmp_path, "import random\n", select=["SEC002"])
        assert rule_ids(result) == ["SEC002"]

    def test_from_random_triggers(self, tmp_path):
        result = run_source(
            tmp_path, "from random import randint\n", select=["SEC002"]
        )
        assert rule_ids(result) == ["SEC002"]

    def test_os_urandom_call_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            import os

            def nonce():
                return os.urandom(16)
            """,
            select=["SEC002"],
        )
        assert rule_ids(result) == ["SEC002"]

    def test_wallclock_seed_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            import time
            from repro.crypto import Rng

            def make_rng():
                return Rng(time.time())
            """,
            select=["SEC002"],
        )
        assert rule_ids(result) == ["SEC002"]

    def test_drbg_usage_is_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            from repro.crypto import Rng

            def make_rng(seed):
                return Rng(seed).bytes(16)
            """,
            select=["SEC002"],
        )
        assert result.clean


class TestSEC003DangerousConstructs:
    def test_import_pickle_triggers(self, tmp_path):
        result = run_source(tmp_path, "import pickle\n", select=["SEC003"])
        assert rule_ids(result) == ["SEC003"]

    def test_eval_and_exec_trigger(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def run(expr):
                exec(expr)
                return eval(expr)
            """,
            select=["SEC003"],
        )
        assert rule_ids(result) == ["SEC003", "SEC003"]

    def test_method_named_eval_is_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def interpret(node, ctx):
                return node.eval(ctx)
            """,
            select=["SEC003"],
        )
        assert result.clean


class TestSEC004BroadExcept:
    def test_except_exception_pass_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def read(pager, page):
                try:
                    return pager.read(page)
                except Exception:
                    pass
            """,
            select=["SEC004"],
        )
        assert rule_ids(result) == ["SEC004"]

    def test_bare_except_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def read(pager, page):
                try:
                    return pager.read(page)
                except:
                    return None
            """,
            select=["SEC004"],
        )
        assert rule_ids(result) == ["SEC004"]

    def test_reraise_is_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def read(pager, page):
                try:
                    return pager.read(page)
                except Exception:
                    pager.close()
                    raise
            """,
            select=["SEC004"],
        )
        assert result.clean

    def test_narrow_except_is_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def read(mapping, name):
                try:
                    return mapping[name]
                except KeyError:
                    return None
            """,
            select=["SEC004"],
        )
        assert result.clean


class TestSEC005HardcodedSecret:
    def test_bytes_key_assignment_triggers(self, tmp_path):
        result = run_source(
            tmp_path, 'MASTER_KEY = b"0123456789abcdef"\n', select=["SEC005"]
        )
        assert rule_ids(result) == ["SEC005"]

    def test_tokenish_string_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            'api_token = "ZGVhZGJlZWY0Y2FmZTEyMw=="\n',
            select=["SEC005"],
        )
        assert rule_ids(result) == ["SEC005"]

    def test_keyword_argument_triggers(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            def setup(cipher):
                return cipher(key=b"hunter2hunter2hunter2")
            """,
            select=["SEC005"],
        )
        assert rule_ids(result) == ["SEC005"]

    def test_derived_key_and_plain_names_are_clean(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            CATALOG_META_KEY = "sql_catalog"

            def setup(hkdf, master):
                page_key = hkdf(master, b"page")
                return page_key
            """,
            select=["SEC005"],
        )
        assert result.clean


class TestARCH001Layering:
    def test_crypto_importing_monitor_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/crypto/bad.py": "from ..monitor import TrustedMonitor\n"},
            select=["ARCH001"],
        )
        assert rule_ids(result) == ["ARCH001"]
        assert "may not import 'repro.monitor'" in result.findings[0].message

    def test_sql_importing_tee_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/sql/bad.py": "import repro.tee.sgx\n"},
            select=["ARCH001"],
        )
        assert rule_ids(result) == ["ARCH001"]

    def test_allowed_edges_are_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/storage/ok.py": "from ..crypto import hmac_sha256\n",
                "repro/core/ok.py": "from ..monitor import TrustedMonitor\n",
            },
            select=["ARCH001"],
        )
        assert result.clean

    def test_loose_script_is_exempt(self, tmp_path):
        result = run_source(
            tmp_path, "from repro.monitor import TrustedMonitor\n", select=["ARCH001"]
        )
        assert result.clean


class TestARCH002EnclaveBoundary:
    def test_untrusted_import_of_securepager_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/gdpr/bad.py": "from ..storage import SecurePager\n"},
            select=["ARCH002"],
        )
        assert rule_ids(result) == ["ARCH002"]

    def test_untrusted_name_use_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/sql/bad.py": """
                def attach(device):
                    return device.enclave.Enclave
                """
            },
            select=["ARCH002"],
        )
        assert rule_ids(result) == ["ARCH002"]

    def test_trusted_layer_is_allowed(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/core/ok.py": "from ..storage import SecurePager\n",
                "repro/gdpr/ok.py": "from ..storage import BlockDevice, Pager\n",
            },
            select=["ARCH002"],
        )
        assert result.clean


class TestARCH003AuditedMutation:
    def test_unaudited_mutation_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/monitor/bad.py": """
                class ShadowMonitor:
                    def register_node(self, node):
                        self._nodes[node.id] = node
                """
            },
            select=["ARCH003"],
        )
        assert rule_ids(result) == ["ARCH003"]

    def test_audited_mutation_is_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/monitor/ok.py": """
                class GoodMonitor:
                    def register_node(self, node):
                        self._nodes[node.id] = node
                        self._audit("register_node", node.id)

                    def host_node(self, node_id):
                        return self._nodes[node_id]
                """
            },
            select=["ARCH003"],
        )
        assert result.clean

    def test_non_monitor_class_is_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/monitor/keys.py": """
                class KeyManager:
                    def revoke(self, session_id):
                        del self._sessions[session_id]
                """
            },
            select=["ARCH003"],
        )
        assert result.clean


class TestARCH004TelemetryIsolation:
    def test_telemetry_importing_crypto_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/telemetry/bad.py": "from ..crypto import hmac_sha256\n"},
            select=["ARCH004"],
        )
        assert rule_ids(result) == ["ARCH004"]
        assert "may not import 'repro.crypto'" in result.findings[0].message

    def test_telemetry_importing_tee_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/telemetry/bad.py": "import repro.tee.sgx\n"},
            select=["ARCH004"],
        )
        assert rule_ids(result) == ["ARCH004"]

    def test_telemetry_touching_key_material_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/telemetry/bad.py": """
                def leak(span, pager):
                    span.attributes["key"] = pager._enc_key
                """
            },
            select=["ARCH004"],
        )
        assert rule_ids(result) == ["ARCH004"]
        assert "_enc_key" in result.findings[0].message

    def test_digest_and_count_attributes_are_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/telemetry/ok.py": """
                from ..sim import SimClock

                def annotate(span, entry):
                    span.audit.append(
                        {"sequence": entry.sequence, "digest": entry.digest().hex()}
                    )
                """
            },
            select=["ARCH004"],
        )
        assert result.clean

    def test_other_packages_are_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/storage/ok.py": """
                from ..crypto import hkdf

                def keys(master_key):
                    return hkdf(master_key, b"page-encryption", 32)
                """
            },
            select=["ARCH004"],
        )
        assert result.clean


class TestARCH005StreamSurface:
    def test_stream_importing_planner_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/stream/bad.py": "from ..sql.planner import Planner\n"},
            select=["ARCH005"],
        )
        assert rule_ids(result) == ["ARCH005"]
        assert "repro.sql.records" in result.findings[0].message

    def test_stream_importing_sql_package_root_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/stream/bad.py": "from ..sql import Database\n"},
            select=["ARCH005"],
        )
        assert rule_ids(result) == ["ARCH005"]

    def test_records_import_is_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/stream/ok.py": """
                from ..sql.records import encode_batch

                def size(rows):
                    return len(encode_batch(rows))
                """
            },
            select=["ARCH005"],
        )
        assert result.clean

    def test_other_packages_are_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/core/ok.py": "from ..sql.planner import Planner\n"},
            select=["ARCH005"],
        )
        assert result.clean


class TestARCH006StatsSurface:
    def test_stats_importing_stores_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/stats/bad.py": "from ..sql.stores import PagedStore\n"},
            select=["ARCH006"],
        )
        assert rule_ids(result) == ["ARCH006"]
        assert "repro.sql.values" in result.findings[0].message

    def test_stats_importing_sql_package_root_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/stats/bad.py": "from ..sql import Database\n"},
            select=["ARCH006"],
        )
        assert rule_ids(result) == ["ARCH006"]

    def test_values_import_is_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/stats/ok.py": """
                from ..sql.values import sql_le

                def ordered(lo, hi):
                    return sql_le(lo, hi)
                """
            },
            select=["ARCH006"],
        )
        assert result.clean

    def test_other_packages_are_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/core/ok.py": "from ..sql.stores import PagedStore\n"},
            select=["ARCH006"],
        )
        assert result.clean


class TestARCH009VectorConfinement:
    def test_vector_importing_stores_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/sql/vector/bad.py": "from ..stores import PagedStore\n"},
            select=["ARCH009"],
        )
        assert rule_ids(result) == ["ARCH009"]
        assert "repro.sql.records" in result.findings[0].message

    def test_vector_importing_operators_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/sql/vector/__init__.py": "from ..operators import Operator\n"},
            select=["ARCH009"],
        )
        assert rule_ids(result) == ["ARCH009"]

    def test_allowed_surface_is_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/sql/vector/__init__.py": """
                from ...errors import ExecutionError
                from ...sim import Meter
                from ..records import encode_batch
                from ..values import is_true
                """
            },
            select=["ARCH009"],
        )
        assert result.clean

    def test_other_sql_modules_are_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/sql/vexec.py": "from .operators import Operator\n"},
            select=["ARCH009"],
        )
        assert result.clean


class TestARCH010ShardConfinement:
    def test_shard_importing_planner_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/shard/bad.py": "from ..sql.planner import Planner\n"},
            select=["ARCH010"],
        )
        assert rule_ids(result) == ["ARCH010"]
        assert "repro.sql.records" in result.findings[0].message

    def test_shard_importing_sql_package_root_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/shard/bad.py": "from ..sql import Database\n"},
            select=["ARCH010"],
        )
        assert rule_ids(result) == ["ARCH010"]

    def test_wire_format_imports_are_clean(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/shard/ok.py": """
                from ..sql.records import encode_row
                from ..sql.values import sql_le

                def size(row):
                    return len(encode_row(row))
                """
            },
            select=["ARCH010"],
        )
        assert result.clean

    def test_key_material_reference_triggers(self, tmp_path):
        result = run_tree(
            tmp_path,
            {
                "repro/shard/bad.py": """
                def steal(engine):
                    return engine.pager.master_key
                """
            },
            select=["ARCH010"],
        )
        assert rule_ids(result) == ["ARCH010"]
        assert "key material" in result.findings[0].message

    def test_other_packages_are_exempt(self, tmp_path):
        result = run_tree(
            tmp_path,
            {"repro/core/ok.py": "from ..sql.planner import Planner\n"},
            select=["ARCH010"],
        )
        assert result.clean


class TestSuppressions:
    def test_disable_comment_suppresses(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            import pickle  # lint: disable=SEC003
            """,
            select=["SEC003"],
        )
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == ["SEC003"]

    def test_disable_all_suppresses_everything(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            import pickle  # lint: disable=all
            """,
            select=["SEC003"],
        )
        assert result.clean and len(result.suppressed) == 1

    def test_unrelated_disable_does_not_suppress(self, tmp_path):
        result = run_source(
            tmp_path,
            """
            import pickle  # lint: disable=SEC001
            """,
            select=["SEC003"],
        )
        assert rule_ids(result) == ["SEC003"]

    def test_comment_parser(self):
        assert suppressed_rules("x = 1  # lint: disable=SEC001, ARCH002") == {
            "SEC001",
            "ARCH002",
        }
        assert suppressed_rules("x = 1  # just a comment") == frozenset()


class TestBaseline:
    def test_baseline_grandfathers_known_findings(self, tmp_path):
        source = "import pickle\n"
        first = run_source(tmp_path, source, select=["SEC003"])
        assert rule_ids(first) == ["SEC003"]

        baseline = Baseline.from_findings(first.findings)
        baseline_path = tmp_path / "baseline.json"
        baseline.dump(baseline_path)

        analyzer = Analyzer(rules=select_rules(["SEC003"]), root=tmp_path)
        second = analyzer.run(
            [tmp_path / "snippet.py"], baseline=Baseline.load(baseline_path)
        )
        assert second.clean
        assert [f.rule_id for f in second.grandfathered] == ["SEC003"]

    def test_new_findings_still_reported(self, tmp_path):
        first = run_source(tmp_path, "import pickle\n", select=["SEC003"])
        baseline = Baseline.from_findings(first.findings)

        (tmp_path / "snippet.py").write_text("import pickle\neval('1')\n")
        analyzer = Analyzer(rules=select_rules(["SEC003"]), root=tmp_path)
        second = analyzer.run([tmp_path / "snippet.py"], baseline=baseline)
        assert len(second.grandfathered) == 1
        assert len(second.findings) == 1
        assert "eval" in second.findings[0].message

    def test_baseline_survives_line_drift(self, tmp_path):
        first = run_source(tmp_path, "import pickle\n", select=["SEC003"])
        baseline = Baseline.from_findings(first.findings)

        (tmp_path / "snippet.py").write_text("\n\n\nimport pickle\n")
        analyzer = Analyzer(rules=select_rules(["SEC003"]), root=tmp_path)
        second = analyzer.run([tmp_path / "snippet.py"], baseline=baseline)
        assert second.clean and len(second.grandfathered) == 1

    def test_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(bad)


class TestFramework:
    def test_all_builtin_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "ARCH001",
            "ARCH002",
            "ARCH003",
            "ARCH004",
            "ARCH005",
            "ARCH006",
            "ARCH007",
            "ARCH008",
            "ARCH009",
            "ARCH010",
            "FLOW001",
            "SEC001",
            "SEC002",
            "SEC003",
            "SEC004",
            "SEC005",
            "TAINT001",
            "TAINT002",
            "TAINT003",
        ]

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            get_rule("SEC999")

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        result = run_source(tmp_path, "def broken(:\n")
        assert rule_ids(result) == ["PARSE"]

    def test_module_name_resolution(self, tmp_path):
        (tmp_path / "repro" / "storage").mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "storage" / "__init__.py").write_text("")
        target = tmp_path / "repro" / "storage" / "merkle.py"
        target.write_text("")
        assert module_name_for(target) == "repro.storage.merkle"
        assert (
            module_name_for(tmp_path / "repro" / "storage" / "__init__.py")
            == "repro.storage"
        )

    def test_relative_import_resolution(self):
        import ast as ast_mod

        graph = ImportGraph()
        tree = ast_mod.parse("from ..crypto import hmac_sha256\nfrom . import pager\n")
        graph.add_module("repro.storage.merkle", tree)
        targets = {record.module for record in graph.imports_of("repro.storage.merkle")}
        assert targets == {"repro.crypto", "repro.storage"}
        assert graph.imported_subpackages("repro.storage.merkle") == {
            "crypto",
            "storage",
        }


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        from repro.analysis.cli import main

        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path / "ok.py"), "--fail-on-findings"]) == 0

    def test_findings_gate_only_with_flag(self, tmp_path, capsys):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert main([str(bad)]) == 0
        assert main([str(bad), "--fail-on-findings"]) == 1
        out = capsys.readouterr().out
        assert "SEC003" in out

    def test_json_format(self, tmp_path, capsys):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert main([str(bad), "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "SEC003"

    def test_write_then_use_baseline(self, tmp_path, capsys):
        from repro.analysis.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        baseline = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", str(baseline)]) == 0
        assert (
            main([str(bad), "--baseline", str(baseline), "--fail-on-findings"]) == 0
        )

    def test_select_unknown_rule_is_usage_error(self, tmp_path, capsys):
        from repro.analysis.cli import main

        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path / "ok.py"), "--select", "NOPE01"]) == 2

    def test_list_rules(self, capsys):
        from repro.analysis.cli import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SEC001", "SEC005", "ARCH003"):
            assert rule_id in out

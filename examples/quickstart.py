"""Quickstart: run one TPC-H query under all five system configurations.

Builds the simulated CSA testbed (SGX host + TrustZone storage server +
trusted monitor), loads a small TPC-H instance into the encrypted,
integrity- and freshness-protected store, attests both engines, and runs
TPC-H Q6 under every configuration of the paper's Table 2 — printing the
simulated execution times and the security-cost breakdown.

Run:  python examples/quickstart.py

Pass ``--trace out.json`` to also record every query as telemetry spans
and write a Chrome trace-event file (open it in Perfetto or
chrome://tracing to see the flame timeline across client, monitor,
storage and host).  Tracing never charges the simulated clock, so the
printed numbers are identical either way.
"""

from __future__ import annotations

import argparse

from repro import Deployment
from repro.tpch import ALL_QUERIES

CONFIG_LABELS = {
    "hons": "host-only, non-secure",
    "hos": "host-only, secure (SGX)",
    "vcs": "vanilla computational storage",
    "scs": "IronSafe (secure CS)",
    "sos": "storage-only, secure",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="record telemetry spans and write a Chrome trace-event file",
    )
    args = parser.parse_args()

    print("Building the simulated CSA testbed (TPC-H SF 0.002)...")
    deployment = Deployment(scale_factor=0.002)
    tracer = deployment.enable_tracing() if args.trace else None

    print("Attesting the host enclave and the storage server...")
    nodes = deployment.attest_all()
    for role, node in nodes.items():
        print(
            f"  {role:8s} {node.config.node_id} @ {node.config.location} "
            f"(fw {node.config.fw_version}, measurement {node.measurement_hex[:16]}...)"
        )

    query = ALL_QUERIES[6]
    print(f"\nRunning TPC-H Q{query.number} ({query.name}) under all configurations:\n")
    print(f"{'config':6s} {'description':32s} {'simulated ms':>12s}  rows")
    results = {}
    for config, label in CONFIG_LABELS.items():
        result = deployment.run_query(query.sql, config)
        results[config] = result
        print(f"{config:6s} {label:32s} {result.total_ms:12.2f}  {len(result.rows)}")

    reference = sorted(results["hons"].rows)
    assert all(sorted(r.rows) == reference for r in results.values())
    print("\nAll five configurations returned identical results.")

    print(
        f"\nCS speedup, non-secure (hons/vcs): "
        f"{results['hons'].total_ms / results['vcs'].total_ms:.2f}x"
    )
    print(
        f"CS speedup, secure     (hos/scs):  "
        f"{results['hos'].total_ms / results['scs'].total_ms:.2f}x"
    )

    print("\nWhere IronSafe's (scs) time goes:")
    breakdown = results["scs"].breakdown
    for category, ns in sorted(breakdown.by_category.items(), key=lambda kv: -kv[1]):
        print(f"  {category:20s} {ns / 1e6:8.3f} ms  ({100 * breakdown.fraction(category):4.1f}%)")

    print(
        f"\nBytes shipped storage->host: {results['scs'].bytes_shipped} "
        f"(vs {results['hons'].host_meter.pages_read * 4096} bytes of pages "
        f"the host-only run pulled over the network)"
    )

    if tracer is not None:
        from repro.telemetry import render_summary, render_tree, write_chrome_trace

        write_chrome_trace(tracer.traces, args.trace)
        print(f"\nWrote {len(tracer.traces)} traces to {args.trace} "
              f"(open in Perfetto or chrome://tracing).")
        scs_trace = tracer.traces[-2]  # run order: hons, hos, vcs, scs, sos
        print("\nIronSafe (scs) span tree:")
        print(render_tree(scs_trace))
        print(render_summary(tracer.traces))


if __name__ == "__main__":
    main()

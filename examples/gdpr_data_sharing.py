"""GDPR-compliant data sharing: the paper's §3.1 scenario, end to end.

An airline (A, the data producer) collects customer bookings and lets a
hotel chain (B, the consumer) query arrival times — under a policy that
(1) hides expired records, (2) honours each customer's consent bitmap,
and (3) logs every consumer access into a tamper-evident audit trail a
regulator (D) can verify offline.

Run:  python examples/gdpr_data_sharing.py
"""

from __future__ import annotations

from repro.core import Deployment, register_client
from repro.errors import AccessDenied
from repro.monitor import verify_export
from repro.sql.parser import parse

BOOKINGS_DDL = """
    CREATE TABLE bookings (
        booking_id INTEGER,
        customer TEXT,
        flight TEXT,
        arrival TEXT,
        arrival_time TEXT,
        expiry_ts INTEGER,
        reuse_map INTEGER
    )
"""

NOW = 1_000_000
DAY = 86_400


def main() -> None:
    print("Deploying IronSafe for the airline's bookings database...")
    deployment = Deployment(workload="none", database_name="bookings-db")
    deployment.attest_all()

    airline = register_client(deployment, "airline-A")
    hotel = register_client(deployment, "hotel-B")

    # The airline provisions the access policy at database creation time:
    # it keeps full read/write, the hotel gets expiry-filtered, consent-
    # gated, audited reads.
    policy_text = (
        f"read :- sessionKeyIs('{airline.fingerprint}')\n"
        f"write :- sessionKeyIs('{airline.fingerprint}')\n"
        f"read :- sessionKeyIs('{hotel.fingerprint}')"
        " & le(T, expiry_ts) & reuseMap(reuse_map) & logUpdate(sharing)\n"
    )
    deployment.monitor.provision_database(
        "bookings-db",
        policy_text,
        reuse_positions={hotel.fingerprint: 1},  # hotel = consent bit 1
        protected_tables={"bookings"},
        default_ttl=30 * DAY,
    )
    print("Access policy installed:")
    print("  " + policy_text.replace("\n", "\n  ").rstrip())

    # The airline creates the table and inserts bookings through the
    # monitor, which appends the policy columns automatically.
    db = deployment.storage_engine.db
    db.execute(BOOKINGS_DDL)
    bookings = [
        (1, "carol", "LH100", "LIS", "14:05", True),
        (2, "dave", "LH200", "LIS", "18:40", False),   # dave opted out
        (3, "erin", "LH300", "LIS", "09:15", True),
    ]
    for booking_id, customer, flight, city, time_, consent in bookings:
        insert_sql = (
            "INSERT INTO bookings (booking_id, customer, flight, arrival, arrival_time) "
            f"VALUES ({booking_id}, '{customer}', '{flight}', '{city}', '{time_}')"
        )
        auth = deployment.monitor.authorize(
            "bookings-db",
            client_key=airline.fingerprint,
            statement=parse(insert_sql),
            host_id="host-1",
            now=NOW,
            query_text=insert_sql,
        )
        # The monitor appended expiry_ts + reuse_map; adjust dave's consent.
        statement = auth.statement
        db.execute_statement(statement)
        if not consent:
            db.execute(
                f"UPDATE bookings SET reuse_map = 1 WHERE booking_id = {booking_id}"
            )
    # One booking is already past its retention window.
    db.execute(f"UPDATE bookings SET expiry_ts = {NOW - DAY} WHERE booking_id = 3")
    db.commit()
    print(f"\nAirline inserted {len(bookings)} bookings (policy columns auto-appended).")

    # --- The hotel queries arrivals ------------------------------------
    query = "SELECT customer, flight, arrival_time FROM bookings WHERE arrival = 'LIS'"
    response = hotel.submit(deployment, query, now=NOW)
    print(f"\nHotel's view of LIS arrivals ({len(response.rows)} row(s)):")
    for row in response.rows:
        print(f"  {row}")
    print(
        "  -> dave is hidden (no consent), erin is hidden (record expired);"
        " only carol is visible."
    )
    print(f"  proof of compliance verified (session {response.proof.session_id}).")

    # The airline still sees everything.
    full = airline.submit(deployment, "SELECT count(*) FROM bookings", now=NOW)
    print(f"\nAirline sees all {full.rows[0][0]} bookings (owner access).")

    # A third party without any grant is refused outright.
    mallory = register_client(deployment, "mallory")
    try:
        mallory.submit(deployment, "SELECT * FROM bookings", now=NOW)
    except AccessDenied as exc:
        print(f"\nUnauthorized client refused: {exc}")

    # --- The regulator audits the sharing trail -------------------------
    export = deployment.monitor.export_log("sharing")
    log = deployment.monitor.audit_log("sharing")
    verify_export(export, log, deployment.monitor.public_key)
    print(f"\nRegulator verified the signed audit trail ({export.length} entries):")
    for entry in log.entries:
        print(f"  [{entry.sequence}] client {entry.client_key[:12]}...: {entry.detail[:60]}")


if __name__ == "__main__":
    main()

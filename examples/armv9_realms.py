"""ARM v9 Realms: shrinking the storage-side TCB (paper §3.3 future work).

The paper must trust the storage server's entire normal-world OS because
TrustZone has no general-purpose isolated execution for applications; it
names ARM v9 (CCA) as the fix.  This example runs IronSafe both ways and
shows the trade: a ~5x smaller trusted computing base — a *patched OS no
longer breaks attestation, and a patched engine still does* — for a small
realm execution overhead.

Run:  python examples/armv9_realms.py
"""

from __future__ import annotations

from repro.core import Deployment
from repro.errors import AttestationError
from repro.tpch import ALL_QUERIES


def tcb_table(deployment: Deployment, title: str) -> None:
    print(f"\n{title}")
    for component in deployment.tcb_report():
        marker = "TRUSTED  " if component["trusted"] else "untrusted"
        print(f"  [{marker}] {component['component']:44s} {component['bytes'] / 1048576:5.0f} MB")
    print(f"  total TCB: {deployment.tcb_bytes() / 1048576:.0f} MB")


def main() -> None:
    print("Building both deployments (TPC-H SF 0.001)...")
    classic = Deployment(scale_factor=0.001, seed=21)
    classic.attest_all()
    realms = Deployment(scale_factor=0.001, seed=21, armv9_realms=True)
    realms.attest_all()

    tcb_table(classic, "Classic TrustZone TCB:")
    tcb_table(realms, "ARM v9 Realms TCB:")

    query = ALL_QUERIES[3]
    a = classic.run_query(query.sql, "scs")
    b = realms.run_query(query.sql, "scs")
    assert sorted(a.rows) == sorted(b.rows)
    print(
        f"\nTPC-H Q{query.number} under scs: TrustZone {a.total_ms:.2f} ms, "
        f"Realms {b.total_ms:.2f} ms "
        f"({100 * (b.total_ms / a.total_ms - 1):.1f}% realm overhead)"
    )

    # The security win: only the realm image is in the trust statement.
    print("\nAttesting a *backdoored engine realm* against the monitor:")
    evil = realms.storage_engine._rmm.create_realm("evil", b"engine + backdoor")
    challenge = realms.rng.bytes(16)
    token = evil.attestation_token(challenge)
    try:
        realms.attestation.attest_storage(
            token, realms.tz_device.boot_state.certificate_chain, challenge
        )
        print("  !! accepted — FAILED")
    except AttestationError as exc:
        print(f"  refused: {exc}")


if __name__ == "__main__":
    main()

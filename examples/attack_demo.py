"""Adversary demo: the paper's §3.3 threat model, attack by attack.

Plays five attacks against a live deployment and shows each defense
firing: (1) reading enclave memory, (2) tampering with the untrusted
medium, (3) rolling the database back, (4) impersonating the storage
server, and (5) sniffing the host↔storage channel.

Run:  python examples/attack_demo.py
"""

from __future__ import annotations

from repro import Deployment
from repro.crypto import Rng
from repro.errors import (
    AttestationError,
    EnclaveError,
    FreshnessError,
    IntegrityError,
)
from repro.storage import SecurePager, TAAnchor
from repro.tee.trustzone import DeviceVendor
from repro.tpch import ALL_QUERIES


def banner(n: int, title: str) -> None:
    print(f"\n[{n}] {title}")
    print("-" * 64)


def main() -> None:
    print("Deploying IronSafe (TPC-H SF 0.0005)...")
    deployment = Deployment(scale_factor=0.0005, seed=4)
    deployment.attest_all()

    # ------------------------------------------------------------------
    banner(1, "OS-level attacker reads the host engine's enclave memory")
    deployment.host_engine.begin_session()
    deployment.host_engine.receive_table(
        "inflight", [("secret", "TEXT")], [("query intermediate state",)]
    )
    try:
        deployment.host_enclave.get("session_db")
        print("  !! enclave memory readable — FAILED")
    except EnclaveError as exc:
        print(f"  blocked: {exc}")
    deployment.host_engine.end_session()

    # ------------------------------------------------------------------
    banner(2, "Physical attacker flips bits on the untrusted NVMe medium")
    victim = deployment.storage_engine.db.store.pages_of("lineitem")[0]
    deployment.secure_device.corrupt(victim, offset=123)
    try:
        deployment.run_query(ALL_QUERIES[6].sql, "scs")
        print("  !! tampered data served — FAILED")
    except IntegrityError as exc:
        print(f"  detected on read: {exc}")
    # Repair for the rest of the demo.
    deployment.secure_device.corrupt(victim, offset=123)

    # ------------------------------------------------------------------
    banner(3, "Attacker rolls the database back to a stale snapshot")
    engine = deployment.storage_engine
    snapshot = deployment.secure_device.snapshot()
    engine.db.execute("DELETE FROM region WHERE r_regionkey = 0")
    engine.commit()
    deployment.secure_device.restore(snapshot)
    master_key = engine.trusted_os.invoke("secure-storage", "get_master_key")
    try:
        SecurePager(
            deployment.secure_device,
            master_key,
            TAAnchor(engine.trusted_os),
            deployment.rng.fork("attacker"),
        )
        print("  !! stale database accepted — FAILED")
    except FreshnessError as exc:
        print(f"  detected at open (RPMB anchor mismatch): {exc}")

    # ------------------------------------------------------------------
    banner(4, "A rogue device impersonates the storage server")
    mallory = DeviceVendor("mallory-devices", Rng("mallory"))
    rogue = mallory.provision_device("storage-1", location="eu-west")
    rogue.secure_boot(
        mallory.sign_firmware("optee", b"sw", "3.4"),
        mallory.sign_firmware("linux", b"nw", "5.4.3"),
    )
    challenge = deployment.rng.bytes(16)
    quote = rogue.sign_attestation(challenge)
    try:
        deployment.attestation.attest_storage(
            quote, rogue.boot_state.certificate_chain, challenge
        )
        print("  !! rogue device attested — FAILED")
    except AttestationError as exc:
        print(f"  attestation refused: {exc}")

    # ------------------------------------------------------------------
    banner(5, "Network attacker sniffs the host<->storage channel")
    frames: list[bytes] = []
    original_send = deployment.link.send

    def sniff(sender, recipient, payload, meter=None, charge_time=True):
        frames.append(bytes(payload))
        return original_send(sender, recipient, payload, meter, charge_time)

    deployment.link.send = sniff
    try:
        deployment.run_query("SELECT n_name FROM nation WHERE n_regionkey = 3", "scs")
    finally:
        deployment.link.send = original_send
    leaks = [f for f in frames if any(m in f for m in (b"CHINA", b"INDIA", b"JAPAN"))]
    print(f"  captured {len(frames)} frames, {sum(map(len, frames))} bytes")
    if leaks:
        print("  !! plaintext tuples on the wire — FAILED")
    else:
        print("  all captured traffic is ciphertext (authenticated encryption)")

    print("\nAll five attacks detected or blocked.")


if __name__ == "__main__":
    main()

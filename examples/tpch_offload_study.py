"""Near-data-processing study: what gets offloaded, and what it buys.

For a selection of TPC-H queries, prints the automatic partitioner's
storage-side scans (projection + pushed filters), the data-movement
savings, and the resulting speedups — a miniature of the paper's
Figures 6 and 7.

Run:  python examples/tpch_offload_study.py
"""

from __future__ import annotations

from repro import Deployment
from repro.core.manual_partitions import MANUAL_PARTITIONS
from repro.sql.parser import parse
from repro.tpch import ALL_QUERIES

STUDY_QUERIES = [3, 6, 12, 13, 21]


def main() -> None:
    print("Building the testbed (TPC-H SF 0.002)...\n")
    deployment = Deployment(scale_factor=0.002)
    deployment.attest_all()

    for number in STUDY_QUERIES:
        query = ALL_QUERIES[number]
        print("=" * 72)
        print(f"TPC-H Q{number} — {query.name}")

        manual = MANUAL_PARTITIONS.get(number)
        if manual is not None:
            print(f"\n  manual split ({manual.note}):")
            for ship in manual.ships:
                first_line = " ".join(ship.sql.split())[:68]
                print(f"    -> {ship.table}: {first_line}...")
        else:
            plan = deployment.partitioner.partition(parse(query.sql))
            print("\n  storage-side scans (automatic partitioner):")
            for scan in plan.scans:
                filt = f" WHERE {scan.where.to_sql()}" if scan.where is not None else ""
                cols = ", ".join(scan.columns[:5]) + ("..." if len(scan.columns) > 5 else "")
                print(f"    -> {scan.table}({cols}){filt[:90]}")
            for note in plan.notes:
                print(f"    note: {note}")

        hons = deployment.run_query(query.sql, "hons")
        vcs = deployment.run_query(query.sql, "vcs", manual_partition=manual)
        hos = deployment.run_query(query.sql, "hos")
        scs = deployment.run_query(query.sql, "scs", manual_partition=manual)

        pages_host = hons.host_meter.pages_read
        pages_shipped = vcs.pages_transferred
        print("\n  data movement:")
        print(f"    host-only reads {pages_host} pages over the network;")
        print(
            f"    CS ships {vcs.bytes_shipped} bytes (~{pages_shipped} pages) "
            f"-> {pages_host / max(1, pages_shipped):.1f}x IO reduction"
        )
        print("  runtimes (simulated ms):")
        print(
            f"    non-secure: host-only {hons.total_ms:8.2f}  vanilla CS {vcs.total_ms:8.2f}"
            f"  speedup {hons.total_ms / vcs.total_ms:5.2f}x"
        )
        print(
            f"    secure:     host-only {hos.total_ms:8.2f}  IronSafe   {scs.total_ms:8.2f}"
            f"  speedup {hos.total_ms / scs.total_ms:5.2f}x"
        )
        print()


if __name__ == "__main__":
    main()

"""Deterministic three-stage pipeline time accounting.

The streamed ship path overlaps, per batch, the three phases that the
serial path pays in sequence:

1. **scan** — the storage engine producing the batch (near-data filter),
2. **ship** — channel compression + authenticated encryption,
3. **ingest** — host-side decrypt/decode and enclave table append.

The model is the classic synchronous pipeline recurrence: stage *k* of
batch *b* starts when both batch *b-1* has left stage *k* and batch *b*
has left stage *k-1*.  With a single producer, a serial channel and a
single ingesting enclave thread this is exact, deterministic, and
collapses to the serial sum when there is only one batch stage-dominant
enough to starve the others.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class BatchTiming:
    """Simulated stage durations for one shipped batch."""

    scan_ns: float
    ship_ns: float
    ingest_ns: float

    @property
    def serial_ns(self) -> float:
        return self.scan_ns + self.ship_ns + self.ingest_ns

    @property
    def bottleneck_ns(self) -> float:
        return max(self.scan_ns, self.ship_ns, self.ingest_ns)


def pipelined_ns(timings: Sequence[BatchTiming]) -> float:
    """Makespan of the batches through the three-stage pipeline."""
    scan_done = 0.0
    ship_done = 0.0
    ingest_done = 0.0
    for t in timings:
        scan_done += t.scan_ns
        ship_done = max(ship_done, scan_done) + t.ship_ns
        ingest_done = max(ingest_done, ship_done) + t.ingest_ns
    return ingest_done


def serial_stage_ns(timings: Sequence[BatchTiming]) -> float:
    """What the same work costs with no overlap (the serial path's sum)."""
    return sum(t.serial_ns for t in timings)


def overlap_saved_ns(timings: Sequence[BatchTiming]) -> float:
    """Simulated time the pipeline removes relative to the serial sum."""
    return serial_stage_ns(timings) - pipelined_ns(timings)


def apportion_ns(total_ns: float, weights: Sequence[int]) -> list[float]:
    """Split a phase total across batches proportionally to *weights*.

    Used to turn per-portion meter costs (which the cost model prices as
    a whole, keeping parity with the serial path) into per-batch stage
    durations.  Zero or empty weights split evenly so the totals are
    always conserved.
    """
    if not weights:
        return []
    weight_sum = sum(weights)
    if weight_sum <= 0:
        share = total_ns / len(weights)
        return [share] * len(weights)
    return [total_ns * w / weight_sum for w in weights]

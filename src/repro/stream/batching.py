"""Size-bounded record-batch assembly with adaptive row-count targeting.

The assembler drains a row iterator into RecordBatch payloads of roughly
``target_bytes`` each.  Row width is not known up front (TEXT columns
vary), so instead of encoding row-by-row and measuring, it carries a
*row-count target* across batches: after each emitted batch it re-derives
the per-row byte estimate from what the batch actually encoded to and
retargets the next batch.  One encode pass and one ``b"".join`` per
batch; peak working set is one batch, never the whole result.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import StreamError
from ..sql.records import MAX_BATCH_ROWS, encode_batch

#: Default on-wire batch size target (pre-compression, pre-encryption).
DEFAULT_BATCH_BYTES = 64 * 1024

#: Row-count target for the very first batch, before any byte feedback.
INITIAL_ROW_TARGET = 64


@dataclass(frozen=True)
class EncodedBatch:
    """One assembled batch: the decoded rows and their wire payload."""

    rows: tuple[tuple, ...]
    payload: bytes

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class BatchAssembler:
    """Accumulate rows into ~``target_bytes`` RecordBatches."""

    def __init__(
        self,
        target_bytes: int = DEFAULT_BATCH_BYTES,
        *,
        initial_rows: int = INITIAL_ROW_TARGET,
        max_rows: int = 4096,
        fixed_rows: int | None = None,
    ):
        if target_bytes <= 0:
            raise StreamError(f"batch target must be positive, got {target_bytes}")
        if not 1 <= initial_rows <= MAX_BATCH_ROWS:
            raise StreamError(f"initial row target {initial_rows} out of range")
        self.target_bytes = target_bytes
        self.max_rows = min(max_rows, MAX_BATCH_ROWS)
        if fixed_rows is not None:
            # Oblivious full tier: the rows-per-batch target is pinned to
            # a predicate-independent value derived from catalog stats,
            # so the batch *boundaries* (and hence the frame schedule)
            # never adapt to the filtered data.
            if not 1 <= fixed_rows <= MAX_BATCH_ROWS:
                raise StreamError(f"fixed row target {fixed_rows} out of range")
            self._row_target = min(fixed_rows, self.max_rows)
        else:
            self._row_target = min(initial_rows, self.max_rows)
        self._fixed = fixed_rows is not None

    @property
    def row_target(self) -> int:
        """Current adaptive rows-per-batch target (observable for tests)."""
        return self._row_target

    def _retarget(self, rows: int, nbytes: int) -> None:
        if self._fixed:
            return
        if rows <= 0 or nbytes <= 0:
            return
        per_row = max(1, nbytes // rows)
        self._row_target = max(1, min(self.max_rows, self.target_bytes // per_row))

    def batches(self, rows: Iterable[tuple]) -> Iterator[EncodedBatch]:
        """Yield encoded batches straight off *rows* (a lazy iterator)."""
        chunk: list[tuple] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) >= self._row_target:
                payload = encode_batch(chunk)
                yield EncodedBatch(tuple(chunk), payload)
                self._retarget(len(chunk), len(payload))
                chunk = []
        if chunk:
            yield EncodedBatch(tuple(chunk), encode_batch(chunk))

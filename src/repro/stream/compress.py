"""Transparent per-batch compression for the ship path.

Each shipped batch is framed with a one-byte flag before it enters the
secure channel: ``FLAG_RAW`` carries the payload verbatim, ``FLAG_ZLIB``
a zlib-deflated body.  Compression is *advisory* — a batch that does not
shrink ships raw, so the frame never grows by more than the flag byte.
Compression happens before channel encryption (ciphertext does not
compress), so the bytes saved come straight off the encrypt + MAC +
transfer path — the Figure 7 data-movement metric.
"""

from __future__ import annotations

import zlib

from ..errors import StreamError

FLAG_RAW = 0
FLAG_ZLIB = 1


def pack_frame(payload: bytes, level: int = 0) -> tuple[bytes, int]:
    """Frame *payload* for the wire; returns ``(frame, bytes_saved)``.

    *level* 0 disables compression; 1-9 are zlib levels.  ``bytes_saved``
    is how many payload bytes compression removed (0 when shipped raw).
    """
    if level:
        if not 1 <= level <= 9:
            raise StreamError(f"zlib level {level} out of range 1-9")
        body = zlib.compress(payload, level)
        if len(body) < len(payload):
            return bytes([FLAG_ZLIB]) + body, len(payload) - len(body)
    return bytes([FLAG_RAW]) + payload, 0


def unpack_frame(frame: bytes) -> tuple[bytes, bool]:
    """Undo :func:`pack_frame`; returns ``(payload, was_compressed)``."""
    if not frame:
        raise StreamError("empty ship frame")
    flag = frame[0]
    if flag == FLAG_RAW:
        return frame[1:], False
    if flag == FLAG_ZLIB:
        try:
            return zlib.decompress(frame[1:]), True
        except zlib.error as exc:
            raise StreamError(f"corrupt compressed ship frame: {exc}") from exc
    raise StreamError(f"unknown ship frame flag {flag}")

"""Streaming ship pipeline: bounded record batches, overlap accounting.

The paper's central performance claim (§6, Figures 7/9/11) is that a CSA
wins by shrinking data movement and overlapping near-data filtering with
host-side processing.  This package provides the mechanisms that turn
our materialize-then-ship path into that streamed flow:

* :class:`BatchAssembler` — drains an operator iterator into ~64 KiB
  size-bounded :class:`EncodedBatch` es (RecordBatch wire format from
  :mod:`repro.sql.records`) with adaptive row-count targeting, so the
  storage-side working set is one batch instead of the whole result.
* :func:`pack_frame` / :func:`unpack_frame` — optional transparent zlib
  compression applied to each batch before channel encryption.
* :class:`BatchTiming` / :func:`pipelined_ns` — the deterministic
  three-stage (storage scan → channel crypto → host ingest) pipeline
  model: per batch the deployment charges the *overlap* of the stages
  instead of their sum.

Layering: like ``repro.perf``, this package is policy rather than
security — it handles encoded rows and simulated durations only.  It may
import ``errors``, ``sim`` and the record wire format (ARCH005 pins the
``repro.sql`` surface to ``repro.sql.records``), so the transport layer
is structurally incapable of reaching into the query engine or crypto.
"""

from ..sim import Meter
from .batching import DEFAULT_BATCH_BYTES, BatchAssembler, EncodedBatch
from .compress import FLAG_RAW, FLAG_ZLIB, pack_frame, unpack_frame
from .pipeline import (
    BatchTiming,
    apportion_ns,
    overlap_saved_ns,
    pipelined_ns,
    serial_stage_ns,
)

#: Counters this layer bumps on the owning phase's Meter.  Registered so
#: the telemetry registry absorbs them as first-class ``meter.<name>``
#: metrics instead of warn-once ``meter.extra.*`` entries.
STREAM_COUNTERS = (
    "batches_shipped",
    "channel_bytes_saved",
    "batch_bytes_compressed",
    "batch_bytes_decompressed",
)

for _name in STREAM_COUNTERS:
    Meter.register_counter(_name)
del _name

__all__ = [
    "BatchAssembler",
    "BatchTiming",
    "DEFAULT_BATCH_BYTES",
    "EncodedBatch",
    "FLAG_RAW",
    "FLAG_ZLIB",
    "STREAM_COUNTERS",
    "apportion_ns",
    "overlap_saved_ns",
    "pack_frame",
    "pipelined_ns",
    "serial_stage_ns",
    "unpack_frame",
]

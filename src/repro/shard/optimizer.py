"""Cost-based adaptive offload optimizer (``RunConfig(strategy="auto")``).

Given a parsed query and the deployment's *statistics* — catalog page/row
counts, per-page zone-map synopses, shard layout — the optimizer builds a
synthetic :class:`~repro.sim.Meter` for every candidate execution
strategy and prices it through the deployment's calibrated
:class:`~repro.sim.CostModel`.  The cheapest candidate wins.  Nothing is
executed during planning: every estimate is derived from metadata the
host already holds, so the decision itself costs (simulated) nothing and
reads no pages.

Candidates are confined to the requested *security class*: a query
submitted under a secure configuration (``hos`` / ``scs`` / ``sos``)
only considers secure strategies, and a plaintext one (``hons`` /
``vcs``) only plaintext strategies — the optimizer picks *where* work
runs, never *whether* data is protected.  ``sos`` additionally requires
the query to be shard-decomposable (partial→final aggregation) when the
deployment has more than one shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

from ..core import decompose_aggregate, pruning_for_scan, statement_shape
from ..sim import Meter, PAGE_SIZE

#: Security class each configuration belongs to; ``auto`` never crosses.
SECURE_CLASS = ("hos", "scs", "sos")
PLAIN_CLASS = ("hons", "vcs")


@dataclass(frozen=True)
class ScanStats:
    """Zone-map/catalog statistics for one offloaded scan, cluster-wide."""

    table: str
    pages: int
    rows: int
    #: Pages (and the rows they hold) surviving the zone-map probe of the
    #: scan's sargable predicate — equals pages/rows when the scan has no
    #: predicate or a shard lacks covering synopses (fail open).
    matched_pages: int
    matched_rows: int
    #: Estimated wire bytes after filter + projection.
    ship_bytes: int
    filtered: bool
    #: Shards the scan must visit / can skip (shard-level routing).
    fanout: int = 1
    pruned_shards: int = 0


@dataclass
class CandidatePlan:
    """One strategy the optimizer considered, with its predicted cost."""

    config: str
    predicted_ns: float
    detail: dict = field(default_factory=dict)

    @property
    def predicted_ms(self) -> float:
        return self.predicted_ns / 1e6


@dataclass
class PlanChoice:
    """The optimizer's decision for one query."""

    chosen: str
    candidates: list[CandidatePlan]
    scans: list[ScanStats]
    notes: list[str] = field(default_factory=list)

    @property
    def considered(self) -> int:
        return len(self.candidates)

    def candidate(self, config: str) -> CandidatePlan | None:
        for cand in self.candidates:
            if cand.config == config:
                return cand
        return None

    @property
    def predicted_ns(self) -> float:
        chosen = self.candidate(self.chosen)
        return chosen.predicted_ns if chosen is not None else 0.0


class OffloadOptimizer:
    """Prices candidate host/storage splits from statistics only.

    The estimator mirrors the deployment runners' cost composition — the
    same :meth:`~repro.sim.CostModel.phase_breakdown` calls with the same
    platform/enclave/remote flags — fed by synthetic meters instead of
    measured ones.  The per-operator row-count coefficients below are
    deliberately coarse (a planner has no execution feedback); they only
    need to rank strategies, not predict absolute times.
    """

    #: Monitor admission-path estimate (policy eval + rewrite + proof +
    #: session issue) charged to the ``scs`` candidate only.
    admission_ns = 1_100_000.0
    #: Fraction of a filtered scan's zone-map-matched rows expected to
    #: survive the exact predicate (rows actually shipped).
    filter_survival = 0.55
    #: Estimated groups produced by a grouped aggregate (per shard).
    group_out_rows = 64

    def __init__(self, deployment):
        self._dep = deployment

    # -- statistics -----------------------------------------------------

    def _stores(self, secure: bool):
        nodes = self._dep.nodes
        return [
            (node.engine if secure else node.engine_plain).db.store
            for node in nodes
        ]

    def scan_stats(self, scans, *, secure: bool, run_config) -> list[ScanStats]:
        """Fold per-shard zone maps into cluster-wide per-scan statistics."""
        dep = self._dep
        stores = self._stores(secure)
        catalog = stores[0].catalog
        payload = (dep.nodes[0].engine if secure else
                   dep.nodes[0].engine_plain).pager.payload_size
        prune_ok = run_config.zone_maps and run_config.oblivious == "off"
        out: list[ScanStats] = []
        for scan in scans:
            predicate = pruning_for_scan(catalog, scan) if prune_ok else None
            schema = catalog.table(scan.table)
            n_cols = max(1, len(schema.column_names))
            col_frac = min(1.0, len(scan.columns) / n_cols)
            replicated = dep.sharding.is_replicated(scan.table)
            pages = rows = matched_pages = matched_rows = 0
            fanout = 0
            pruned_shards = 0
            for store in stores:
                shard_schema = store.catalog.table(scan.table)
                shard_pages = len(shard_schema.pages)
                shard_rows = shard_schema.row_count
                maps = store.zone_maps.get(scan.table)
                covered = maps is not None and maps.covers(shard_schema.pages)
                m_pages, m_rows = shard_pages, shard_rows
                if predicate is not None and covered:
                    m_pages = m_rows = 0
                    for page_no in shard_schema.pages:
                        synopsis = maps.pages[page_no]
                        if predicate.page_may_match(synopsis):
                            m_pages += 1
                            m_rows += synopsis.row_count
                if m_pages:
                    fanout += 1
                else:
                    pruned_shards += 1
                pages += shard_pages
                rows += shard_rows
                matched_pages += m_pages
                matched_rows += m_rows
                if replicated:
                    # Scans read a replicated table from one shard only.
                    break
            avg_row = (pages * payload / rows) if rows else 0.0
            survival = self.filter_survival if scan.where is not None else 1.0
            ship_rows = matched_rows * survival
            out.append(
                ScanStats(
                    table=scan.table,
                    pages=pages,
                    rows=rows,
                    matched_pages=matched_pages,
                    matched_rows=matched_rows,
                    ship_bytes=int(ship_rows * avg_row * col_frac),
                    filtered=scan.where is not None,
                    fanout=max(1, fanout),
                    pruned_shards=pruned_shards,
                )
            )
        return out

    # -- synthetic meters ----------------------------------------------

    def _merkle_depth(self, pages: int) -> int:
        return max(1, math.ceil(math.log2(max(2, pages))))

    def _scan_meter(self, stat: ScanStats, *, crypto: bool) -> Meter:
        """Storage-side work of one filtering scan (one shard's share is
        ``1/fanout`` of this)."""
        m = Meter()
        m.rows_scanned = stat.matched_rows
        if stat.filtered:
            m.predicate_evals = stat.matched_rows
        m.rows_output = int(stat.matched_rows * (
            self.filter_survival if stat.filtered else 1.0
        ))
        m.pages_read = stat.matched_pages
        m.bump("pages_scanned", stat.matched_pages)
        m.bump("pages_skipped", stat.pages - stat.matched_pages)
        if crypto:
            m.pages_decrypted = stat.matched_pages
            m.page_macs_verified = stat.matched_pages
            m.merkle_nodes_hashed = (
                stat.matched_pages * self._merkle_depth(stat.pages)
            )
        return m

    def _host_ops_meter(self, shipped_rows: float, shape: dict) -> Meter:
        """Join/aggregate work over *shipped_rows* already-local rows."""
        m = Meter()
        m.rows_scanned = int(shipped_rows)
        m.predicate_evals = int(shipped_rows)
        m.hash_inserts = int(shipped_rows)
        m.join_probes = int(shipped_rows * shape["joins"])
        if shape["aggs"]:
            m.agg_updates = int(shipped_rows * shape["aggs"])
            m.rows_output = self.group_out_rows if shape["grouped"] else 1
        else:
            m.rows_output = int(shipped_rows * self.filter_survival)
        if shape["ordered"]:
            m.sort_ops = m.rows_output
        return m

    # -- candidate pricing ---------------------------------------------

    def _price_split(
        self, stats, shape, *, secure: bool, cpus: int, memory: int
    ) -> CandidatePlan:
        dep = self._dep
        cm = dep.cost_model
        shards = dep.shards
        in_realm = secure and dep.armv9_realms
        scan_ns = []
        total_ship_bytes = 0
        for stat in stats:
            meter = self._scan_meter(stat, crypto=secure)
            breakdown = cm.phase_breakdown(
                meter, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            # The scan fans out over the shards that may hold matches and
            # they run concurrently: one shard's share of the duration.
            scan_ns.append(breakdown.total_ns / max(1, min(stat.fanout, shards)))
            total_ship_bytes += stat.ship_bytes
        storage_ns = _lpt(scan_ns, cpus)
        if secure:
            crypt = Meter()
            crypt.channel_bytes_encrypted = total_ship_bytes
            storage_ns += cm.phase_breakdown(
                crypt, platform="arm", cores=1
            ).total_ns / max(1, shards)

        shipped_rows = sum(
            s.matched_rows * (self.filter_survival if s.filtered else 1.0)
            for s in stats
        )
        host = self._host_ops_meter(shipped_rows, shape)
        if secure:
            host.channel_bytes_encrypted = total_ship_bytes
        if shards > 1:
            host.bump("shard_scan_fanout", sum(s.fanout for s in stats))
            host.bump("shards_pruned", sum(s.pruned_shards for s in stats))
        host_ns = cm.phase_breakdown(
            host, platform="x86", in_enclave=secure
        ).total_ns

        transfer = cm.net_transfer_ns(
            total_ship_bytes, messages=max(1, total_ship_bytes // 65536)
        )
        total = storage_ns + max(0.0, transfer - storage_ns) + host_ns
        if secure:
            total += cm.tls_handshake_ns + self.admission_ns
        return CandidatePlan(
            config="scs" if secure else "vcs",
            predicted_ns=total,
            detail={
                "storage_ns": storage_ns,
                "host_ns": host_ns,
                "ship_bytes": total_ship_bytes,
            },
        )

    def _price_host_only(
        self, stats, shape, *, secure: bool
    ) -> CandidatePlan:
        dep = self._dep
        cm = dep.cost_model
        m = Meter()
        total_pages = 0
        total_rows = 0.0
        for stat in stats:
            m.merge(self._scan_meter(stat, crypto=secure))
            total_pages += stat.matched_pages
            total_rows += stat.matched_rows * (
                self.filter_survival if stat.filtered else 1.0
            )
        m.merge(self._host_ops_meter(total_rows, shape))
        if secure:
            m.enclave_transitions += 2 * total_pages
            m.peak_memory_bytes = total_pages * (PAGE_SIZE + 64)
        # The host pulls every page over the network, shard by shard —
        # remote reads do not scale with the shard count.
        breakdown = cm.phase_breakdown(
            m, platform="x86", in_enclave=secure, remote_io=True
        )
        return CandidatePlan(
            config="hos" if secure else "hons",
            predicted_ns=breakdown.total_ns,
            detail={"pages": total_pages},
        )

    def _price_storage_only(
        self, stats, shape, *, split, cpus: int, memory: int
    ) -> CandidatePlan:
        dep = self._dep
        cm = dep.cost_model
        shards = dep.shards
        in_realm = dep.armv9_realms
        per_shard_ns = []
        partial_rows = 0
        for stat in stats:
            meter = self._scan_meter(stat, crypto=True)
            rows = stat.matched_rows * (
                self.filter_survival if stat.filtered else 1.0
            )
            if shape["aggs"]:
                meter.agg_updates = int(rows * max(1, shape["aggs"]))
                meter.hash_inserts = int(rows) if shape["grouped"] else 0
                out_rows = self.group_out_rows if shape["grouped"] else 1
            else:
                out_rows = int(rows)
            meter.rows_output = out_rows
            partial_rows += out_rows * max(1, min(stat.fanout, shards))
            breakdown = cm.phase_breakdown(
                meter, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            per_shard_ns.append(
                breakdown.total_ns / max(1, min(stat.fanout, shards))
            )
        total = _lpt(per_shard_ns, cpus)
        if shards > 1 and split is not None:
            # Partial shipping + host-side final merge.
            partial_bytes = partial_rows * 64
            total += cm.net_transfer_ns(partial_bytes, messages=shards)
            merge = Meter()
            merge.rows_scanned = partial_rows
            merge.agg_updates = partial_rows * max(1, shape["aggs"])
            merge.hash_inserts = partial_rows
            merge.rows_output = (
                self.group_out_rows if shape["grouped"] else 1
            )
            merge.bump("partial_aggs_merged", partial_rows)
            merge.bump("shard_scan_fanout", shards)
            total += cm.phase_breakdown(
                merge, platform="x86", in_enclave=True
            ).total_ns
        return CandidatePlan(
            config="sos",
            predicted_ns=total,
            detail={"partial_rows": partial_rows},
        )

    # -- the decision ---------------------------------------------------

    def choose(
        self,
        statement,
        config: str,
        run_config,
        *,
        cpus: int,
        memory: int,
    ) -> PlanChoice:
        dep = self._dep
        secure = config in SECURE_CLASS
        plan = dep.partitioner.partition(statement)
        stats = self.scan_stats(plan.scans, secure=secure, run_config=run_config)
        shape = statement_shape(statement)
        notes: list[str] = []
        candidates: list[CandidatePlan] = []
        if secure:
            candidates.append(self._price_host_only(stats, shape, secure=True))
            candidates.append(
                self._price_split(stats, shape, secure=True, cpus=cpus, memory=memory)
            )
            split = decompose_aggregate(statement)
            if dep.shards <= 1 or split is not None:
                candidates.append(
                    self._price_storage_only(
                        stats, shape, split=split, cpus=cpus, memory=memory
                    )
                )
            else:
                notes.append(
                    "sos skipped: query is not shard-decomposable "
                    "(partial→final aggregation unavailable)"
                )
        else:
            candidates.append(self._price_host_only(stats, shape, secure=False))
            candidates.append(
                self._price_split(stats, shape, secure=False, cpus=cpus, memory=memory)
            )
        chosen = min(candidates, key=lambda c: c.predicted_ns)
        return PlanChoice(
            chosen=chosen.config,
            candidates=candidates,
            scans=stats,
            notes=notes,
        )


# -- small local helpers ------------------------------------------------


def _lpt(durations, workers: int) -> float:
    if not durations:
        return 0.0
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        index = min(range(len(loads)), key=loads.__getitem__)
        loads[index] += duration
    return max(loads)

"""Sharded multi-storage-node scale-out with adaptive offload.

``repro.shard`` grows the single storage server of :class:`repro.core.
Deployment` into N trust-isolated shards (each with its own TrustZone
device, RPMB anchor, HKDF key domain, Merkle root and monitor-attested
identity), partitions the TPC-H tables across them, routes and prunes
scans shard-by-shard from zone-map synopses, and merges results host-
side — plus a cost-based offload optimizer (``RunConfig(strategy=
"auto")``) that picks the host/storage split per query from catalog
statistics priced through the calibrated cost model.

Layering (ARCH010): this package reaches the SQL front end only through
``repro.core`` (parsing, partitioning, aggregate decomposition) and the
wire-format modules ``repro.sql.values`` / ``repro.sql.records``; it
never touches key material.
"""

from ..sim import Meter
from .deployment import ShardedDeployment
from .optimizer import (
    PLAIN_CLASS,
    SECURE_CLASS,
    CandidatePlan,
    OffloadOptimizer,
    PlanChoice,
    ScanStats,
)
from .partition import (
    SCHEMES,
    ShardingSpec,
    TablePartitioning,
    default_tpch_sharding,
    hash_value,
    range_bounds,
)
from .router import route_scan, table_synopsis

#: Counters the sharded runners and the optimizer bump on run meters.
#: Registered here so the telemetry registry's ``absorb_meter`` accepts
#: them instead of warn-dropping unknown names.
SHARD_COUNTERS = (
    "shards_pruned",
    "shard_scan_fanout",
    "partial_aggs_merged",
    "optimizer_plans_considered",
)
for _name in SHARD_COUNTERS:
    Meter.register_counter(_name)
del _name

__all__ = [
    "CandidatePlan",
    "OffloadOptimizer",
    "PLAIN_CLASS",
    "PlanChoice",
    "SCHEMES",
    "SECURE_CLASS",
    "SHARD_COUNTERS",
    "ScanStats",
    "ShardedDeployment",
    "ShardingSpec",
    "TablePartitioning",
    "default_tpch_sharding",
    "hash_value",
    "range_bounds",
    "route_scan",
    "table_synopsis",
]

"""Sharded multi-storage-node deployment with adaptive offload.

A :class:`ShardedDeployment` scales the paper's single storage server out
to N shards.  Every shard is a *full* storage node — its own
vendor-provisioned TrustZone device (own secure boot, own RPMB anchor,
own secure-storage master key, so an entirely separate HKDF key domain
and Merkle root), its own NVMe devices, its own engines, its own
monitor-attested identity.  Tables are hash/range-partitioned across
shards (:mod:`repro.shard.partition`); queries fan filtering scans out to
the shards that can hold matches (:mod:`repro.shard.router` prunes whole
shards from zone-map synopses before any page I/O), ship each shard's
results through its own authenticated channel, and merge on the host —
cross-shard joins and grouped aggregation run host-side exactly as in the
single-node split, and decomposable aggregates run storage-only as
per-shard partials folded by a host-side final (:mod:`repro.core.aggsplit`).

``shards=1`` delegates every path to the base :class:`Deployment`
unchanged — rows, meters, simulated time and observable traces are
byte-identical to the single-node testbed.

``RunConfig(strategy="auto")`` engages the cost-based offload optimizer
(:mod:`repro.shard.optimizer`): the host/storage split is chosen per
query from catalog + zone-map statistics priced through the calibrated
cost model, and the decision (with predicted-vs-actual cost) lands in an
``offload_plan`` telemetry span.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace

from ..core import (
    CONFIGS,
    Deployment,
    RunConfig,
    RunResult,
    StorageNode,
    TableScanSpec,
    channel_pair,
    decompose_aggregate,
    pruning_for_scan,
)
from ..core.host_engine import RECORD_ROWS
from ..errors import IntegrityError, IronSafeError, PartitionError
from ..oblivious import dummy_frame, fixed_ship_schedule, pad_frame, pads_channel, unpad_frame
from ..perf import SessionTask, arbitrate, makespan_ns
from ..sim import CAT_NETWORK, CAT_POLICY, Meter, TimeBreakdown
from ..sql.records import encode_row
from ..stream import BatchTiming, apportion_ns, pack_frame, pipelined_ns, unpack_frame
from ..telemetry import (
    NODE_HOST,
    NODE_NETWORK,
    NODE_STORAGE,
    SPAN_CHANNEL_SHIP,
    SPAN_CHANNEL_TRANSFER,
    SPAN_HOST_EXECUTE,
    SPAN_HOST_JOIN_AGG,
    SPAN_NDP_FILTER,
    SPAN_OFFLOAD_PLAN,
    SPAN_PARTITION,
    SPAN_SESSION_SETUP,
    SPAN_SHARD_MERGE,
    SPAN_SHARD_ROUTE,
    SPAN_SHIP_BATCH,
    SPAN_STORAGE_PHASE,
)
from ..tpch import TPCHGenerator, create_all
from .optimizer import OffloadOptimizer
from .partition import ShardingSpec, default_tpch_sharding
from .router import route_scan


class ShardedDeployment(Deployment):
    """A CSA testbed whose storage side is N trust-isolated shards."""

    def __init__(
        self,
        shards: int = 1,
        sharding: ShardingSpec | None = None,
        *,
        scale_factor: float = 0.005,
        seed: int = 2022,
        workload: str = "tpch",
        **kwargs,
    ):
        self.shards = int(shards)
        if self.shards < 1:
            raise PartitionError(f"need at least one shard, got {shards}")
        if sharding is not None and sharding.shards != self.shards:
            raise PartitionError(
                f"sharding spec covers {sharding.shards} shards, deployment has {self.shards}"
            )
        if self.shards == 1:
            # Single shard: the base deployment verbatim — same rng draw
            # order, same loader, same runners — wrapped in the node list.
            super().__init__(
                scale_factor=scale_factor, seed=seed, workload=workload, **kwargs
            )
            self.sharding = (
                sharding if sharding is not None
                else default_tpch_sharding(1, scale_factor)
            )
        else:
            super().__init__(
                scale_factor=scale_factor, seed=seed, workload="none", **kwargs
            )
            self.sharding = (
                sharding if sharding is not None
                else default_tpch_sharding(self.shards, scale_factor)
            )
        self.nodes: list[StorageNode] = [
            StorageNode(
                node_id="storage-1",
                engine=self.storage_engine,
                engine_plain=self.storage_engine_plain,
                secure_device=self.secure_device,
                plain_device=self.plain_device,
            )
        ]
        if self.shards > 1:
            # Per-shard violation attribution for the primary too, and a
            # per-shard channel endpoint named like the extra nodes'.
            self.storage_engine.pager.on_violation = self._node_violation("storage-1")
            self.link.register("storage-1")
            for index in range(1, self.shards):
                self.nodes.append(self.add_storage_node(f"storage-{index + 1}"))
            if workload == "tpch":
                self.row_counts = self._load_sharded_tpch(scale_factor, seed)
        self.optimizer = OffloadOptimizer(self)

    # ------------------------------------------------------------------
    # Data loading
    # ------------------------------------------------------------------

    def _load_sharded_tpch(self, scale_factor: float, seed: int) -> dict[str, int]:
        """Generate TPC-H once, partition it, load every shard's slice."""
        generator = TPCHGenerator(scale_factor, seed)
        tables = generator.generate_all()
        for node in self.nodes:
            create_all(node.engine.db)
            create_all(node.engine_plain.db)
        counts: dict[str, int] = {}
        batch = 2000
        for table, rows in tables.items():
            counts[table] = len(rows)
            for node, shard_rows in zip(self.nodes, self.sharding.shard_rows(table, rows)):
                for db in (node.engine.db, node.engine_plain.db):
                    for start in range(0, len(shard_rows), batch):
                        db.store.insert_rows(table, shard_rows[start : start + batch])
        for node in self.nodes:
            node.engine.db.commit()
            node.engine_plain.db.commit()
        return counts

    # ------------------------------------------------------------------
    # Cluster-wide plumbing (tracing, observability, caching, attestation)
    # ------------------------------------------------------------------

    def _bind_tracer(self) -> None:
        super()._bind_tracer()
        for node in getattr(self, "nodes", [])[1:]:
            node.engine.tracer = self.tracer
            node.engine_plain.tracer = self.tracer

    def enable_observability(self, **kwargs):
        recorder = super().enable_observability(**kwargs)
        for node in self.nodes[1:]:
            node.secure_device.obsv = recorder
            node.plain_device.obsv = recorder
        return recorder

    def enable_page_cache(self, capacity_pages: int) -> None:
        super().enable_page_cache(capacity_pages)
        for node in self.nodes[1:]:
            node.engine.enable_page_cache(capacity_pages)

    def disable_page_cache(self) -> None:
        super().disable_page_cache()
        for node in self.nodes[1:]:
            node.engine.disable_page_cache()

    def attest_all(self):
        attested = super().attest_all()
        for node in self.nodes[1:]:
            attested[node.node_id] = self.attest_storage_node(node.engine)
        return attested

    @contextmanager
    def _attributed(self, node_id: str):
        """Re-raise integrity failures tagged with the owning shard."""
        try:
            yield
        except IntegrityError as exc:
            if node_id in str(exc):
                raise
            raise type(exc)(f"shard {node_id}: {exc}") from exc

    # ------------------------------------------------------------------
    # Adaptive offload (strategy="auto")
    # ------------------------------------------------------------------

    def run_query(
        self,
        sql: str,
        config: str,
        *,
        storage_cpus: int | None = None,
        storage_memory_bytes: int | None = None,
        manual_partition=None,
        authorization=None,
        run_config: RunConfig | None = None,
    ) -> RunResult:
        run_config = run_config if run_config is not None else self.run_config
        if run_config.strategy != "auto":
            return super().run_query(
                sql, config,
                storage_cpus=storage_cpus,
                storage_memory_bytes=storage_memory_bytes,
                manual_partition=manual_partition,
                authorization=authorization,
                run_config=run_config,
            )
        if config not in CONFIGS:
            raise IronSafeError(
                f"unknown configuration {config!r} (know {sorted(CONFIGS)})"
            )
        statement = self.parse_select(sql)
        cpus = storage_cpus if storage_cpus is not None else self.storage_cpus
        memory = (
            storage_memory_bytes
            if storage_memory_bytes is not None
            else self.storage_memory_bytes
        )
        choice = self.optimizer.choose(
            statement, config, run_config, cpus=cpus, memory=memory
        )
        with self.tracer.span(
            SPAN_OFFLOAD_PLAN,
            node=NODE_HOST,
            requested=config,
            chosen=choice.chosen,
            considered=choice.considered,
        ) as plan_span:
            # Planning reads statistics the host already holds: it never
            # touches a page, so it charges no simulated time.
            plan_span.set_sim_ns(0.0)
            plan_span.set_attrs(
                **{
                    f"predicted_{cand.config}_ms": round(cand.predicted_ms, 6)
                    for cand in choice.candidates
                }
            )
        result = super().run_query(
            sql, choice.chosen,
            storage_cpus=storage_cpus,
            storage_memory_bytes=storage_memory_bytes,
            manual_partition=(
                manual_partition if choice.chosen in ("scs", "vcs") else None
            ),
            authorization=authorization if choice.chosen == "scs" else None,
            run_config=replace(run_config, strategy="manual"),
        )
        # Stamp predicted-vs-actual into the decision span (the span is
        # already closed; attribute updates are free) and the run result.
        plan_span.set_attrs(
            predicted_ms=round(choice.predicted_ns / 1e6, 6),
            actual_ms=round(result.total_ms, 6),
        )
        result.plan_notes.insert(
            0,
            f"optimizer chose {choice.chosen} for requested {config} "
            f"(predicted {choice.predicted_ns / 1e6:.3f} ms, "
            f"actual {result.total_ms:.3f} ms, "
            f"{choice.considered} candidates considered)",
        )
        result.plan_notes.extend(choice.notes)
        # Counter lands after pricing, so an auto run's simulated time is
        # exactly the chosen manual run's; the registry still absorbs it.
        result.host_meter.bump("optimizer_plans_considered", choice.considered)
        metrics = getattr(self.tracer, "metrics", None)
        if metrics is not None:
            extra = Meter()
            extra.bump("optimizer_plans_considered", choice.considered)
            metrics.absorb_meter(extra, node=NODE_HOST, phase=choice.chosen)
        return result

    # ------------------------------------------------------------------
    # Sharded runners
    # ------------------------------------------------------------------

    def _run_query_traced(
        self, sql, statement, config, *, cpus, memory,
        manual_partition, authorization, run_config,
    ) -> RunResult:
        if self.shards == 1:
            return super()._run_query_traced(
                sql, statement, config, cpus=cpus, memory=memory,
                manual_partition=manual_partition, authorization=authorization,
                run_config=run_config,
            )
        from ..telemetry import NODE_CLIENT, SPAN_QUERY

        with self.tracer.maybe_root(
            SPAN_QUERY, node=NODE_CLIENT, config=config, sql=sql
        ) as root:
            if config in ("hons", "hos"):
                result = self._run_host_only_sharded(
                    statement, secure=(config == "hos"), run_config=run_config
                )
            elif config in ("vcs", "scs"):
                result = self._run_split_sharded(
                    statement, secure=(config == "scs"), cpus=cpus, memory=memory,
                    manual=manual_partition, authorization=authorization,
                    run_config=run_config,
                )
            else:
                result = self._run_storage_only_sharded(
                    statement, cpus=cpus, memory=memory, run_config=run_config
                )
            root.set_sim_ns(result.breakdown.total_ns)
            root.set_attrs(rows=len(result.rows), bytes_shipped=result.bytes_shipped)
        return result

    # -- shard routing ---------------------------------------------------

    def _route_ship(self, ship, manual, run_config, stores):
        """Shards one ship must visit, and how many zone maps pruned.

        Routing consults zone maps only when the run allows data-dependent
        page skipping (``zone_maps`` on, ``oblivious`` off): the oblivious
        tiers keep every shard's trace predicate-independent, so scans
        then fan out to all shards unconditionally.  Replicated tables are
        read from shard 0 only — that choice depends on the schema, never
        on the data.
        """
        catalog = stores[0].catalog
        if manual is not None:
            tables = self.partitioner.tables_referenced(self.parse_select(ship.sql))
            if tables and all(self.sharding.is_replicated(t) for t in tables):
                return [0], 0
            return list(range(self.shards)), 0
        prune_ok = run_config.zone_maps and run_config.oblivious == "off"
        if self.sharding.is_replicated(ship.table):
            if not prune_ok:
                return [0], 0
            return route_scan(stores[:1], ship.table, pruning_for_scan(catalog, ship))
        if not prune_ok:
            return list(range(self.shards)), 0
        return route_scan(stores, ship.table, pruning_for_scan(catalog, ship))

    # -- split execution (vcs / scs), serial and pipelined ---------------

    def _run_split_sharded(
        self, statement, secure, cpus, memory,
        manual=None, authorization=None, run_config=None,
    ) -> RunResult:
        run_config = run_config if run_config is not None else self.run_config
        engines = [
            (node.engine if secure else node.engine_plain) for node in self.nodes
        ]
        for engine in engines:
            engine.set_zone_maps(run_config.zone_maps)
            engine.set_oblivious(run_config.oblivious)
            engine.set_vectorized(run_config.vectorized)
        self.host_engine.set_oblivious(run_config.oblivious)
        self.host_engine.set_vectorized(run_config.vectorized)

        notes: list[str] = []
        if manual is not None and not self.sharding.co_partitioned(manual.requires):
            notes.append(
                "manual split needs co-partitioning on "
                f"{list(manual.requires)} which this layout lacks; "
                "falling back to the automatic partitioner"
            )
            manual = None
        if manual is not None:
            plan = None
        else:
            with self.tracer.span(SPAN_PARTITION, node=NODE_HOST) as part_span:
                plan = self.partitioner.partition(statement)
                part_span.set_attrs(scans=len(plan.scans))

        clock_before = self.clock.breakdown.copy()
        session_key = self.rng.fork("adhoc-session").bytes(32)
        if secure:
            if not self._attested:
                self.attest_all()
            auth = authorization
            if auth is None:
                auth = self.monitor.authorize(
                    self.database_name,
                    client_key=self._client_fingerprint(),
                    statement=statement,
                    host_id="host-1",
                    now=0,
                    query_text=statement.to_sql(),
                )
            if manual is None:
                statement = auth.statement
            session_key = auth.session.key
        monitor_breakdown = self.clock.breakdown.minus(clock_before)

        host_meter = self.host_engine.fresh_meter()
        ship_meters = [Meter() for _ in self.nodes]
        self.host_engine.begin_session()
        channels: list[tuple] = [None] * len(self.nodes)
        if secure:
            for index, node in enumerate(self.nodes):
                channels[index] = channel_pair(
                    self.link, "host", node.node_id, session_key,
                    host_meter, ship_meters[index], tracer=self.tracer,
                )

        ships = manual.ships if manual is not None else plan.scans
        stores = [engine.db.store for engine in engines]
        catalog = stores[0].catalog
        pipelined = run_config.pipeline
        compress_level = run_config.compress_level if run_config.compress else 0
        in_realm = secure and self.armv9_realms

        total_bytes = 0
        total_batches = 0
        portion_meters: list[Meter] = []
        node_durations: list[list[float]] = [[] for _ in self.nodes]
        node_serial_ns = [0.0] * len(self.nodes)
        node_meters = [Meter() for _ in self.nodes]
        node_ingest = [TimeBreakdown() for _ in self.nodes]
        ingest_breakdown = TimeBreakdown()

        phase_ctx = self.tracer.span(
            SPAN_STORAGE_PHASE, node=NODE_STORAGE, enclave=in_realm,
            portions=len(ships), shards=self.shards,
        )
        phase_span = phase_ctx.__enter__()
        for ship in ships:
            targets, pruned = self._route_ship(ship, manual, run_config, stores)
            host_meter.bump("shard_scan_fanout", len(targets))
            host_meter.bump("shards_pruned", pruned)
            self.tracer.event(
                SPAN_SHARD_ROUTE, node=NODE_HOST, table=ship.table,
                fanout=len(targets), pruned=pruned,
            )
            if not targets:
                # Every shard proved the scan matches nothing; the host
                # table must still exist for the join/agg phase.
                schema = catalog.table(ship.table)
                column_types = [
                    (name, schema.column_type(name)) for name in ship.columns
                ]
                self.host_engine.receive_table(ship.table, column_types, [])
                continue
            for target in targets:
                if pipelined:
                    self._ship_portion_pipelined(
                        ship, target, engines, channels, ship_meters,
                        host_meter, node_meters, node_durations,
                        node_serial_ns, node_ingest, ingest_breakdown,
                        portion_meters, run_config, compress_level,
                        secure=secure, memory=memory, in_realm=in_realm,
                    )
                    total_batches += self._last_batches
                    total_bytes += self._last_bytes
                else:
                    self._ship_portion_serial(
                        ship, target, engines, channels, ship_meters,
                        node_meters, node_durations, portion_meters,
                        run_config, manual,
                        secure=secure, memory=memory, in_realm=in_realm,
                    )
                    total_bytes += self._last_bytes
        phase_ctx.__exit__(None, None, None)

        # Host phase: the full query over the shipped (unioned) tables.
        host_statement = (
            self.parse_select(manual.host_sql) if manual is not None else statement
        )
        with self.tracer.span(
            SPAN_HOST_JOIN_AGG, node=NODE_HOST, enclave=secure
        ) as host_span:
            result = self.host_engine.run(host_statement)
            self.monitorless_cleanup()

        # Per-node wall times: each shard LPT-schedules its own portions
        # over its own CPUs and pays its own serial leftovers (channel
        # crypto, spill); the deterministic arbiter then runs the shards
        # concurrently, so the phase wall is the slowest shard's.
        storage_meter = Meter()
        node_walls: list[float] = []
        for index in range(len(self.nodes)):
            merged = node_meters[index].copy()
            merged.merge(ship_meters[index])
            work = self.cost_model.phase_breakdown(
                merged, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            if pipelined:
                combined_ns = work.total_ns + node_ingest[index].total_ns
                wall = self._lpt_makespan(node_durations[index], cpus) + max(
                    0.0, combined_ns - node_serial_ns[index]
                )
            else:
                wall = self._lpt_makespan(node_durations[index], cpus) + max(
                    0.0, work.total_ns - sum(node_durations[index])
                )
            node_walls.append(wall)
            storage_meter.merge(merged)
        slots = arbitrate(
            [SessionTask(index, wall) for index, wall in enumerate(node_walls)],
            len(self.nodes),
        )
        storage_wall_ns = makespan_ns(slots)
        work_breakdown = self.cost_model.phase_breakdown(
            storage_meter, platform="arm", cores=1,
            memory_limit_bytes=memory, in_realm=in_realm,
        )
        if pipelined:
            work_breakdown = work_breakdown.copy().merge(ingest_breakdown)
        if work_breakdown.total_ns > 0:
            storage_breakdown = work_breakdown.scaled(
                storage_wall_ns / work_breakdown.total_ns
            )
        else:
            storage_breakdown = work_breakdown
        phase_span.set_sim_ns(storage_breakdown.total_ns)
        phase_span.set_attrs(
            bytes_shipped=total_bytes, cpus=cpus, shards=self.shards,
            pipelined=pipelined,
        )

        host_breakdown = self.cost_model.phase_breakdown(
            host_meter, platform="x86", in_enclave=secure
        )
        join_breakdown = (
            host_breakdown.minus(ingest_breakdown) if pipelined else host_breakdown
        )
        host_span.set_sim_ns(join_breakdown.total_ns)
        host_span.set_attrs(rows=len(result.rows))

        transfer_ns = self.cost_model.net_transfer_ns(
            total_bytes,
            messages=max(1, total_batches if pipelined else total_bytes // 65536),
        )
        total = TimeBreakdown()
        total.merge(monitor_breakdown)
        total.merge(storage_breakdown)
        overflow = transfer_ns - storage_breakdown.total_ns
        if overflow > 0:
            total.add(CAT_NETWORK, overflow)
            span = self.tracer.event(
                SPAN_CHANNEL_TRANSFER, node=NODE_NETWORK, bytes=total_bytes
            )
            if span is not None:
                span.set_sim_ns(overflow)
        total.merge(join_breakdown)
        if secure:
            total.add(CAT_POLICY, self.cost_model.tls_handshake_ns)
            span = self.tracer.event(SPAN_SESSION_SETUP, node=NODE_HOST)
            if span is not None:
                span.set_sim_ns(self.cost_model.tls_handshake_ns)

        plan_notes = notes + (
            plan.notes if plan is not None else [manual.note]
        )
        return RunResult(
            config="scs" if secure else "vcs",
            columns=result.columns,
            rows=result.rows,
            breakdown=total,
            storage_breakdown=storage_breakdown,
            host_breakdown=host_breakdown,
            storage_meter=storage_meter,
            host_meter=host_meter,
            bytes_shipped=total_bytes,
            plan_notes=plan_notes,
            portion_meters=portion_meters,
            monitor_breakdown=monitor_breakdown,
        )

    def _ship_portion_serial(
        self, ship, target, engines, channels, ship_meters,
        node_meters, node_durations, portion_meters, run_config, manual,
        *, secure, memory, in_realm,
    ) -> None:
        """Execute one ship on one shard and ship its rows (serial path)."""
        engine = engines[target]
        node = self.nodes[target]
        ship_meter = ship_meters[target]
        portion_meter = engine.fresh_meter()
        portion_meters.append(portion_meter)
        with self.tracer.span(
            SPAN_NDP_FILTER, node=NODE_STORAGE, enclave=in_realm,
            table=ship.table, shard=node.node_id,
        ) as portion_span:
            with self._attributed(node.node_id):
                if manual is not None:
                    result = engine.db.execute(ship.sql)
                    columns, rows = result.columns, result.rows
                    encoded = [encode_row(r) for r in rows]
                    nbytes = sum(map(len, encoded))
                    portion_meter.note_memory(nbytes)
                    column_types = self._infer_column_types(columns, rows)
                else:
                    columns, rows, nbytes, encoded = engine.execute_scan(ship)
                    schema = engine.db.store.catalog.table(ship.table)
                    column_types = [
                        (name, schema.column_type(name)) for name in ship.columns
                    ]
            portion_breakdown = self.cost_model.phase_breakdown(
                portion_meter, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            node_durations[target].append(portion_breakdown.total_ns)
            node_meters[target].merge(portion_meter)
            if secure:
                chan_host, chan_node = channels[target]
                shipped_before = ship_meter.channel_bytes_encrypted
                with self.tracer.span(
                    SPAN_CHANNEL_SHIP, node=NODE_STORAGE,
                    table=ship.table, shard=node.node_id,
                ) as ship_span:
                    # Each shard pads against its *own* catalog bound, so
                    # its channel trace is predicate-independent on its
                    # own — shard traces never need cross-correlation.
                    schedule = None
                    if fixed_ship_schedule(run_config.oblivious):
                        schedule = self._ship_schedule(
                            engine, ship.table, record_rows=RECORD_ROWS
                        )
                    records = 0
                    for start in range(0, max(1, len(rows)), RECORD_ROWS):
                        payload = b"".join(encoded[start : start + RECORD_ROWS])
                        if pads_channel(run_config.oblivious):
                            raw = len(payload)
                            payload = pad_frame(
                                payload,
                                target=(schedule.frame_bytes if schedule else None),
                            )
                            ship_meter.bump("oblivious_pad_bytes", len(payload) - raw)
                        chan_node.send(payload, charge_time=False)
                        chan_host.receive()
                        records += 1
                    if schedule is not None:
                        for _ in range(max(0, schedule.units - records)):
                            filler = dummy_frame(schedule.frame_bytes)
                            ship_meter.bump("oblivious_dummy_batches")
                            ship_meter.bump("oblivious_pad_bytes", len(filler))
                            chan_node.send(filler, charge_time=False)
                            chan_host.receive()
                shipped = ship_meter.channel_bytes_encrypted - shipped_before
                ship_span.set_sim_ns(
                    shipped * self.cost_model.channel_crypto_ns_per_byte
                )
                ship_span.set_attrs(bytes=nbytes, rows=len(rows))
            self.host_engine.receive_table(ship.table, column_types, rows)
        portion_span.set_sim_ns(portion_breakdown.total_ns)
        portion_span.set_attrs(rows=len(rows), bytes=nbytes)
        self._last_bytes = nbytes

    def _ship_portion_pipelined(
        self, ship, target, engines, channels, ship_meters, host_meter,
        node_meters, node_durations, node_serial_ns, node_ingest,
        ingest_breakdown, portion_meters, run_config, compress_level,
        *, secure, memory, in_realm,
    ) -> None:
        """Stream one ship from one shard (pipelined path)."""
        engine = engines[target]
        node = self.nodes[target]
        ship_meter = ship_meters[target]
        portion_meter = engine.fresh_meter()
        portion_meters.append(portion_meter)
        ship_before = ship_meter.copy()
        host_before = host_meter.copy()
        with self.tracer.span(
            SPAN_NDP_FILTER, node=NODE_STORAGE, enclave=in_realm,
            table=ship.table, shard=node.node_id,
        ) as portion_span:
            table_name = ship.table
            schedule = None
            fixed_rows = None
            if fixed_ship_schedule(run_config.oblivious):
                schedule = self._ship_schedule(
                    engine, table_name, batch_bytes=run_config.batch_bytes
                )
                fixed_rows = schedule.rows_per_unit
            with self._attributed(node.node_id):
                if hasattr(ship, "sql"):
                    columns, batches = engine.stream_sql(
                        ship.sql,
                        batch_bytes=run_config.batch_bytes,
                        fixed_rows=fixed_rows,
                    )
                    column_types = None
                else:
                    columns, batches = engine.stream_scan(
                        ship,
                        batch_bytes=run_config.batch_bytes,
                        fixed_rows=fixed_rows,
                    )
                    schema = engine.db.store.catalog.table(ship.table)
                    column_types = [
                        (name, schema.column_type(name)) for name in ship.columns
                    ]
                    self.host_engine.begin_table(table_name, column_types)
                if schedule is not None:
                    batches = list(batches)
                row_weights: list[int] = []
                byte_weights: list[int] = []
                ship_rows = 0
                ship_bytes = 0
                for batch in batches:
                    if column_types is None:
                        column_types = self._infer_column_types(
                            columns, list(batch.rows)
                        )
                        self.host_engine.begin_table(table_name, column_types)
                    frame, saved = pack_frame(batch.payload, compress_level)
                    if pads_channel(run_config.oblivious):
                        raw = len(frame)
                        frame = pad_frame(
                            frame,
                            target=(schedule.frame_bytes if schedule else None),
                        )
                        ship_meter.bump("oblivious_pad_bytes", len(frame) - raw)
                    ship_meter.bump("batches_shipped")
                    if saved:
                        ship_meter.bump("channel_bytes_saved", saved)
                        ship_meter.bump("batch_bytes_compressed", batch.nbytes)
                        host_meter.bump("batch_bytes_decompressed", batch.nbytes)
                    if secure:
                        chan_host, chan_node = channels[target]
                        chan_node.send(frame, charge_time=False)
                        received = chan_host.receive()
                    else:
                        received = frame
                    if pads_channel(run_config.oblivious):
                        received = unpad_frame(received)
                    payload, _ = unpack_frame(received)
                    self.host_engine.ingest_batch(table_name, payload)
                    row_weights.append(batch.row_count)
                    byte_weights.append(len(frame))
                    ship_rows += batch.row_count
                    ship_bytes += len(frame)
                    if self.tracer.enabled:
                        self.tracer.event(
                            SPAN_SHIP_BATCH, node=NODE_STORAGE,
                            table=table_name, shard=node.node_id,
                            seq=len(row_weights) - 1, rows=batch.row_count,
                            bytes=len(frame), saved=saved,
                        )
                if column_types is None:
                    column_types = self._infer_column_types(columns, [])
                    self.host_engine.begin_table(table_name, column_types)
                if schedule is not None:
                    for _ in range(max(0, schedule.units - len(row_weights))):
                        filler = dummy_frame(schedule.frame_bytes)
                        ship_meter.bump("batches_shipped")
                        ship_meter.bump("oblivious_dummy_batches")
                        ship_meter.bump("oblivious_pad_bytes", len(filler))
                        if secure:
                            chan_host, chan_node = channels[target]
                            chan_node.send(filler, charge_time=False)
                            dropped = chan_host.receive()
                        else:
                            dropped = filler
                        assert unpad_frame(dropped) is None
                        row_weights.append(0)
                        byte_weights.append(len(filler))
                        ship_bytes += len(filler)
                self.host_engine.finish_table(table_name)

            portion_breakdown = self.cost_model.phase_breakdown(
                portion_meter, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            ship_cost = self.cost_model.phase_breakdown(
                ship_meter.delta(ship_before), platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=in_realm,
            )
            ingest_cost = self.cost_model.phase_breakdown(
                host_meter.delta(host_before), platform="x86", in_enclave=secure
            )
            ingest_breakdown.merge(ingest_cost)
            node_ingest[target].merge(ingest_cost)
            timings = [
                BatchTiming(scan_ns=s, ship_ns=c, ingest_ns=h)
                for s, c, h in zip(
                    apportion_ns(portion_breakdown.total_ns, row_weights),
                    apportion_ns(ship_cost.total_ns, byte_weights),
                    apportion_ns(ingest_cost.total_ns, row_weights),
                )
            ]
            serial_ns = (
                portion_breakdown.total_ns + ship_cost.total_ns + ingest_cost.total_ns
            )
            makespan = pipelined_ns(timings) if timings else serial_ns
            node_durations[target].append(makespan)
            node_serial_ns[target] += serial_ns
            node_meters[target].merge(portion_meter)
        portion_span.set_sim_ns(makespan)
        portion_span.set_attrs(
            rows=ship_rows, bytes=ship_bytes, batches=len(row_weights),
            serial_ns=serial_ns,
        )
        self._last_bytes = ship_bytes
        self._last_batches = len(row_weights)

    # -- storage-only (sos): per-shard partials, host-side final ----------

    def _run_storage_only_sharded(
        self, statement, cpus, memory, run_config=None
    ) -> RunResult:
        run_config = run_config if run_config is not None else self.run_config
        split = decompose_aggregate(statement)
        if split is None:
            raise PartitionError(
                "storage-only on a sharded deployment needs a shard-decomposable "
                "query (single-table partial→final aggregation); run this query "
                "under scs, or on a single-shard deployment"
            )
        for node in self.nodes:
            node.engine.set_zone_maps(run_config.zone_maps)
            node.engine.set_oblivious(run_config.oblivious)
            node.engine.set_vectorized(run_config.vectorized)
        self.host_engine.set_oblivious(run_config.oblivious)
        self.host_engine.set_vectorized(run_config.vectorized)

        stores = [node.engine.db.store for node in self.nodes]
        catalog = stores[0].catalog
        schema = catalog.table(split.base_table)
        # A replicated base table lives whole on every shard: the partial
        # must run on exactly one copy or aggregates would multiply.
        if self.sharding.is_replicated(split.base_table):
            stores = stores[:1]
        prune_ok = run_config.zone_maps and run_config.oblivious == "off"
        if prune_ok:
            scan = TableScanSpec(
                table=split.base_table,
                columns=list(schema.column_names),
                where=split.partial.where,
            )
            targets, pruned = route_scan(
                stores, split.base_table, pruning_for_scan(catalog, scan)
            )
        else:
            targets, pruned = list(range(len(stores))), 0

        host_meter = self.host_engine.fresh_meter()
        host_meter.bump("shard_scan_fanout", len(targets))
        host_meter.bump("shards_pruned", pruned)

        portion_meters: list[Meter] = []
        node_walls: list[float] = []
        storage_meter = Meter()
        partial_rows: list[tuple] = []
        partial_columns: list[str] | None = None
        partial_bytes = 0
        with self.tracer.span(
            SPAN_STORAGE_PHASE, node=NODE_STORAGE, enclave=self.armv9_realms,
            portions=len(targets), shards=self.shards,
        ) as phase_span:
            self.tracer.event(
                SPAN_SHARD_ROUTE, node=NODE_STORAGE, table=split.base_table,
                fanout=len(targets), pruned=pruned,
            )
            for target in targets:
                node = self.nodes[target]
                meter = node.engine.fresh_meter()
                portion_meters.append(meter)
                with self.tracer.span(
                    SPAN_NDP_FILTER, node=NODE_STORAGE,
                    enclave=self.armv9_realms,
                    table=split.base_table, shard=node.node_id,
                ) as portion_span:
                    with self._attributed(node.node_id):
                        result = node.engine.execute_full(split.partial)
                breakdown = self.cost_model.phase_breakdown(
                    meter, platform="arm", cores=1,
                    memory_limit_bytes=memory, in_realm=self.armv9_realms,
                )
                node_walls.append(breakdown.total_ns)
                storage_meter.merge(meter)
                partial_columns = result.columns
                partial_rows.extend(result.rows)
                partial_bytes += sum(len(encode_row(r)) for r in result.rows)
                portion_span.set_sim_ns(breakdown.total_ns)
                portion_span.set_attrs(rows=len(result.rows))
            slots = arbitrate(
                [SessionTask(i, wall) for i, wall in enumerate(node_walls)],
                max(1, len(self.nodes)),
            )
            storage_wall_ns = makespan_ns(slots)
            work = self.cost_model.phase_breakdown(
                storage_meter, platform="arm", cores=1,
                memory_limit_bytes=memory, in_realm=self.armv9_realms,
            )
            storage_breakdown = (
                work.scaled(storage_wall_ns / work.total_ns)
                if work.total_ns > 0 else work
            )
            phase_span.set_sim_ns(storage_breakdown.total_ns)
            phase_span.set_attrs(
                partial_rows=len(partial_rows), cpus=cpus, shards=self.shards
            )

        # Host-side final: fold the shipped partials inside the enclave.
        host_meter.bump("partial_aggs_merged", len(partial_rows))
        self.host_engine.begin_session()
        with self.tracer.span(
            SPAN_SHARD_MERGE, node=NODE_HOST, enclave=True,
            partials=len(partial_rows), shards=len(targets),
        ) as merge_span:
            columns = (
                partial_columns if partial_columns is not None
                else split.partial_columns
            )
            column_types = self._infer_column_types(columns, partial_rows)
            self.host_engine.receive_table(
                split.partial_table, column_types, partial_rows
            )
            result = self.host_engine.run(split.final)
            self.monitorless_cleanup()
        host_breakdown = self.cost_model.phase_breakdown(
            host_meter, platform="x86", in_enclave=True
        )
        merge_span.set_sim_ns(host_breakdown.total_ns)
        merge_span.set_attrs(rows=len(result.rows))

        total = TimeBreakdown()
        total.merge(storage_breakdown)
        if targets:
            # Partials only exist once the scans finish: their transfer
            # cannot overlap the storage phase.
            transfer_ns = self.cost_model.net_transfer_ns(
                partial_bytes, messages=max(1, len(targets))
            )
            total.add(CAT_NETWORK, transfer_ns)
            span = self.tracer.event(
                SPAN_CHANNEL_TRANSFER, node=NODE_NETWORK, bytes=partial_bytes
            )
            if span is not None:
                span.set_sim_ns(transfer_ns)
        total.merge(host_breakdown)
        return RunResult(
            config="sos",
            columns=result.columns,
            rows=result.rows,
            breakdown=total,
            storage_breakdown=storage_breakdown,
            host_breakdown=host_breakdown,
            storage_meter=storage_meter,
            host_meter=host_meter,
            bytes_shipped=partial_bytes,
            plan_notes=[
                f"partial→final aggregation over {split.base_table}: "
                f"{len(targets)}/{self.shards} shards scanned, "
                f"{len(partial_rows)} partial rows merged host-side"
            ],
            portion_meters=portion_meters,
        )

    # -- host-only (hons / hos): the host pulls pages from every shard ----

    def _run_host_only_sharded(
        self, statement, secure, run_config=None
    ) -> RunResult:
        run_config = run_config if run_config is not None else self.run_config
        plan = self.partitioner.partition(statement)
        self.host_engine.set_oblivious(run_config.oblivious)
        self.host_engine.set_vectorized(run_config.vectorized)
        host_meter = self.host_engine.fresh_meter()
        self.host_engine.begin_session()
        fetch_breakdown = TimeBreakdown()
        portion_meters: list[Meter] = []
        with self.tracer.span(
            SPAN_HOST_EXECUTE, node=NODE_HOST, enclave=secure, shards=self.shards
        ) as exec_span:
            for index, node in enumerate(self.nodes):
                db, pager = self._host_only_db(
                    secure,
                    engine=node.engine,
                    plain_device=node.plain_device,
                    rng_label=f"host-pager-{node.node_id}",
                )
                if secure:
                    pager.on_violation = self._node_violation(node.node_id)
                db.set_zone_maps(run_config.zone_maps)
                db.set_oblivious(run_config.oblivious)
                db.set_vectorized(run_config.vectorized)
                db.tracer = self.tracer
                meter = Meter()
                db.store.meter = meter
                pager.meter = meter
                if secure:
                    pager.tree.meter = meter
                    pager.tracer = self.tracer
                    pager.trace_node = NODE_HOST
                for scan in plan.scans:
                    if index > 0 and self.sharding.is_replicated(scan.table):
                        continue
                    with self._attributed(node.node_id):
                        fetched = db.execute_statement(scan.to_select())
                    schema = node.engine.db.store.catalog.table(scan.table)
                    column_types = [
                        (name, schema.column_type(name)) for name in scan.columns
                    ]
                    self.host_engine.receive_table(
                        scan.table, column_types, fetched.rows
                    )
                if secure:
                    meter.enclave_transitions += 2 * meter.pages_read
                    meter.peak_memory_bytes += pager.tree_size_bytes()
                portion_meters.append(meter)
                # The host is one machine pulling remote pages shard after
                # shard: the fetches serialize (this is exactly why the
                # optimizer steers large scans away from host-only).
                fetch_breakdown.merge(
                    self.cost_model.phase_breakdown(
                        meter, platform="x86", in_enclave=secure, remote_io=True
                    )
                )
            with self.tracer.span(
                SPAN_HOST_JOIN_AGG, node=NODE_HOST, enclave=secure
            ) as host_span:
                result = self.host_engine.run(statement)
                self.monitorless_cleanup()
            host_exec = self.cost_model.phase_breakdown(
                host_meter, platform="x86", in_enclave=secure
            )
            host_span.set_sim_ns(host_exec.total_ns)
            host_span.set_attrs(rows=len(result.rows))
            total = fetch_breakdown.copy().merge(host_exec)
            exec_span.set_sim_ns(total.total_ns)
            exec_span.set_attrs(
                rows=len(result.rows),
                pages_read=sum(m.pages_read for m in portion_meters),
            )
        for meter in portion_meters:
            host_meter.merge(meter)
        return RunResult(
            config="hos" if secure else "hons",
            columns=result.columns,
            rows=result.rows,
            breakdown=total,
            host_breakdown=total.copy(),
            host_meter=host_meter,
            portion_meters=portion_meters,
            plan_notes=[
                f"host-side pull of {len(plan.scans)} filtered table scans "
                f"from {self.shards} shards (serialized on the host)"
            ],
        )

"""Shard-level routing: skip whole shards before any page I/O.

Every shard maintains the same authenticated per-page zone maps as a
single-node deployment (PR 5).  Folding a shard's page synopses for one
table into a single *table-level* synopsis gives a min/max/null-count
summary of everything that shard holds — and probing it with the scan's
:class:`~repro.stats.PruningPredicate` answers "can this shard contain
any matching row at all?" without touching a page.  Pruning fails
closed exactly like page-level skip-scans: a missing or stale synopsis
means the shard is scanned.
"""

from __future__ import annotations

from ..stats import PageSynopsis, PruningPredicate


def _merge_entry(a, b):
    """Fold two per-column ``(min, max, null_count)`` entries."""
    if a is None or b is None:
        return None
    lo = a[0] if b[0] is None else (b[0] if a[0] is None else min(a[0], b[0]))
    hi = a[1] if b[1] is None else (b[1] if a[1] is None else max(a[1], b[1]))
    return (lo, hi, a[2] + b[2])


def table_synopsis(store, table_name: str) -> PageSynopsis | None:
    """Fold one shard's page synopses for *table_name* into one summary.

    Returns ``None`` — meaning "don't know, fail closed" — unless the
    shard's zone maps cover exactly the table's current page set.
    *store* is the shard engine's paged store (its catalog and
    ``zone_maps`` mapping are the only things consulted).
    """
    schema = store.catalog.table(table_name)
    if not schema.pages:
        return PageSynopsis(0, [None] * len(schema.column_names))
    maps = store.zone_maps.get(table_name)
    if maps is None or not maps.covers(schema.pages):
        return None
    merged = None
    row_count = 0
    for page_no in schema.pages:
        synopsis = maps.pages[page_no]
        row_count += synopsis.row_count
        if merged is None:
            merged = list(synopsis.entries)
        else:
            merged = [
                _merge_entry(a, b) for a, b in zip(merged, synopsis.entries)
            ]
    return PageSynopsis(row_count, merged or [])


def route_scan(
    stores, table_name: str, predicate: PruningPredicate | None
) -> tuple[list[int], int]:
    """Pick the shards a scan of *table_name* must visit.

    *stores* is the per-shard list of paged stores.  A shard is skipped
    when its table-level synopsis proves it empty, or proves the scan's
    pruning *predicate* cannot match anything it holds.  Returns
    ``(target shard indexes, shards pruned)``.
    """
    targets: list[int] = []
    pruned = 0
    for index, store in enumerate(stores):
        synopsis = table_synopsis(store, table_name)
        if synopsis is not None and synopsis.row_count == 0:
            pruned += 1
            continue
        if (
            predicate is not None
            and synopsis is not None
            and not predicate.page_may_match(synopsis)
        ):
            pruned += 1
            continue
        targets.append(index)
    return targets, pruned

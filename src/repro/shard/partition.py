"""Table partitioning across storage shards.

Three schemes, chosen per table:

* ``hash`` — FNV-1a over the canonical repr of the partition-column
  value, modulo the shard count.  Because the hash depends only on the
  *value*, two tables hashed on join-compatible columns (customer on
  ``c_custkey``, orders on ``o_custkey``) are automatically
  co-partitioned: matching rows land on the same shard.
* ``range`` — ascending split points over the partition column; shard
  ``i`` owns values in ``[bounds[i-1], bounds[i])``.
* ``replicate`` — every shard holds a full copy (the tiny dimension
  tables); scans read it from one shard only.

The default TPC-H layout hash-partitions the large tables on the keys
the paper's manual splits group/join on (so Q13's customer⟕orders and
Q21's per-order lineitem reductions stay shard-local), range-partitions
``part`` on ``p_partkey`` (contiguous keys, so ranges balance), and
replicates ``nation`` and ``region``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import PartitionError
from ..tpch import Cardinalities

#: Valid :attr:`TablePartitioning.scheme` values.
SCHEMES = ("hash", "range", "replicate")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF


def hash_value(value: object) -> int:
    """Deterministic 64-bit FNV-1a of a partition-column value.

    Hashes the canonical ``repr`` so equal values hash equally across
    tables and runs regardless of column or table — the property that
    makes value-hashed tables co-partitioned.  Pure arithmetic, no
    crypto: partition placement is not a secret.
    """
    digest = _FNV_OFFSET
    for byte in repr(value).encode("utf-8"):
        digest ^= byte
        digest = (digest * _FNV_PRIME) & _FNV_MASK
    return digest


@dataclass(frozen=True)
class TablePartitioning:
    """How one table's rows map to shards."""

    scheme: str
    #: Partition column (hash/range schemes).
    column: str | None = None
    #: Index of that column in the table's row tuples.
    column_index: int | None = None
    #: Ascending split points (range scheme): shard ``i`` owns values
    #: ``v`` with ``bisect_right(bounds, v) == i``.
    bounds: tuple = ()

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise PartitionError(
                f"partition scheme must be one of {', '.join(SCHEMES)}; "
                f"got {self.scheme!r}"
            )
        if self.scheme != "replicate" and self.column_index is None:
            raise PartitionError(f"{self.scheme} partitioning needs a column index")

    def shard_of(self, row: tuple, shards: int) -> int | None:
        """Owning shard of *row*, or ``None`` for replicated tables."""
        if self.scheme == "replicate":
            return None
        value = row[self.column_index]
        if self.scheme == "hash":
            return hash_value(value) % shards
        return min(bisect.bisect_right(self.bounds, value), shards - 1)


@dataclass(frozen=True)
class ShardingSpec:
    """The full layout: shard count + per-table partitioning."""

    shards: int
    tables: dict[str, TablePartitioning] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise PartitionError(f"need at least one shard, got {self.shards}")

    def partitioning(self, table: str) -> TablePartitioning:
        """Partitioning of *table* (unknown tables are replicated)."""
        return self.tables.get(table, TablePartitioning("replicate"))

    def is_replicated(self, table: str) -> bool:
        return self.partitioning(table).scheme == "replicate"

    def shard_rows(self, table: str, rows) -> list[list[tuple]]:
        """Split *rows* into one list per shard (replicated: full copies)."""
        per_shard: list[list[tuple]] = [[] for _ in range(self.shards)]
        part = self.partitioning(table)
        if part.scheme == "replicate":
            full = list(rows)
            return [list(full) for _ in range(self.shards)]
        for row in rows:
            per_shard[part.shard_of(row, self.shards)].append(row)
        return per_shard

    def co_partitioned(self, requires) -> bool:
        """Are all ``(table, column)`` pairs hash-partitioned on exactly
        that column?  Value-hashing then guarantees matching keys share a
        shard across all the named tables."""
        for table, column in requires:
            part = self.tables.get(table)
            if part is None or part.scheme != "hash" or part.column != column:
                return False
        return True


def range_bounds(n_keys: int, shards: int) -> tuple:
    """Split points carving contiguous keys ``1..n_keys`` into *shards*
    near-equal ranges."""
    return tuple(1 + (n_keys * i) // shards for i in range(1, shards))


def default_tpch_sharding(shards: int, scale_factor: float) -> ShardingSpec:
    """The default TPC-H layout (see the module docstring)."""
    card = Cardinalities.for_scale(scale_factor)
    return ShardingSpec(
        shards=shards,
        tables={
            # Q13 co-partition: a customer's orders share its shard.
            "customer": TablePartitioning("hash", "c_custkey", 0),
            "orders": TablePartitioning("hash", "o_custkey", 1),
            # Q21 requirement: an order's lineitems share a shard.
            "lineitem": TablePartitioning("hash", "l_orderkey", 0),
            "supplier": TablePartitioning("hash", "s_suppkey", 0),
            "partsupp": TablePartitioning("hash", "ps_partkey", 0),
            "part": TablePartitioning(
                "range", "p_partkey", 0, bounds=range_bounds(card.part, shards)
            ),
            "nation": TablePartitioning("replicate"),
            "region": TablePartitioning("replicate"),
        },
    )

"""The five GDPR anti-pattern use-cases (paper §4.3 and Table 3).

Each scenario pairs a *non-secure* baseline (a plain engine executing the
raw query, no monitor, no secure storage) with the *IronSafe* path (the
monitor admits the request under the database's access policy, applies the
obliged rewrites, and the query executes over the secure storage engine).
Timings are simulated milliseconds, so the Table 3 comparison is
deterministic.

Scenarios:

1. **Timely deletion** — ``le(T, expiry_ts)``: expired records become
   invisible to reads even before physical deletion.
2. **Indiscriminate use** — ``reuseMap(reuse_map)``: rows are only visible
   to services whose consent bit is set.
3. **Transparent sharing** — ``logUpdate(sharing)``: every read by the
   consumer is recorded in a tamper-evident log the owner can audit.
4. **Risk-agnostic processing** — an execution policy pins processing to
   attested nodes in approved locations with a firmware floor.
5. **Undetected data breaches** — every access leaves an audit-log entry;
   a breach investigation replays the hash chain and enumerates accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.deployment import Deployment
from ..errors import ComplianceError, MonitorError
from ..monitor import verify_proof
from ..sim import Meter, TimeBreakdown
from ..sql import Database, PagedStore
from ..sql.parser import parse
from ..storage import BlockDevice, Pager

PERSONS_DDL = """
    CREATE TABLE persons (
        person_id INTEGER,
        name TEXT,
        email TEXT,
        country TEXT,
        salary REAL,
        expiry_ts INTEGER,
        reuse_map INTEGER
    )
"""

# The owner (producer) is 'alice'; the consumer service is 'bob'.
ACCESS_POLICY = """
read :- sessionKeyIs(alice)
read :- sessionKeyIs(bob) & le(T, expiry_ts) & reuseMap(reuse_map) & logUpdate(sharing)
write :- sessionKeyIs(alice)
"""

EXEC_POLICY = "storageLocIs(eu-west) & fwVersionStorage('5.4.3') & hostLocIs(eu-central)"


@dataclass
class ScenarioResult:
    name: str
    baseline_ms: float
    ironsafe_ms: float
    detail: str = ""

    @property
    def overhead(self) -> float:
        return self.ironsafe_ms / self.baseline_ms if self.baseline_ms else float("inf")


class GDPRWorkbench:
    """Builds the personal-data deployment and runs the five scenarios."""

    def __init__(self, seed: int = 7, rows: int = 4000):
        self.deployment = Deployment(
            seed=seed, workload="none", database_name="persons-db"
        )
        self.deployment.attest_all()
        self.rows = rows

        rng = self.deployment.rng.fork("gdpr")
        self.alice = rng.bytes(32).hex()
        self.bob = rng.bytes(32).hex()

        self.policy = self.deployment.monitor.provision_database(
            "persons-db",
            policy_text=ACCESS_POLICY,
            key_directory={"alice": self.alice, "bob": self.bob},
            reuse_positions={self.bob: 3},
            protected_tables={"persons"},
            default_ttl=3600,
        )

        # Secure store (IronSafe path) and the plain baseline database —
        # the baseline is the same engine over an unprotected on-disk store
        # on the host, i.e. a conventional non-secure deployment.
        self.secure_db = self.deployment.storage_engine.db
        self.secure_db.execute(PERSONS_DDL)
        self.baseline_db = Database(PagedStore(Pager(BlockDevice("baseline"))))
        self.baseline_db.execute(PERSONS_DDL)
        self._seed_rows(rng)

    # ------------------------------------------------------------------

    def _seed_rows(self, rng) -> None:
        countries = ["DE", "FR", "PT", "UK", "US"]
        rows = []
        for i in range(self.rows):
            expiry = 1000 if i % 10 == 0 else 10_000  # 10% already expired at t=5000
            reuse = 0b1111 if i % 3 else 0b0111  # every 3rd row opts out of bit 3
            rows.append(
                (
                    i,
                    f"person-{i}",
                    f"p{i}@example.com",
                    countries[i % len(countries)],
                    30_000.0 + i,
                    expiry,
                    reuse,
                )
            )
        self.secure_db.store.insert_rows("persons", rows)
        self.secure_db.commit()
        self.baseline_db.store.insert_rows("persons", rows)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------

    def run_baseline(self, sql: str):
        """Plain engine, no monitor, no secure storage: Table 3 baseline."""
        meter = Meter()
        self.baseline_db.store.meter = meter
        self.baseline_db.store.pager.meter = meter
        result = self.baseline_db.execute(sql)
        breakdown = self.deployment.cost_model.phase_breakdown(meter, platform="x86")
        return result, breakdown

    def run_ironsafe(self, sql: str, client_key: str, now: int = 5000,
                     exec_policy: str | None = None):
        """Monitor-admitted, policy-rewritten, securely executed request."""
        deployment = self.deployment
        clock_before = deployment.clock.breakdown.copy()
        auth = deployment.monitor.authorize(
            "persons-db",
            client_key=client_key,
            statement=parse(sql),
            host_id="host-1",
            exec_policy_text=exec_policy,
            now=now,
            query_text=sql,
        )
        monitor_breakdown = deployment.clock.breakdown.minus(clock_before)

        meter = deployment.storage_engine.fresh_meter()
        result = deployment.storage_engine.db.execute_statement(auth.statement)
        deployment.storage_engine.commit()
        exec_breakdown = deployment.cost_model.phase_breakdown(
            meter, platform="arm", cores=1
        )
        total = TimeBreakdown()
        total.merge(monitor_breakdown)
        total.merge(exec_breakdown)
        verify_proof(auth.proof, deployment.monitor.public_key)
        deployment.monitor.finish_session(auth.session.session_id)
        return result, total, auth

    # ------------------------------------------------------------------
    # The five anti-patterns
    # ------------------------------------------------------------------

    def scenario_timely_deletion(self) -> ScenarioResult:
        sql = "SELECT person_id, name FROM persons WHERE country = 'DE'"
        base_result, base_bd = self.run_baseline(sql)
        iron_result, iron_bd, _ = self.run_ironsafe(sql, self.bob)
        hidden = len(base_result.rows) - len(iron_result.rows)
        return ScenarioResult(
            "timely deletion",
            base_bd.total_ms,
            iron_bd.total_ms,
            detail=f"{hidden} expired rows filtered out",
        )

    def scenario_indiscriminate_use(self) -> ScenarioResult:
        sql = "SELECT count(*) FROM persons"
        base_result, base_bd = self.run_baseline(sql)
        iron_result, iron_bd, _ = self.run_ironsafe(sql, self.bob)
        return ScenarioResult(
            "indiscriminate use",
            base_bd.total_ms,
            iron_bd.total_ms,
            detail=(
                f"baseline sees {base_result.scalar()} rows, "
                f"consented view {iron_result.scalar()}"
            ),
        )

    def scenario_transparent_sharing(self) -> ScenarioResult:
        sql = "SELECT name, email FROM persons WHERE person_id < 10"
        base_result, base_bd = self.run_baseline(sql)
        before = len(self._sharing_log_entries())
        _, iron_bd, _ = self.run_ironsafe(sql, self.bob)
        after = len(self._sharing_log_entries())
        return ScenarioResult(
            "transparent sharing",
            base_bd.total_ms,
            iron_bd.total_ms,
            detail=f"audit log grew {before} → {after}",
        )

    def _sharing_log_entries(self):
        try:
            return self.deployment.monitor.audit_log("sharing").entries
        except MonitorError:
            # Only "log not created yet" is benign; integrity failures
            # on the log itself must keep propagating.
            return []

    def scenario_risk_agnostic(self) -> ScenarioResult:
        sql = "SELECT country, count(*) FROM persons GROUP BY country"
        base_result, base_bd = self.run_baseline(sql)
        _, iron_bd, auth = self.run_ironsafe(sql, self.bob, exec_policy=EXEC_POLICY)
        # A policy demanding an unavailable region must refuse execution.
        # With no compliant storage node the query may still run host-only
        # (paper §4.2); refusal happens when the *host* is non-compliant.
        refused = False
        try:
            self.run_ironsafe(sql, self.bob, exec_policy="hostLocIs(us-east)")
        except ComplianceError:
            refused = True
        return ScenarioResult(
            "risk-agnostic processing",
            base_bd.total_ms,
            iron_bd.total_ms,
            detail=f"non-compliant region refused: {refused}",
        )

    def scenario_data_breaches(self) -> ScenarioResult:
        sql = "SELECT email FROM persons WHERE person_id = 42"
        base_result, base_bd = self.run_baseline(sql)
        _, iron_bd, _ = self.run_ironsafe(sql, self.bob)
        # Breach investigation: verify the chain and enumerate bob's reads.
        log = self.deployment.monitor.audit_log("sharing")
        log.verify_chain()
        accesses = len(log.entries_for(self.bob))
        return ScenarioResult(
            "undetected data breaches",
            base_bd.total_ms,
            iron_bd.total_ms,
            detail=f"{accesses} consumer accesses on tamper-evident record",
        )

    def run_all(self) -> list[ScenarioResult]:
        return [
            self.scenario_timely_deletion(),
            self.scenario_indiscriminate_use(),
            self.scenario_transparent_sharing(),
            self.scenario_risk_agnostic(),
            self.scenario_data_breaches(),
        ]

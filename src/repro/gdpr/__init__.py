"""GDPR anti-pattern scenarios (paper §4.3, Table 3)."""

from .scenarios import ACCESS_POLICY, EXEC_POLICY, GDPRWorkbench, ScenarioResult

__all__ = ["ACCESS_POLICY", "EXEC_POLICY", "GDPRWorkbench", "ScenarioResult"]

"""Unified metrics registry: counters, gauges and histograms with labels.

The registry absorbs the existing :class:`~repro.sim.Meter` objects — every
``Meter.bump`` becomes visible as a named metric with ``node``/``phase``
labels — and adds snapshot/diff APIs so experiments can measure exactly
what one query (or one sweep step) contributed.

Ad-hoc counter names (``Meter.bump`` silently routes unknown names into
``Meter.extra``) are still absorbed, but the registry warns **once per
name** so typo'd counters surface instead of vanishing into ``extra``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from ..sim import Meter

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonically increasing value."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """Last-write value (also tracks the high-water mark)."""

    name: str
    labels: _LabelKey = ()
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value


@dataclass
class Histogram:
    """Distribution summary (count/sum/min/max + exact percentiles).

    Samples are retained so percentiles are exact — the populations here
    (per-span-name sim-times, per-query latencies) are small and the
    simulator values them deterministic over compact.
    """

    name: str
    labels: _LabelKey = ()
    count: int = 0
    sum: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    values: list[float] = field(default_factory=list, repr=False)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.values.append(value)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (p in [0, 100]) over observed values."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[max(0, min(len(ordered), rank) - 1)]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class MetricsRegistry:
    """All metrics of one tracer/deployment, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], object] = {}
        self._warned_names: set[str] = set()

    # -- get-or-create --------------------------------------------------

    def _get(self, cls, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- Meter absorption -----------------------------------------------

    def absorb_meter(self, meter: Meter, *, node: str = "", phase: str = "") -> None:
        """Fold one phase meter into labelled metrics.

        Known counters — declared fields and names declared via
        ``Meter.register_counter`` — land under ``meter.<name>``; the peak
        working set becomes a gauge; any remaining ad-hoc ``extra`` names
        are absorbed under ``meter.extra.<name>`` with a one-time warning
        each (they are usually typos — see :meth:`Meter.counter_names`).
        """
        known = Meter.counter_names()
        for name in known:
            value = meter.get(name)
            if not value:
                continue
            if name == "peak_memory_bytes":
                gauge = self.gauge("meter.peak_memory_bytes", node=node, phase=phase)
                gauge.set(max(gauge.value, value))
            else:
                self.counter(f"meter.{name}", node=node, phase=phase).inc(value)
        known_set = set(known)
        for name, value in meter.extra.items():
            if name in known_set:
                continue  # registered counter, absorbed above
            self.warn_unknown_counter(name)
            self.counter(f"meter.extra.{name}", node=node, phase=phase).inc(value)

    def warn_unknown_counter(self, name: str) -> None:
        """Warn once that *name* is not a declared ``Meter`` counter."""
        if name in self._warned_names:
            return
        self._warned_names.add(name)
        warnings.warn(
            f"meter counter {name!r} is not declared on Meter "
            f"(typo? declared: {', '.join(Meter.counter_names())}); "
            "it was absorbed under meter.extra.*",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- snapshot / diff -------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Flat, deterministic view: ``name{label=value,...}`` → number."""
        out: dict[str, float] = {}
        for (name, labels), metric in self._metrics.items():
            key = _format_key(name, labels)
            if isinstance(metric, Counter):
                out[key] = metric.value
            elif isinstance(metric, Gauge):
                out[key] = metric.value
                out[key + ".max"] = metric.max_value
            elif isinstance(metric, Histogram):
                out[key + ".count"] = float(metric.count)
                out[key + ".sum"] = metric.sum
                if metric.count:
                    out[key + ".min"] = metric.min
                    out[key + ".max"] = metric.max
                    out[key + ".p50"] = metric.p50
                    out[key + ".p95"] = metric.p95
                    out[key + ".p99"] = metric.p99
        return dict(sorted(out.items()))

    @staticmethod
    def diff(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
        """Per-key change between two snapshots (zero deltas dropped)."""
        out: dict[str, float] = {}
        for key in sorted(set(before) | set(after)):
            delta = after.get(key, 0.0) - before.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    def __len__(self) -> int:
        return len(self._metrics)

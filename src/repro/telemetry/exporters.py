"""Trace exporters: JSONL event streams and Chrome trace-event JSON.

* **JSONL** is the canonical on-disk format: one JSON object per line
  (``{"type": "span", ...}``), ending with an optional metrics snapshot
  line.  It round-trips losslessly through :func:`read_jsonl`.
* **Chrome trace-event format** (``chrome://tracing`` / Perfetto): each
  node becomes a "process", spans become complete (``X``) events with
  microsecond timestamps in *simulated* time, and zero-duration marker
  spans (per-page ``merkle_verify`` etc.) become instant (``i``) events.

Simulated time in this system advances only where code charges the
``SimClock``; phases costed from meters after the fact all share one
clock reading.  Exported timelines therefore use a **sequential layout**:
children are placed back to back inside their parent, and a parent's
extent is at least the sum of its children.  The result is a flame graph
of simulated nanoseconds that matches the benchmark breakdowns exactly,
deterministic across machines.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .spans import Span, Trace

NS_PER_US = 1_000.0


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def trace_events(traces: Iterable[Trace]) -> list[dict]:
    events = []
    for trace in traces:
        for span in trace.spans:
            events.append(span.to_dict())
    return events


def write_jsonl(
    traces: Iterable[Trace],
    destination: str | os.PathLike | IO[str],
    metrics: MetricsRegistry | None = None,
) -> None:
    """Stream spans (and an optional metrics snapshot) as JSON lines."""

    def _write(fp: IO[str]) -> None:
        for event in trace_events(traces):
            fp.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        if metrics is not None:
            fp.write(
                json.dumps(
                    {"type": "metrics", "values": metrics.snapshot()}, sort_keys=True
                )
                + "\n"
            )

    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as fp:
            _write(fp)
    else:
        _write(destination)


def read_jsonl(source: str | os.PathLike | IO[str]) -> tuple[list[Trace], dict[str, float]]:
    """Load traces (and the metrics snapshot, if present) back."""

    def _read(fp: IO[str]) -> tuple[list[Trace], dict[str, float]]:
        traces: dict[str, Trace] = {}
        order: list[str] = []
        metrics: dict[str, float] = {}
        for line in fp:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("type")
            if kind == "span":
                span = Span.from_dict(data)
                trace = traces.get(span.trace_id)
                if trace is None:
                    trace = Trace(span.trace_id)
                    traces[span.trace_id] = trace
                    order.append(span.trace_id)
                trace.add(span)
            elif kind == "metrics":
                metrics.update(data.get("values", {}))
        return [traces[tid] for tid in order], metrics

    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as fp:
            return _read(fp)
    return _read(source)


# ---------------------------------------------------------------------------
# Sequential layout (shared by the chrome exporter and the tree renderer)
# ---------------------------------------------------------------------------


def sequential_layout(trace: Trace, origin_ns: float = 0.0) -> dict[int, tuple[float, float]]:
    """Assign ``span_id -> (start_ns, duration_ns)`` on a virtual timeline.

    Children are placed back to back from their parent's start; a span's
    extent is ``max(own sim_ns, sum of children)`` so the flame graph
    nests correctly even when a parent's stamped time is finer-grained
    than its children's counts (or vice versa).
    """
    children: dict[int | None, list[Span]] = {}
    for span in trace.spans:
        children.setdefault(span.parent_id, []).append(span)

    placed: dict[int, tuple[float, float]] = {}

    def place(span: Span, start: float) -> float:
        cursor = start
        child_total = 0.0
        for child in children.get(span.span_id, ()):
            extent = place(child, cursor)
            cursor += extent
            child_total += extent
        extent = max(span.sim_ns, child_total)
        placed[span.span_id] = (start, extent)
        return extent

    cursor = origin_ns
    for root in children.get(None, ()):
        cursor += place(root, cursor)
    return placed


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def to_chrome_trace(traces: Iterable[Trace]) -> dict:
    """Build a ``chrome://tracing`` / Perfetto-loadable trace dict.

    Multiple traces are laid out one after another on the shared
    simulated timeline.  Nodes map to process ids (with ``process_name``
    metadata); every span runs on ``tid`` 1 of its node.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []

    def pid_for(node: str) -> int:
        label = node or "unattributed"
        pid = pids.get(label)
        if pid is None:
            pid = len(pids) + 1
            pids[label] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        return pid

    origin = 0.0
    for trace in traces:
        layout = sequential_layout(trace, origin)
        for span in trace.spans:
            start_ns, dur_ns = layout[span.span_id]
            args: dict[str, object] = dict(span.attributes)
            args["trace_id"] = trace.trace_id
            args["sim_ns"] = span.sim_ns
            args["wall_ns"] = span.wall_ns
            args["enclave"] = span.enclave
            if span.audit:
                args["audit"] = [dict(ref) for ref in span.audit]
            if span.status != "ok":
                args["status"] = span.status
            event = {
                "name": span.name,
                "cat": "sim",
                "pid": pid_for(span.node),
                "tid": 1,
                "ts": start_ns / NS_PER_US,
                "args": args,
            }
            if dur_ns > 0:
                event["ph"] = "X"
                event["dur"] = dur_ns / NS_PER_US
            else:
                event["ph"] = "i"
                event["s"] = "t"
            events.append(event)
        if layout:
            origin = max(start + dur for start, dur in layout.values())

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    traces: Iterable[Trace], destination: str | os.PathLike | IO[str]
) -> None:
    document = to_chrome_trace(traces)
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as fp:
            json.dump(document, fp, sort_keys=True, default=str)
    else:
        json.dump(document, destination, sort_keys=True, default=str)

"""``repro-trace``: inspect, export and diff trace files.

Subcommands over the JSONL traces written by the instrumented deployment
(``Deployment.enable_tracing()`` + ``repro.telemetry.write_jsonl``):

* ``summary TRACE``      — per-span-name totals across all traces
* ``tree TRACE``         — indented span tree per trace
* ``top TRACE [-n N]``   — largest spans by simulated self-time
* ``export TRACE -o OUT``— re-export (chrome trace-event or JSONL)
* ``diff OLD NEW``       — per-span-name simulated-time change
"""

from __future__ import annotations

import argparse
import sys

from .exporters import read_jsonl, write_chrome_trace, write_jsonl
from .render import render_diff, render_summary, render_top, render_tree


def _load(path: str):
    try:
        return read_jsonl(path)
    except OSError as exc:
        raise SystemExit(f"repro-trace: cannot read {path!r}: {exc}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        # Truncated/garbage JSONL or records missing required span fields.
        print(f"repro-trace: malformed trace file {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="inspect, export and diff repro.telemetry trace files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="per-span-name totals")
    p.add_argument("trace", help="JSONL trace file")

    p = sub.add_parser("tree", help="indented span tree per trace")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--trace-id", help="render only this trace id")

    p = sub.add_parser("top", help="largest spans by simulated self-time")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("-n", type=int, default=10, help="how many spans (default 10)")

    p = sub.add_parser("export", help="re-export a trace file")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("-o", "--output", required=True, help="output path")
    p.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome trace-event JSON (default) or normalized JSONL",
    )

    p = sub.add_parser("diff", help="compare two trace files")
    p.add_argument("old", help="baseline JSONL trace file")
    p.add_argument("new", help="candidate JSONL trace file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "summary":
        traces, metrics = _load(args.trace)
        print(render_summary(traces))
        if metrics:
            print(f"\n{len(metrics)} metric value(s) in snapshot")
        return 0

    if args.command == "tree":
        traces, _ = _load(args.trace)
        if args.trace_id:
            traces = [t for t in traces if t.trace_id == args.trace_id]
            if not traces:
                print(f"no trace with id {args.trace_id!r}", file=sys.stderr)
                return 1
        print("\n\n".join(render_tree(t) for t in traces))
        return 0

    if args.command == "top":
        traces, _ = _load(args.trace)
        print(render_top(traces, args.n))
        return 0

    if args.command == "export":
        traces, _ = _load(args.trace)
        if args.format == "chrome":
            write_chrome_trace(traces, args.output)
        else:
            write_jsonl(traces, args.output)
        total_spans = sum(len(t) for t in traces)
        print(f"wrote {len(traces)} trace(s), {total_spans} spans to {args.output}")
        return 0

    if args.command == "diff":
        before, _ = _load(args.old)
        after, _ = _load(args.new)
        print(render_diff(before, after))
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

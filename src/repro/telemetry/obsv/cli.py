"""``repro-leak``: meter leakage over observable-trace files.

Subcommands over the JSONL observable traces written by
``repro.telemetry.write_obsv_jsonl`` (one trace per line):

* ``report FILE``        — leakage report per group (``--group-by`` attr)
* ``compare FILE FILE``  — adversary's diff of two traces (first of each
  file by default, ``--a-id``/``--b-id`` to pick by obsv id)
* ``sweep FILE``         — (sim-time, leakage) table across groups, the
  shape ``bench_leakage_selectivity`` emits
* ``gate FILE...``       — CI leakage-regression gate: every group whose
  name matches a ``--require`` glob must be leak-free (one fingerprint,
  0.0 MI bits) or the command exits 1

Exit status: 0 on success, 1 on unreadable input/ids or a failed gate,
2 on malformed trace files.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys

from .events import ObservableTrace, read_obsv_jsonl
from .leakage import compare_traces, leakage_report, sweep_reports


def _load(path: str) -> list[ObservableTrace]:
    try:
        return read_obsv_jsonl(path)
    except OSError as exc:
        raise SystemExit(f"repro-leak: cannot read {path!r}: {exc}") from exc
    except (ValueError, KeyError, TypeError) as exc:
        print(f"repro-leak: malformed observable-trace file {path!r}: {exc}",
              file=sys.stderr)
        raise SystemExit(2) from exc


def _render_report(report) -> str:
    lines = [
        f"group {report.group or '(all)'}: {report.traces} trace(s), "
        f"{report.distinct_fingerprints} distinct fingerprint(s), "
        f"distinguishability {report.distinguishability:.3f}, "
        f"MI {report.mi_bits:.3f} bits"
        + ("  [leak-free]" if report.leak_free else ""),
    ]
    if report.channels:
        lines.append(
            f"  {'channel':8s} {'events':>8s} {'bytes':>12s} "
            f"{'patterns':>9s} {'divergence':>11s} {'byte var':>12s}"
        )
        for c in report.channels:
            lines.append(
                f"  {c.channel:8s} {c.events:8d} {c.bytes_total:12d} "
                f"{c.distinct_patterns:9d} {c.divergence:11.3f} {c.byte_variance:12.1f}"
            )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-leak",
        description="meter predicate leakage over observable-trace files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="leakage report per trace group")
    p.add_argument("traces", help="observable-trace JSONL file")
    p.add_argument("--group-by", default="group",
                   help="trace attribute to group by (default: group)")
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser("compare", help="adversary's diff of two traces")
    p.add_argument("a", help="observable-trace JSONL file")
    p.add_argument("b", help="observable-trace JSONL file")
    p.add_argument("--a-id", help="obsv id in A (default: first trace)")
    p.add_argument("--b-id", help="obsv id in B (default: first trace)")
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser("sweep", help="(sim-time, leakage) pairs across groups")
    p.add_argument("traces", help="observable-trace JSONL file")
    p.add_argument("--group-by", default="group",
                   help="trace attribute to group by (default: group)")
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser("gate", help="fail if a required group leaks")
    p.add_argument("traces", nargs="+", help="observable-trace JSONL file(s)")
    p.add_argument("--group-by", default="group",
                   help="trace attribute to group by (default: group)")
    p.add_argument(
        "--require", action="append", default=[], metavar="GLOB",
        help="glob over group names that must be leak-free (repeatable); "
        "a glob matching no group is itself a gate failure",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _pick(traces: list[ObservableTrace], obsv_id: str | None, path: str):
    if not traces:
        raise SystemExit(f"repro-leak: no traces in {path!r}")
    if obsv_id is None:
        return traces[0]
    for trace in traces:
        if trace.obsv_id == obsv_id:
            return trace
    raise SystemExit(f"repro-leak: no trace {obsv_id!r} in {path!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "report":
        reports = sweep_reports(_load(args.traces), key=args.group_by)
        if args.json:
            print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
        else:
            print("\n\n".join(_render_report(r) for r in reports))
        return 0

    if args.command == "compare":
        trace_a = _pick(_load(args.a), args.a_id, args.a)
        trace_b = _pick(_load(args.b), args.b_id, args.b)
        result = compare_traces(trace_a, trace_b)
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        verdict = "IDENTICAL" if result["identical"] else "DISTINGUISHABLE"
        print(f"{result['a']} vs {result['b']}: {verdict}")
        print(f"  events {result['events_a']} vs {result['events_b']}")
        if result["first_divergence"] is not None:
            div = result["first_divergence"]
            print(f"  first divergence at event {div['index']}: "
                  f"{div['a']} vs {div['b']}")
        for name, row in result["channels"].items():
            print(f"  {name}: shared {row['shared']}, only-a {row['only_a']}, "
                  f"only-b {row['only_b']}, bytes {row['bytes_a']} vs {row['bytes_b']}")
        return 0

    if args.command == "sweep":
        traces = _load(args.traces)
        reports = sweep_reports(traces, key=args.group_by)
        if args.json:
            print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
            return 0
        from .leakage import group_traces

        groups = group_traces(traces, key=args.group_by)
        print(f"{'group':24s} {'traces':>7s} {'sim ms':>12s} {'MI bits':>9s} "
              f"{'disting.':>9s} {'device div':>11s}")
        for report in reports:
            members = groups[report.group]
            mean_ms = sum(t.sim_ns for t in members) / len(members) / 1e6
            device = report.channel("device")
            divergence = device.divergence if device is not None else 0.0
            print(f"{report.group:24s} {report.traces:7d} {mean_ms:12.3f} "
                  f"{report.mi_bits:9.3f} {report.distinguishability:9.3f} "
                  f"{divergence:11.3f}")
        return 0

    if args.command == "gate":
        traces = []
        for path in args.traces:
            traces.extend(_load(path))
        reports = sweep_reports(traces, key=args.group_by)
        globs = args.require or ["*"]
        checked, failures, unmatched = [], [], []
        for glob in globs:
            matched = [r for r in reports if fnmatch.fnmatchcase(r.group or "", glob)]
            if not matched:
                unmatched.append(glob)
            for report in matched:
                verdict = report.leak_free and report.mi_bits == 0.0
                checked.append((glob, report, verdict))
                if not verdict:
                    failures.append(report)
        if args.json:
            print(json.dumps(
                {
                    "checked": [
                        {"glob": g, "group": r.group, "mi_bits": r.mi_bits,
                         "fingerprints": r.distinct_fingerprints, "ok": ok}
                        for g, r, ok in checked
                    ],
                    "unmatched_globs": unmatched,
                    "passed": not failures and not unmatched,
                },
                indent=2, sort_keys=True,
            ))
        else:
            for _, report, ok in checked:
                status = "ok        " if ok else "LEAKING   "
                print(f"{status} {report.group}: {report.traces} trace(s), "
                      f"{report.distinct_fingerprints} fingerprint(s), "
                      f"MI {report.mi_bits:.3f} bits")
            for glob in unmatched:
                print(f"MISSING    no group matches {glob!r}")
        if failures or unmatched:
            print(
                f"repro-leak: gate FAILED — {len(failures)} leaking group(s), "
                f"{len(unmatched)} unmatched glob(s)",
                file=sys.stderr,
            )
            return 1
        print(f"repro-leak: gate passed — {len(checked)} group(s) leak-free")
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Adversary-view observability: taps, leakage meter, flight recorder.

Everything the untrusted host/storage adversary can see — device page
traffic, secure-channel records, RPMB anchor accesses — captured as
canonical :class:`ObservableTrace` objects per query, metered for
predicate leakage (:mod:`.leakage`), and ringed for post-mortem incident
dumps (:mod:`.flight`).

This package models the adversary: it may import only ``repro.telemetry``,
``repro.errors`` and ``repro.sim`` (ARCH007) and never references key
material or plaintext rows (ARCH004 / FLOW001).
"""

from .events import (
    CHANNEL_DEVICE,
    CHANNEL_LINK,
    CHANNEL_RPMB,
    OBSERVABLE_CHANNELS,
    ObservableEvent,
    ObservableTrace,
    read_obsv_jsonl,
    write_obsv_jsonl,
)
from .flight import FlightRecorder
from .leakage import (
    ChannelLeakage,
    LeakageReport,
    access_pattern_divergence,
    byte_count_variance,
    channel_leakage,
    compare_traces,
    group_traces,
    leakage_report,
    mutual_information_bits,
    pairwise_distinguishability,
    sweep_reports,
    trace_fingerprints,
)
from .recorder import OBSV_COUNTERS, ObservableRecorder

__all__ = [
    "CHANNEL_DEVICE",
    "CHANNEL_LINK",
    "CHANNEL_RPMB",
    "ChannelLeakage",
    "FlightRecorder",
    "LeakageReport",
    "OBSERVABLE_CHANNELS",
    "OBSV_COUNTERS",
    "ObservableEvent",
    "ObservableRecorder",
    "ObservableTrace",
    "access_pattern_divergence",
    "byte_count_variance",
    "channel_leakage",
    "compare_traces",
    "group_traces",
    "leakage_report",
    "mutual_information_bits",
    "pairwise_distinguishability",
    "read_obsv_jsonl",
    "sweep_reports",
    "trace_fingerprints",
    "write_obsv_jsonl",
]

"""The observable-event recorder wired into every trust-boundary tap.

Instrumented components (:class:`~repro.storage.blockdevice.BlockDevice`,
the secure channel, the RPMB anchor path) hold an ``obsv`` reference that
defaults to ``None`` — the taps are single attribute checks, and with
observability off every code path is byte-identical to the untapped
build.  When a deployment enables observability, each ``run_query``
brackets one :class:`~.events.ObservableTrace` and every tap lands in it.

The recorder keeps its **own** :class:`~repro.sim.Meter` for the
``obsv_events`` / ``obsv_bytes_observed`` / ``flight_dump_count``
counters: they are registered first-class names (so the metrics registry
absorbs them without warnings) but are never merged into a run's storage
or host meters and never reach the cost model — observation must not
perturb simulated time.
"""

from __future__ import annotations

from ...sim import Meter
from .events import ObservableEvent, ObservableTrace
from .flight import FlightRecorder

#: Registered as first-class counters with (by construction) zero
#: CostModel charge: ``phase_breakdown`` never reads them, and they live
#: on the recorder's private meter, not on any run meter.
OBSV_COUNTERS = ("obsv_events", "obsv_bytes_observed", "flight_dump_count")

for _name in OBSV_COUNTERS:
    Meter.register_counter(_name)


class ObservableRecorder:
    """Collects observable events into per-query traces."""

    def __init__(self, flight: FlightRecorder | None = None):
        self.meter = Meter()
        self.flight = flight
        #: Completed observable traces, in completion order.
        self.traces: list[ObservableTrace] = []
        #: Label stamped on traces/ring entries (set per concurrent session).
        self.session = ""
        self._active: ObservableTrace | None = None
        self._depth = 0
        self._seq = 0
        self._pending_audit: list[dict] = []
        self._meter_mark = self.meter.copy()

    # -- query bracketing ------------------------------------------------

    def begin_query(self, **attributes: object) -> ObservableTrace:
        """Open the observable trace for one query (re-entrant: nested
        calls attach to the outermost query, mirroring ``maybe_root``)."""
        self._depth += 1
        if self._depth > 1 and self._active is not None:
            return self._active
        self._seq += 1
        trace = ObservableTrace(f"o{self._seq:04d}", session=self.session)
        trace.attributes.update(attributes)
        if self._pending_audit:
            # Audit entries stamped before the query window opened (the
            # monitor's admission path in ``run_concurrent``) belong to
            # this query.
            trace.audit.extend(self._pending_audit)
            self._pending_audit.clear()
        self._active = trace
        return trace

    def end_query(
        self, *, sim_ns: float | None = None, status: str = "ok", **attributes: object
    ) -> ObservableTrace | None:
        if self._depth == 0:
            return None
        self._depth -= 1
        if self._depth:
            return self._active
        trace, self._active = self._active, None
        if trace is None:
            return None
        if sim_ns is not None:
            trace.sim_ns = float(sim_ns)
        trace.status = status
        trace.attributes.update(attributes)
        self.traces.append(trace)
        return trace

    def last_trace(self) -> ObservableTrace | None:
        return self.traces[-1] if self.traces else None

    # -- the taps --------------------------------------------------------

    def observe(
        self,
        channel: str,
        op: str,
        index: int,
        nbytes: int,
        actor: str = "",
        detail: str = "",
    ) -> ObservableEvent:
        """Record one boundary crossing (called from the tap sites)."""
        event = ObservableEvent(channel, op, int(index), int(nbytes), actor, detail)
        self.meter.bump("obsv_events")
        self.meter.bump("obsv_bytes_observed", event.nbytes)
        if self._active is not None:
            self._active.add(event)
        if self.flight is not None:
            self.flight.note(self.session, event)
        return event

    def annotate(self, **attributes: object) -> None:
        """Attach defender-side metadata to the active trace (kept out of
        the fingerprint — e.g. zone-map prune ratios)."""
        if self._active is not None:
            self._active.attributes.update(attributes)

    def note_audit(self, log_name: str, sequence: int, digest_hex: str) -> None:
        """Stamp the active trace with an audit-chain digest (forwarded by
        the recording tracer); buffered when no query window is open."""
        if self._active is not None:
            self._active.annotate_audit(log_name, sequence, digest_hex)
        else:
            self._pending_audit.append(
                {"log": log_name, "sequence": int(sequence), "digest": digest_hex}
            )

    def adopt_pending(self, trace: ObservableTrace | None) -> None:
        """Attach buffered audit references to *trace* (the deployment
        calls this after closing a session whose final audit entries land
        outside the query window)."""
        if trace is None or not self._pending_audit:
            return
        trace.audit.extend(self._pending_audit)
        self._pending_audit.clear()

    # -- flight recorder -------------------------------------------------

    def dump_incident(
        self,
        *,
        page: int,
        reason: str,
        node: str = "",
        audit_head: dict | None = None,
        spans: list[dict] | None = None,
    ) -> dict | None:
        """Dump one violation incident through the flight recorder."""
        if self.flight is None:
            return None
        self.meter.bump("flight_dump_count")
        return self.flight.dump(
            session=self.session,
            page=page,
            reason=reason,
            node=node,
            audit_head=audit_head,
            spans=spans if spans is not None else [],
            meter_snapshot=self.meter_snapshot(),
            obsv_id=self._active.obsv_id if self._active is not None else None,
        )

    # -- metering --------------------------------------------------------

    def meter_snapshot(self) -> dict[str, int]:
        return {name: self.meter.get(name) for name in OBSV_COUNTERS}

    def take_meter_delta(self) -> Meter:
        """Counter growth since the previous call (for registry absorption)."""
        delta = self.meter.delta(self._meter_mark)
        self._meter_mark = self.meter.copy()
        return delta

"""Observable events and traces: the adversary's view of one query.

The paper's security argument is phrased against an adversary who owns
the host OS and the storage medium but not the enclaves: it sees *which*
pages move, *how many* ciphertext bytes cross each channel, and *when*
the RPMB anchor is touched — never plaintext.  An
:class:`ObservableEvent` is one such sighting; an
:class:`ObservableTrace` is the ordered sequence of sightings one query
produces, recorded alongside the defender-side span trace and stamped
with the same audit-chain digests.

The trace's :meth:`~ObservableTrace.fingerprint` hashes only the fields
the adversary can read (channel, operation, index, byte count, actor):
two queries are indistinguishable on these channels iff their
fingerprints match.  Simulated time is carried as metadata but kept out
of the fingerprint — the timing side channel is a separate axis and
would otherwise mask access-pattern equality (a full scan takes longer
for a wider aggregate, yet reads the very same pages).

Fingerprints use stdlib :mod:`hashlib` — this package models the
adversary and must never import ``repro.crypto`` (ARCH004/ARCH007).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

#: Event taxonomy: one name per trust boundary the paper's adversary sits on.
CHANNEL_DEVICE = "device"  # raw page/metadata traffic on the storage medium
CHANNEL_LINK = "channel"   # secure-channel records on the host<->storage wire
CHANNEL_RPMB = "rpmb"      # replay-protected anchor reads/writes

OBSERVABLE_CHANNELS = (CHANNEL_DEVICE, CHANNEL_LINK, CHANNEL_RPMB)


@dataclass(frozen=True)
class ObservableEvent:
    """One boundary crossing as the adversary records it."""

    channel: str
    op: str
    index: int
    nbytes: int
    actor: str = ""
    detail: str = ""

    def canonical(self) -> str:
        """Deterministic one-line form (the unit the fingerprint hashes)."""
        return (
            f"{self.channel}:{self.op}:{self.index}:"
            f"{self.nbytes}:{self.actor}:{self.detail}"
        )

    def to_dict(self) -> dict:
        out = {
            "channel": self.channel,
            "op": self.op,
            "index": self.index,
            "nbytes": self.nbytes,
        }
        if self.actor:
            out["actor"] = self.actor
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ObservableEvent":
        return cls(
            channel=data["channel"],
            op=data["op"],
            index=int(data["index"]),
            nbytes=int(data["nbytes"]),
            actor=data.get("actor", ""),
            detail=data.get("detail", ""),
        )


class _AuditCarrier:
    """Adapter so :func:`~repro.telemetry.correlate.verify_trace_audit`
    (which walks ``trace.spans``) can check an observable trace's audit
    references without a span tree."""

    __slots__ = ("span_id", "name", "audit")

    def __init__(self, trace: "ObservableTrace"):
        self.span_id = 0
        self.name = f"obsv:{trace.obsv_id}"
        self.audit = trace.audit


class ObservableTrace:
    """Everything the adversary observed during one query."""

    def __init__(self, obsv_id: str, session: str = ""):
        self.obsv_id = obsv_id
        self.session = session
        self.events: list[ObservableEvent] = []
        #: Audit-log references: {"log": name, "sequence": int, "digest": hex}
        #: — the same shape spans carry, so one verifier checks both.
        self.audit: list[dict] = []
        self.attributes: dict[str, object] = {}
        #: Simulated duration of the query (metadata, not fingerprinted).
        self.sim_ns: float = 0.0
        self.status: str = "ok"

    # ``verify_trace_audit`` duck-types its argument as something with
    # ``trace_id`` and ``spans``; present the whole trace as one carrier.
    @property
    def trace_id(self) -> str:
        return self.obsv_id

    @property
    def spans(self):
        return [_AuditCarrier(self)]

    # -- recording ------------------------------------------------------

    def add(self, event: ObservableEvent) -> None:
        self.events.append(event)

    def annotate_audit(self, log_name: str, sequence: int, digest_hex: str) -> None:
        self.audit.append(
            {"log": log_name, "sequence": int(sequence), "digest": digest_hex}
        )

    # -- the adversary's summary ----------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over the canonical event sequence (order included)."""
        h = hashlib.sha256()
        for event in self.events:
            h.update(event.canonical().encode())
            h.update(b"\n")
        return h.hexdigest()

    def indices(self, channel: str, op: str | None = None) -> tuple[int, ...]:
        """Access-pattern projection: the indices touched on *channel*."""
        return tuple(
            e.index
            for e in self.events
            if e.channel == channel and (op is None or e.op == op)
        )

    def bytes_on(self, channel: str) -> int:
        return sum(e.nbytes for e in self.events if e.channel == channel)

    @property
    def bytes_observed(self) -> int:
        return sum(e.nbytes for e in self.events)

    def channels(self) -> tuple[str, ...]:
        seen: list[str] = []
        for e in self.events:
            if e.channel not in seen:
                seen.append(e.channel)
        return tuple(seen)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self) -> dict:
        return {
            "type": "obsv_trace",
            "obsv_id": self.obsv_id,
            "session": self.session,
            "sim_ns": self.sim_ns,
            "status": self.status,
            "fingerprint": self.fingerprint(),
            "attributes": dict(self.attributes),
            "audit": [dict(ref) for ref in self.audit],
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObservableTrace":
        trace = cls(data["obsv_id"], session=data.get("session", ""))
        trace.sim_ns = float(data.get("sim_ns", 0.0))
        trace.status = data.get("status", "ok")
        trace.attributes = dict(data.get("attributes", {}))
        trace.audit = [dict(ref) for ref in data.get("audit", ())]
        trace.events = [ObservableEvent.from_dict(e) for e in data.get("events", ())]
        return trace

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObservableTrace({self.obsv_id!r}, {len(self.events)} events)"


def write_obsv_jsonl(path: str, traces: list[ObservableTrace]) -> None:
    """One observable trace per line (events inlined: traces are small)."""
    with open(path, "w", encoding="utf-8") as fh:
        for trace in traces:
            fh.write(json.dumps(trace.to_dict(), sort_keys=True))
            fh.write("\n")


def read_obsv_jsonl(path: str) -> list[ObservableTrace]:
    traces: list[ObservableTrace] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") != "obsv_trace":
                raise ValueError(f"not an observable-trace record: {line[:60]!r}")
            traces.append(ObservableTrace.from_dict(data))
    return traces

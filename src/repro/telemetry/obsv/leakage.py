"""Leakage metering over observable traces.

Given traces from queries that differ **only in predicate constants**,
quantify how much those constants leak through the observable channels:

* **fingerprints / distinguishability** — the fraction of trace pairs an
  adversary can tell apart by exact observable sequence.  Zero means the
  executions are indistinguishable on these channels (the oblivious
  ideal); one means every constant produces a unique trace.
* **access-pattern divergence** — mean pairwise Jaccard distance between
  the sets of indices touched per channel.  Full scans score 0 (every
  query touches every page); aggressive skip-scans approach 1 (disjoint
  page sets reveal the predicate range directly).
* **byte-count variance** — population variance of per-trace byte totals
  per channel (volume leakage even when patterns coincide).
* **mutual information** — I(P; F) in bits between the predicate label
  and the trace fingerprint over a sweep: how many bits of the secret
  constant the adversary extracts per observed query.

All scores are computed from recorded traces only; this module models
the adversary and never touches the system under test (ARCH007).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .events import OBSERVABLE_CHANNELS, ObservableTrace


# -- primitives ----------------------------------------------------------


def trace_fingerprints(traces: list[ObservableTrace]) -> list[str]:
    return [trace.fingerprint() for trace in traces]


def pairwise_distinguishability(traces: list[ObservableTrace]) -> float:
    """Fraction of unordered trace pairs with differing fingerprints."""
    prints = trace_fingerprints(traces)
    n = len(prints)
    if n < 2:
        return 0.0
    differing = 0
    for i in range(n):
        for j in range(i + 1, n):
            if prints[i] != prints[j]:
                differing += 1
    return differing / (n * (n - 1) / 2)


def access_pattern_divergence(
    traces: list[ObservableTrace], channel: str, op: str | None = None
) -> float:
    """Mean pairwise Jaccard distance of per-trace index sets on *channel*."""
    patterns = [set(trace.indices(channel, op)) for trace in traces]
    n = len(patterns)
    if n < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            a, b = patterns[i], patterns[j]
            union = a | b
            if union:
                total += 1.0 - len(a & b) / len(union)
            pairs += 1
    return total / pairs


def byte_count_variance(traces: list[ObservableTrace], channel: str) -> float:
    """Population variance of per-trace byte totals on *channel*."""
    totals = [trace.bytes_on(channel) for trace in traces]
    if not totals:
        return 0.0
    mean = sum(totals) / len(totals)
    return sum((t - mean) ** 2 for t in totals) / len(totals)


def mutual_information_bits(pairs: list[tuple[object, str]]) -> float:
    """I(label; fingerprint) in bits over (label, fingerprint) samples.

    With one sample per label this degenerates to H(fingerprint): each
    distinct trace shape hands the adversary its full surprisal.
    """
    n = len(pairs)
    if n == 0:
        return 0.0
    joint: dict[tuple[object, str], int] = {}
    labels: dict[object, int] = {}
    prints: dict[str, int] = {}
    for label, fp in pairs:
        joint[(label, fp)] = joint.get((label, fp), 0) + 1
        labels[label] = labels.get(label, 0) + 1
        prints[fp] = prints.get(fp, 0) + 1
    mi = 0.0
    for (label, fp), count in joint.items():
        p_joint = count / n
        p_label = labels[label] / n
        p_print = prints[fp] / n
        mi += p_joint * math.log2(p_joint / (p_label * p_print))
    return max(0.0, mi)


# -- reports -------------------------------------------------------------


@dataclass
class ChannelLeakage:
    """Per-channel leakage summary across a set of traces."""

    channel: str
    events: int
    bytes_total: int
    distinct_patterns: int
    divergence: float
    byte_variance: float

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "events": self.events,
            "bytes_total": self.bytes_total,
            "distinct_patterns": self.distinct_patterns,
            "divergence": round(self.divergence, 6),
            "byte_variance": round(self.byte_variance, 3),
        }


@dataclass
class LeakageReport:
    """Leakage summary for one group of constant-varied traces."""

    group: str
    traces: int
    distinct_fingerprints: int
    distinguishability: float
    mi_bits: float
    channels: list[ChannelLeakage] = field(default_factory=list)

    @property
    def leak_free(self) -> bool:
        """True when every trace in the group is observationally identical."""
        return self.traces > 0 and self.distinct_fingerprints == 1

    def channel(self, name: str) -> ChannelLeakage | None:
        for summary in self.channels:
            if summary.channel == name:
                return summary
        return None

    def to_dict(self) -> dict:
        return {
            "group": self.group,
            "traces": self.traces,
            "distinct_fingerprints": self.distinct_fingerprints,
            "distinguishability": round(self.distinguishability, 6),
            "mi_bits": round(self.mi_bits, 6),
            "leak_free": self.leak_free,
            "channels": [c.to_dict() for c in self.channels],
        }


def channel_leakage(traces: list[ObservableTrace], channel: str) -> ChannelLeakage:
    patterns = {tuple(sorted(set(trace.indices(channel)))) for trace in traces}
    return ChannelLeakage(
        channel=channel,
        events=sum(
            1 for trace in traces for e in trace.events if e.channel == channel
        ),
        bytes_total=sum(trace.bytes_on(channel) for trace in traces),
        distinct_patterns=len(patterns),
        divergence=access_pattern_divergence(traces, channel),
        byte_variance=byte_count_variance(traces, channel),
    )


def _label_of(trace: ObservableTrace, index: int) -> object:
    return trace.attributes.get("probe", index)


def leakage_report(traces: list[ObservableTrace], group: str = "") -> LeakageReport:
    """Meter one group of traces (same query shape, varied constants)."""
    prints = trace_fingerprints(traces)
    pairs = [(_label_of(t, i), fp) for i, (t, fp) in enumerate(zip(traces, prints))]
    channels = [
        channel_leakage(traces, name)
        for name in OBSERVABLE_CHANNELS
        if any(e.channel == name for t in traces for e in t.events)
    ]
    return LeakageReport(
        group=group,
        traces=len(traces),
        distinct_fingerprints=len(set(prints)),
        distinguishability=pairwise_distinguishability(traces),
        mi_bits=mutual_information_bits(pairs),
        channels=channels,
    )


def group_traces(
    traces: list[ObservableTrace], key: str = "group"
) -> dict[str, list[ObservableTrace]]:
    """Bucket traces by an attribute (benches stamp ``group``/``probe``)."""
    groups: dict[str, list[ObservableTrace]] = {}
    for trace in traces:
        groups.setdefault(str(trace.attributes.get(key, "(all)")), []).append(trace)
    return groups


def sweep_reports(
    traces: list[ObservableTrace], key: str = "group"
) -> list[LeakageReport]:
    """One report per group, in first-seen order (sweep = grouped sweep)."""
    return [
        leakage_report(members, group=name)
        for name, members in group_traces(traces, key).items()
    ]


def compare_traces(a: ObservableTrace, b: ObservableTrace) -> dict:
    """Adversary's diff of two traces: where do they first diverge?"""
    fp_a, fp_b = a.fingerprint(), b.fingerprint()
    first_divergence = None
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea.canonical() != eb.canonical():
            first_divergence = {"index": i, "a": ea.to_dict(), "b": eb.to_dict()}
            break
    if first_divergence is None and len(a.events) != len(b.events):
        i = min(len(a.events), len(b.events))
        first_divergence = {
            "index": i,
            "a": a.events[i].to_dict() if len(a.events) > i else None,
            "b": b.events[i].to_dict() if len(b.events) > i else None,
        }
    per_channel = {}
    for name in OBSERVABLE_CHANNELS:
        set_a, set_b = set(a.indices(name)), set(b.indices(name))
        if not set_a and not set_b and a.bytes_on(name) == 0 and b.bytes_on(name) == 0:
            continue
        per_channel[name] = {
            "only_a": len(set_a - set_b),
            "only_b": len(set_b - set_a),
            "shared": len(set_a & set_b),
            "bytes_a": a.bytes_on(name),
            "bytes_b": b.bytes_on(name),
        }
    return {
        "a": a.obsv_id,
        "b": b.obsv_id,
        "identical": fp_a == fp_b,
        "fingerprint_a": fp_a,
        "fingerprint_b": fp_b,
        "events_a": len(a.events),
        "events_b": len(b.events),
        "first_divergence": first_divergence,
        "channels": per_channel,
    }

"""Violation flight recorder: forensic context for integrity failures.

A bounded ring of the most recent observable events is kept at all times
(like an aircraft flight recorder, it records continuously and cheaply).
When a violation surfaces — ``IntegrityError``/``FreshnessError`` raised
by the secure pager, reported through its ``on_violation`` hook — the
deployment dumps one **incident**: the event ring tail, the tail of the
active span trace, the audit chain's head entry (so the incident is
pinned to the tamper-evident log), and the observation-meter snapshot.
Tampering benches then produce a correlated JSONL artifact instead of a
bare exception.

Incidents carry no wall-clock timestamps: like everything else in the
simulator they are deterministic, so two runs of the same attack produce
byte-identical reports.
"""

from __future__ import annotations

import json
import os
from collections import deque

from .events import ObservableEvent


class FlightRecorder:
    """Bounded ring of recent observable events + incident dumper."""

    def __init__(self, capacity: int = 256, directory: str | None = None):
        if capacity <= 0:
            raise ValueError(f"flight-recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Optional directory for ``incident-NNNN.jsonl`` dumps; incidents
        #: are always kept in memory regardless.
        self.directory = directory
        self._ring: deque[tuple[str, ObservableEvent]] = deque(maxlen=capacity)
        self.incidents: list[dict] = []

    def note(self, session: str, event: ObservableEvent) -> None:
        self._ring.append((session, event))

    def ring_tail(self, n: int | None = None) -> list[dict]:
        """The last *n* ring entries (all of them by default), as dicts."""
        entries = list(self._ring)
        if n is not None:
            entries = entries[-n:]
        return [dict(event.to_dict(), session=session) for session, event in entries]

    def dump(
        self,
        *,
        session: str,
        page: int,
        reason: str,
        node: str = "",
        audit_head: dict | None = None,
        spans: list[dict] | None = None,
        meter_snapshot: dict | None = None,
        obsv_id: str | None = None,
    ) -> dict:
        """Assemble, retain and (optionally) write one incident report."""
        incident = {
            "type": "incident",
            "incident_id": len(self.incidents),
            "session": session,
            "obsv_id": obsv_id,
            "node": node,
            "page": page,
            "reason": reason,
            "audit_head": dict(audit_head) if audit_head else None,
            "meter": dict(meter_snapshot) if meter_snapshot else {},
            "events": self.ring_tail(),
            "spans": [dict(span) for span in (spans or [])],
        }
        self.incidents.append(incident)
        if self.directory is not None:
            self._write(incident)
        return incident

    def _write(self, incident: dict) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory, f"incident-{incident['incident_id']:04d}.jsonl"
        )
        # Correlated JSONL: a header line, then one line per event/span so
        # the report greps and streams like the trace exports do.
        header = {
            key: incident[key]
            for key in (
                "type", "incident_id", "session", "obsv_id",
                "node", "page", "reason", "audit_head", "meter",
            )
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for event in incident["events"]:
                fh.write(json.dumps(dict(event, type="obsv_event"), sort_keys=True) + "\n")
            for span in incident["spans"]:
                fh.write(json.dumps(dict(span, type="span"), sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self._ring)

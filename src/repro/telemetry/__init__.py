"""End-to-end observability for the heterogeneous CSA pipeline.

Span-based tracing (simulated **and** wall-clock nanoseconds), a unified
metrics registry that absorbs the per-phase :class:`~repro.sim.Meter`
counters, exporters (JSONL + Chrome trace-event format), and audit
correlation that ties every trace back to the trusted monitor's
hash-chained logs.

Design rules:

* **zero-overhead by default** — components hold :data:`NOOP_TRACER`
  until a deployment enables tracing, so figures are unchanged;
* **deterministic** — simulated timestamps/durations only; wall time is
  carried alongside, never used for layout;
* **observe, never touch** — telemetry may depend on ``repro.errors`` and
  ``repro.sim`` only, and never references key material (ARCH004).
"""

from .correlate import audit_references, query_digest_of, verify_trace_audit
from .exporters import (
    read_jsonl,
    sequential_layout,
    to_chrome_trace,
    trace_events,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .obsv import (
    CHANNEL_DEVICE,
    CHANNEL_LINK,
    CHANNEL_RPMB,
    OBSERVABLE_CHANNELS,
    OBSV_COUNTERS,
    FlightRecorder,
    LeakageReport,
    ObservableEvent,
    ObservableRecorder,
    ObservableTrace,
    leakage_report,
    read_obsv_jsonl,
    sweep_reports,
    write_obsv_jsonl,
)
from .render import (
    render_diff,
    render_summary,
    render_top,
    render_tree,
    span_histograms,
    top_spans,
)
from .spans import (
    KNOWN_SPAN_NAMES,
    NODE_CLIENT,
    NODE_HOST,
    NODE_MONITOR,
    NODE_NETWORK,
    NODE_STORAGE,
    SPAN_ATTESTATION,
    SPAN_CHANNEL_SEND,
    SPAN_CHANNEL_SHIP,
    SPAN_CHANNEL_TRANSFER,
    SPAN_HOST_EXECUTE,
    SPAN_HOST_INGEST,
    SPAN_HOST_JOIN_AGG,
    SPAN_MERKLE_VERIFY,
    SPAN_NDP_FILTER,
    SPAN_OFFLOAD_PLAN,
    SPAN_PAGE_CACHE,
    SPAN_PAGE_WRITE,
    SPAN_PARTITION,
    SPAN_POLICY_CHECK,
    SPAN_PROOF_VERIFY,
    SPAN_QUERY,
    SPAN_REWRITE,
    SPAN_SCHEDULER,
    SPAN_SESSION_SETUP,
    SPAN_SHARD_MERGE,
    SPAN_SHARD_ROUTE,
    SPAN_SHIP_BATCH,
    SPAN_STORAGE_PHASE,
    SPAN_VECTOR_EVAL,
    SPAN_ZONE_PRUNE,
    Span,
    Trace,
)
from .tracer import NOOP_TRACER, RecordingTracer, Tracer

__all__ = [
    "CHANNEL_DEVICE",
    "CHANNEL_LINK",
    "CHANNEL_RPMB",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KNOWN_SPAN_NAMES",
    "LeakageReport",
    "MetricsRegistry",
    "OBSERVABLE_CHANNELS",
    "OBSV_COUNTERS",
    "ObservableEvent",
    "ObservableRecorder",
    "ObservableTrace",
    "NODE_CLIENT",
    "NODE_HOST",
    "NODE_MONITOR",
    "NODE_NETWORK",
    "NODE_STORAGE",
    "NOOP_TRACER",
    "RecordingTracer",
    "SPAN_ATTESTATION",
    "SPAN_CHANNEL_SEND",
    "SPAN_CHANNEL_SHIP",
    "SPAN_CHANNEL_TRANSFER",
    "SPAN_HOST_EXECUTE",
    "SPAN_HOST_INGEST",
    "SPAN_HOST_JOIN_AGG",
    "SPAN_MERKLE_VERIFY",
    "SPAN_NDP_FILTER",
    "SPAN_OFFLOAD_PLAN",
    "SPAN_PAGE_CACHE",
    "SPAN_PAGE_WRITE",
    "SPAN_PARTITION",
    "SPAN_POLICY_CHECK",
    "SPAN_PROOF_VERIFY",
    "SPAN_QUERY",
    "SPAN_REWRITE",
    "SPAN_SCHEDULER",
    "SPAN_SESSION_SETUP",
    "SPAN_SHARD_MERGE",
    "SPAN_SHARD_ROUTE",
    "SPAN_SHIP_BATCH",
    "SPAN_STORAGE_PHASE",
    "SPAN_VECTOR_EVAL",
    "SPAN_ZONE_PRUNE",
    "Span",
    "Trace",
    "Tracer",
    "audit_references",
    "leakage_report",
    "query_digest_of",
    "read_jsonl",
    "read_obsv_jsonl",
    "render_diff",
    "render_summary",
    "render_top",
    "render_tree",
    "sequential_layout",
    "span_histograms",
    "sweep_reports",
    "to_chrome_trace",
    "top_spans",
    "trace_events",
    "verify_trace_audit",
    "write_chrome_trace",
    "write_jsonl",
    "write_obsv_jsonl",
]

"""Human-readable trace rendering: trees, summaries, top spans, diffs."""

from __future__ import annotations

from typing import Iterable

from ..sim import NS_PER_MS
from .metrics import Histogram
from .spans import Span, Trace


def _fmt_ms(ns: float) -> str:
    return f"{ns / NS_PER_MS:.3f}ms"


def _span_label(span: Span, root_ns: float) -> str:
    parts = [span.name]
    if span.node:
        parts.append(f"[{span.node}{'+enclave' if span.enclave else ''}]")
    parts.append(_fmt_ms(span.sim_ns))
    if root_ns > 0:
        parts.append(f"({100.0 * span.sim_ns / root_ns:.1f}%)")
    if span.audit:
        parts.append(f"audit×{len(span.audit)}")
    if span.status != "ok":
        parts.append(span.status)
    interesting = {
        k: v
        for k, v in span.attributes.items()
        if k in ("table", "rows", "bytes", "config", "query", "sql", "session_id")
    }
    if interesting:
        parts.append(" ".join(f"{k}={v}" for k, v in sorted(interesting.items())))
    return "  ".join(parts)


def render_tree(trace: Trace, *, max_children: int = 40) -> str:
    """Indented span tree for one trace (marker spans are folded)."""
    children: dict[int | None, list[Span]] = {}
    for span in trace.spans:
        children.setdefault(span.parent_id, []).append(span)
    root_ns = trace.total_sim_ns
    lines = [f"trace {trace.trace_id}  total {_fmt_ms(root_ns)}  spans {len(trace.spans)}"]

    def walk(span: Span, depth: int) -> None:
        lines.append("  " * depth + _span_label(span, root_ns))
        kids = children.get(span.span_id, [])
        # Fold long runs of identical markers (per-page merkle walks).
        if len(kids) > max_children:
            by_name: dict[str, list[Span]] = {}
            for kid in kids:
                by_name.setdefault(kid.name, []).append(kid)
            for name, group in by_name.items():
                if len(group) > 3:
                    total = sum(s.sim_ns for s in group)
                    lines.append(
                        "  " * (depth + 1)
                        + f"{name} ×{len(group)}  {_fmt_ms(total)} (folded)"
                    )
                else:
                    for kid in group:
                        walk(kid, depth + 1)
            return
        for kid in kids:
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 1)
    return "\n".join(lines)


def aggregate_by_name(traces: Iterable[Trace]) -> dict[str, dict[str, float]]:
    """Per span name: count, total/simulated ns, total wall ns."""
    out: dict[str, dict[str, float]] = {}
    for trace in traces:
        for span in trace.spans:
            row = out.setdefault(
                span.name, {"count": 0.0, "sim_ns": 0.0, "wall_ns": 0.0}
            )
            row["count"] += 1
            row["sim_ns"] += span.sim_ns
            row["wall_ns"] += span.wall_ns
    return out


def span_histograms(traces: Iterable[Trace]) -> dict[str, Histogram]:
    """One sim-ms histogram per span name (tail latency per phase)."""
    out: dict[str, Histogram] = {}
    for trace in traces:
        for span in trace.spans:
            hist = out.get(span.name)
            if hist is None:
                hist = out[span.name] = Histogram(name=span.name)
            hist.observe(span.sim_ns / NS_PER_MS)
    return out


def render_summary(traces: list[Trace]) -> str:
    """Per-name totals across all traces, largest simulated time first."""
    rows = aggregate_by_name(traces)
    hists = span_histograms(traces)
    total_sim = sum(t.total_sim_ns for t in traces)
    lines = [
        f"{len(traces)} trace(s), {sum(len(t) for t in traces)} spans, "
        f"root total {_fmt_ms(total_sim)}",
        f"{'span':20s} {'count':>7s} {'sim ms':>12s} {'share':>7s} "
        f"{'p50 ms':>10s} {'p95 ms':>10s} {'p99 ms':>10s} {'wall ms':>10s}",
    ]
    for name, row in sorted(rows.items(), key=lambda kv: -kv[1]["sim_ns"]):
        share = 100.0 * row["sim_ns"] / total_sim if total_sim else 0.0
        hist = hists[name]
        lines.append(
            f"{name:20s} {int(row['count']):7d} {row['sim_ns'] / NS_PER_MS:12.3f} "
            f"{share:6.1f}% {hist.p50:10.3f} {hist.p95:10.3f} {hist.p99:10.3f} "
            f"{row['wall_ns'] / NS_PER_MS:10.3f}"
        )
    return "\n".join(lines)


def top_spans(traces: Iterable[Trace], n: int = 10) -> list[Span]:
    """The *n* individually largest spans by simulated self-time."""
    scored: list[tuple[float, Span]] = []
    for trace in traces:
        child_ns: dict[int, float] = {}
        for span in trace.spans:
            if span.parent_id is not None:
                child_ns[span.parent_id] = child_ns.get(span.parent_id, 0.0) + span.sim_ns
        for span in trace.spans:
            self_ns = max(0.0, span.sim_ns - child_ns.get(span.span_id, 0.0))
            scored.append((self_ns, span))
    scored.sort(key=lambda pair: -pair[0])
    return [span for _, span in scored[:n]]


def render_top(traces: list[Trace], n: int = 10) -> str:
    lines = [f"{'self ms':>10s}  {'total ms':>10s}  {'node':8s} span"]
    child_ns: dict[tuple[str, int], float] = {}
    for trace in traces:
        for span in trace.spans:
            if span.parent_id is not None:
                key = (trace.trace_id, span.parent_id)
                child_ns[key] = child_ns.get(key, 0.0) + span.sim_ns
    top = top_spans(traces, n)
    for span in top:
        self_ns = max(0.0, span.sim_ns - child_ns.get((span.trace_id, span.span_id), 0.0))
        lines.append(
            f"{self_ns / NS_PER_MS:10.3f}  {span.sim_ns / NS_PER_MS:10.3f}  "
            f"{span.node:8s} {span.name} ({span.trace_id}#{span.span_id})"
        )
    # Tail latency per name for the phases that made the cut: the single
    # largest span says where time went once, the percentiles say whether
    # it is the common case or an outlier.
    hists = span_histograms(traces)
    names = sorted({span.name for span in top})
    if names:
        lines.append("")
        lines.append(f"{'span':20s} {'count':>7s} {'p50 ms':>10s} {'p95 ms':>10s} {'p99 ms':>10s}")
        for name in names:
            hist = hists[name]
            lines.append(
                f"{name:20s} {hist.count:7d} {hist.p50:10.3f} "
                f"{hist.p95:10.3f} {hist.p99:10.3f}"
            )
    return "\n".join(lines)


def render_diff(before: list[Trace], after: list[Trace]) -> str:
    """Per-span-name simulated-time change between two trace files."""
    rows_a = aggregate_by_name(before)
    rows_b = aggregate_by_name(after)
    lines = [f"{'span':20s} {'before ms':>12s} {'after ms':>12s} {'delta ms':>12s} {'delta':>8s}"]
    deltas = []
    for name in sorted(set(rows_a) | set(rows_b)):
        a = rows_a.get(name, {}).get("sim_ns", 0.0)
        b = rows_b.get(name, {}).get("sim_ns", 0.0)
        deltas.append((abs(b - a), name, a, b))
    for _, name, a, b in sorted(deltas, reverse=True):
        # Presence is judged by span counts, not by simulated time: a
        # zero-duration marker span present on only one side must still
        # read as "new"/"gone", not vanish into a 0.000 → 0.000 row.
        if name not in rows_a:
            pct = "new"
        elif name not in rows_b:
            pct = "gone"
        elif a:
            pct = f"{100.0 * (b - a) / a:+.1f}%"
        else:
            pct = "-"
        lines.append(
            f"{name:20s} {a / NS_PER_MS:12.3f} {b / NS_PER_MS:12.3f} "
            f"{(b - a) / NS_PER_MS:+12.3f} {pct:>8s}"
        )
    total_a = sum(t.total_sim_ns for t in before)
    total_b = sum(t.total_sim_ns for t in after)
    lines.append(
        f"{'TOTAL (roots)':20s} {total_a / NS_PER_MS:12.3f} {total_b / NS_PER_MS:12.3f} "
        f"{(total_b - total_a) / NS_PER_MS:+12.3f}"
    )
    return "\n".join(lines)

"""Span and trace records.

A :class:`Span` is one named phase of a query's life (see the taxonomy
constants below), tagged with the node it ran on, whether that node was
inside an enclave/realm, and *two* clocks: the deterministic simulated
nanoseconds everything in this reproduction is costed in, and wall-clock
nanoseconds for profiling the simulator itself.  Spans nest parent→child
across the client → monitor → storage-engine → channel → host-engine
lifecycle; one query = one :class:`Trace`.

Simulated durations come from the :class:`~repro.sim.SimClock` where the
instrumented code charges the clock directly (the monitor's admission
path), and are stamped explicitly (:meth:`Span.set_sim_ns`) where the
deployment layer costs meters after the fact (the storage/host phases) —
so a trace reproduces the same numbers as the benchmark figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Span taxonomy: the phases of the paper's §3.1 workflow.
# ---------------------------------------------------------------------------

SPAN_QUERY = "query"                  # root: one client request, end to end
SPAN_ATTESTATION = "attestation"      # monitor attests host + storage (Table 4)
SPAN_POLICY_CHECK = "policy_check"    # monitor admission: access + exec policy
SPAN_REWRITE = "rewrite"              # policy-directed query rewriting
SPAN_PROOF_VERIFY = "proof_verify"    # client checks the compliance proof
SPAN_PARTITION = "partition"          # host splits the query plan
SPAN_STORAGE_PHASE = "storage_phase"  # whole near-data phase on the server
SPAN_NDP_FILTER = "ndp_filter"        # one offloaded filtering scan
SPAN_MERKLE_VERIFY = "merkle_verify"  # per-page freshness walk (marker)
SPAN_PAGE_WRITE = "page_write"        # secure page write (marker)
SPAN_PAGE_CACHE = "page_cache"        # in-enclave page-cache hit/batch (marker)
SPAN_SCHEDULER = "scheduler"          # root: one concurrent multi-session run
SPAN_CHANNEL_SHIP = "channel_ship"    # records pushed through the channel
SPAN_SHIP_BATCH = "ship_batch"        # one streamed record batch (marker)
SPAN_CHANNEL_SEND = "channel_send"    # one channel record on the wire (marker)
SPAN_CHANNEL_TRANSFER = "channel_transfer"  # non-overlapped network time
SPAN_HOST_INGEST = "host_ingest"      # enclave ingests shipped tables
SPAN_HOST_JOIN_AGG = "host_join_agg"  # host-side joins/aggregation
SPAN_HOST_EXECUTE = "host_execute"    # host-only full-query execution
SPAN_SESSION_SETUP = "session_setup"  # per-request TLS establishment
SPAN_ZONE_PRUNE = "zone_prune"        # zone-map skip-scan prune ratio (marker)
SPAN_VECTOR_EVAL = "vector_eval"      # one vectorized operator batch (marker)
SPAN_SHARD_ROUTE = "shard_route"      # shard-level zone-map routing (marker)
SPAN_SHARD_MERGE = "shard_merge"      # host-side cross-shard merge phase
SPAN_OFFLOAD_PLAN = "offload_plan"    # optimizer choice + predicted/actual cost

KNOWN_SPAN_NAMES = frozenset(
    {
        SPAN_QUERY,
        SPAN_ATTESTATION,
        SPAN_POLICY_CHECK,
        SPAN_REWRITE,
        SPAN_PROOF_VERIFY,
        SPAN_PARTITION,
        SPAN_STORAGE_PHASE,
        SPAN_NDP_FILTER,
        SPAN_MERKLE_VERIFY,
        SPAN_PAGE_WRITE,
        SPAN_PAGE_CACHE,
        SPAN_SCHEDULER,
        SPAN_CHANNEL_SHIP,
        SPAN_SHIP_BATCH,
        SPAN_CHANNEL_SEND,
        SPAN_CHANNEL_TRANSFER,
        SPAN_HOST_INGEST,
        SPAN_HOST_JOIN_AGG,
        SPAN_HOST_EXECUTE,
        SPAN_SESSION_SETUP,
        SPAN_ZONE_PRUNE,
        SPAN_VECTOR_EVAL,
        SPAN_SHARD_ROUTE,
        SPAN_SHARD_MERGE,
        SPAN_OFFLOAD_PLAN,
    }
)

#: Node names used by the instrumentation (chrome-trace "processes").
NODE_CLIENT = "client"
NODE_MONITOR = "monitor"
NODE_HOST = "host"
NODE_STORAGE = "storage"
NODE_NETWORK = "network"


@dataclass
class Span:
    """One timed phase, on one node, of one traced query."""

    name: str
    span_id: int
    trace_id: str
    parent_id: int | None = None
    node: str = ""
    enclave: bool = False
    start_sim_ns: float = 0.0
    end_sim_ns: float | None = None
    start_wall_ns: int = 0
    end_wall_ns: int | None = None
    #: Explicit simulated duration, overriding the clock delta.  The
    #: deployment stamps this for phases whose cost is computed from
    #: meters after execution rather than charged to the clock live.
    sim_ns_override: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    #: Audit-log references: {"log": name, "sequence": int, "digest": hex}.
    audit: list[dict] = field(default_factory=list)
    status: str = "ok"

    # -- durations -----------------------------------------------------

    @property
    def sim_ns(self) -> float:
        """Simulated duration (explicit stamp wins over the clock delta)."""
        if self.sim_ns_override is not None:
            return self.sim_ns_override
        if self.end_sim_ns is None:
            return 0.0
        return self.end_sim_ns - self.start_sim_ns

    @property
    def wall_ns(self) -> int:
        if self.end_wall_ns is None:
            return 0
        return self.end_wall_ns - self.start_wall_ns

    # -- mutation helpers (instrumentation-facing) ---------------------

    def set_sim_ns(self, ns: float) -> "Span":
        self.sim_ns_override = float(ns)
        return self

    def set_attrs(self, **attributes: object) -> "Span":
        self.attributes.update(attributes)
        return self

    def annotate_audit(self, log_name: str, sequence: int, digest_hex: str) -> "Span":
        self.audit.append({"log": log_name, "sequence": sequence, "digest": digest_hex})
        return self

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "enclave": self.enclave,
            "start_sim_ns": self.start_sim_ns,
            "end_sim_ns": self.end_sim_ns,
            "sim_ns": self.sim_ns,
            "start_wall_ns": self.start_wall_ns,
            "end_wall_ns": self.end_wall_ns,
            "wall_ns": self.wall_ns,
            "attributes": dict(self.attributes),
            "audit": [dict(ref) for ref in self.audit],
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            name=data["name"],
            span_id=int(data["span_id"]),
            trace_id=data["trace_id"],
            parent_id=data.get("parent_id"),
            node=data.get("node", ""),
            enclave=bool(data.get("enclave", False)),
            start_sim_ns=float(data.get("start_sim_ns", 0.0)),
            end_sim_ns=data.get("end_sim_ns"),
            start_wall_ns=int(data.get("start_wall_ns", 0)),
            end_wall_ns=data.get("end_wall_ns"),
            attributes=dict(data.get("attributes", {})),
            audit=[dict(ref) for ref in data.get("audit", ())],
            status=data.get("status", "ok"),
        )
        # Round-trip the effective duration whatever produced it.
        recorded = data.get("sim_ns")
        if recorded is not None and abs(span.sim_ns - recorded) > 1e-9:
            span.sim_ns_override = float(recorded)
        return span


class Trace:
    """All spans of one traced query, rooted at its ``query`` span."""

    def __init__(self, trace_id: str, spans: list[Span] | None = None):
        self.trace_id = trace_id
        self.spans: list[Span] = spans if spans is not None else []

    def add(self, span: Span) -> None:
        self.spans.append(span)

    @property
    def root(self) -> Span | None:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    @property
    def total_sim_ns(self) -> float:
        root = self.root
        return root.sim_ns if root is not None else 0.0

    def coverage(self) -> float:
        """Fraction of the root's simulated time covered by its children."""
        root = self.root
        if root is None or root.sim_ns <= 0:
            return 0.0
        covered = sum(child.sim_ns for child in self.children_of(root.span_id))
        return covered / root.sim_ns

    def by_name(self) -> dict[str, float]:
        """Total simulated ns per span name."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.sim_ns
        return totals

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id!r}, {len(self.spans)} spans)"

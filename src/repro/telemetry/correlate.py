"""Audit correlation: traces as verifiable evidence of compliant execution.

The trusted monitor stamps spans with the hash-chain digests of the audit
entries it appends while admitting a query (``logUpdate`` obligations,
session lifecycle in the ``operations`` log) plus the compliance proof's
query digest.  A trace is then not just a profile: an auditor holding the
monitor (or its exported, signed logs) can check that every audit
reference in the trace points at a real, chain-valid entry — and,
conversely, which logged queries have a trace.

The monitor objects are duck-typed (``audit_log(name)`` returning an
object with ``entries`` and ``verify_chain()``): telemetry observes the
monitor, it never imports it — and it never touches key material
(enforced by ARCH004).
"""

from __future__ import annotations

from ..errors import IntegrityError
from .spans import Trace


def audit_references(trace: Trace) -> list[dict]:
    """All audit-log references stamped anywhere in *trace*."""
    refs: list[dict] = []
    for span in trace.spans:
        for ref in span.audit:
            refs.append(
                {
                    "span_id": span.span_id,
                    "span": span.name,
                    "log": ref["log"],
                    "sequence": ref["sequence"],
                    "digest": ref["digest"],
                }
            )
    return refs


def verify_trace_audit(trace: Trace, monitor) -> int:
    """Check every audit reference in *trace* against *monitor*'s logs.

    For each referenced log: replay its hash chain, then confirm the
    referenced entry exists and its digest matches the one recorded in
    the span.  Returns the number of verified references; raises
    :class:`~repro.errors.IntegrityError` if the trace carries no audit
    evidence at all, or if any reference fails.
    """
    refs = audit_references(trace)
    if not refs:
        raise IntegrityError(
            f"trace {trace.trace_id!r} carries no audit references: "
            "it is not evidence of policy-compliant execution"
        )
    verified_logs: set[str] = set()
    for ref in refs:
        log = monitor.audit_log(ref["log"])
        if ref["log"] not in verified_logs:
            log.verify_chain()
            verified_logs.add(ref["log"])
        sequence = ref["sequence"]
        if sequence >= len(log.entries):
            raise IntegrityError(
                f"trace {trace.trace_id!r} references entry {sequence} of "
                f"log {ref['log']!r}, which has only {len(log.entries)} entries"
            )
        entry = log.entries[sequence]
        if entry.digest().hex() != ref["digest"]:
            raise IntegrityError(
                f"trace {trace.trace_id!r}: span {ref['span']!r} references "
                f"log {ref['log']!r} entry {sequence} with a stale digest — "
                "the log and the trace disagree"
            )
    return len(refs)


def query_digest_of(trace: Trace) -> str | None:
    """The compliance proof's query digest stamped on the trace, if any."""
    for span in trace.spans:
        digest = span.attributes.get("query_digest")
        if digest is not None:
            return str(digest)
    return None

"""Tracers: the no-op default and the recording implementation.

Tracing is **off by default**: every instrumented component holds
:data:`NOOP_TRACER`, whose ``span()`` returns one shared, stateless
context manager — no allocation, no timestamps, no trace state — so the
tier-1 tests and benchmark figures are byte-identical with tracing
disabled.  Hot paths additionally gate on ``tracer.enabled`` before
building attribute dicts.

:class:`RecordingTracer` keeps a span stack (so nested instrumentation
composes into a tree without any component knowing about any other),
captures simulated time from the shared :class:`~repro.sim.SimClock` and
wall-clock time from ``time.perf_counter_ns``, and finalizes one
:class:`~repro.telemetry.spans.Trace` per root span.
"""

from __future__ import annotations

import time
from typing import Callable

from .metrics import MetricsRegistry
from .spans import Span, Trace


class _NoopSpan:
    """Shared do-nothing span/context manager (the disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_sim_ns(self, ns: float) -> "_NoopSpan":
        return self

    def set_attrs(self, **attributes: object) -> "_NoopSpan":
        return self

    def annotate_audit(self, log_name: str, sequence: int, digest_hex: str) -> "_NoopSpan":
        return self

    @property
    def sim_ns(self) -> float:
        return 0.0

    @property
    def wall_ns(self) -> int:
        return 0


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """No-op base tracer; also the interface instrumented code sees."""

    enabled: bool = False
    #: Adversary-view recorder (``repro.telemetry.obsv``).  ``None`` by
    #: default — components that tap trust-boundary crossings check this
    #: attribute, so the disabled path stays a single attribute read.
    obsv = None

    def span(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        """Context manager for one phase.  No-op unless recording."""
        return _NOOP_SPAN

    def maybe_root(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        """A root span if no trace is active, else a pass-through no-op.

        Lets ``Deployment.run_query`` own the root when called standalone
        while attaching its phases to the client's root when called
        through ``Client.submit``.
        """
        return _NOOP_SPAN

    def event(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        """Zero-duration marker span under the current span (dropped when
        no trace is active, so setup-time work never pollutes traces)."""
        return None

    def annotate(self, **attributes: object) -> None:
        """Attach attributes to the current span (no-op when idle)."""

    def annotate_audit(self, log_name: str, entry) -> None:
        """Stamp the current span with one audit-log entry's digest."""

    @property
    def current(self) -> Span | None:
        return None


#: The shared disabled tracer every component defaults to.
NOOP_TRACER = Tracer()


class _SpanContext:
    """Opens a recorded span on ``__enter__``, closes it on ``__exit__``.

    ``__enter__`` returns the :class:`Span` itself so callers can keep the
    handle and stamp simulated durations / attributes after the block.
    """

    __slots__ = ("_tracer", "_name", "_node", "_enclave", "_attributes", "_span")

    def __init__(self, tracer: "RecordingTracer", name: str, node: str,
                 enclave: bool, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._node = node
        self._enclave = enclave
        self._attributes = attributes
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(
            self._name, self._node, self._enclave, self._attributes
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.status = f"error:{exc_type.__name__}"
        self._tracer._end(self._span)
        return False


class RecordingTracer(Tracer):
    """Records spans into per-query traces (deterministic in sim time)."""

    enabled = True

    def __init__(
        self,
        clock=None,
        metrics: MetricsRegistry | None = None,
        wall_clock: Callable[[], int] | None = None,
    ):
        #: The deployment's SimClock (or None: sim timestamps stay 0 and
        #: durations come from explicit stamps only).
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._wall = wall_clock if wall_clock is not None else time.perf_counter_ns
        #: Adversary-view recorder, installed by
        #: ``Deployment.enable_observability`` (instance attribute so the
        #: shared NOOP_TRACER can never carry one).
        self.obsv = None
        #: Completed traces, in completion order.
        self.traces: list[Trace] = []
        self._stack: list[Span] = []
        self._active: Trace | None = None
        self._trace_seq = 0
        self._span_seq = 0

    # -- clock access ---------------------------------------------------

    def _now_sim(self) -> float:
        return self.clock.now_ns if self.clock is not None else 0.0

    # -- span lifecycle -------------------------------------------------

    def _begin(self, name: str, node: str, enclave: bool, attributes: dict) -> Span:
        if self._active is None:
            self._trace_seq += 1
            self._active = Trace(f"q{self._trace_seq:04d}")
        self._span_seq += 1
        span = Span(
            name=name,
            span_id=self._span_seq,
            trace_id=self._active.trace_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            node=node,
            enclave=enclave,
            start_sim_ns=self._now_sim(),
            start_wall_ns=self._wall(),
            attributes=dict(attributes),
        )
        self._active.add(span)
        self._stack.append(span)
        return span

    def _end(self, span: Span) -> None:
        span.end_sim_ns = self._now_sim()
        span.end_wall_ns = self._wall()
        # Tolerate mis-nested exits (an exception may unwind several
        # levels): pop up to and including the closing span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack and self._active is not None:
            self.traces.append(self._active)
            self._active = None

    # -- public API -----------------------------------------------------

    def span(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        return _SpanContext(self, name, node, enclave, attributes)

    def maybe_root(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        if self._stack:
            return _NOOP_SPAN
        return _SpanContext(self, name, node, enclave, attributes)

    def event(self, name: str, *, node: str = "", enclave: bool = False, **attributes):
        if not self._stack:
            return None  # no active trace: setup-time markers are dropped
        span = self._begin(name, node, enclave, attributes)
        self._end(span)
        return span

    def annotate(self, **attributes: object) -> None:
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def annotate_audit(self, log_name: str, entry) -> None:
        """Stamp the current span with an audit entry's chain digest.

        *entry* is duck-typed (``sequence`` + ``digest()``) so this layer
        never imports the monitor package.
        """
        if self._stack:
            self._stack[-1].annotate_audit(
                log_name, entry.sequence, entry.digest().hex()
            )
        if self.obsv is not None:
            # The observable trace carries the same chain digests as the
            # span trace, so one verifier covers both views.
            self.obsv.note_audit(log_name, entry.sequence, entry.digest().hex())

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def last_trace(self) -> Trace | None:
        return self.traces[-1] if self.traces else None

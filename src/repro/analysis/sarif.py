"""SARIF 2.1.0 export for ``repro-lint --format sarif``.

The output targets GitHub code scanning: one run, tool metadata with a
``rules`` array (so findings link to rule help), one result per finding.
Grandfathered findings are emitted with a ``suppressions`` entry instead
of being dropped, so code-scanning dashboards show them as suppressed
rather than fixed.
"""

from __future__ import annotations

from .findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_URI = "https://github.com/anonymous/ironsafe-repro"


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.rule_id,
        "name": rule.title,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, rule_index: dict[str, int], suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baselined finding"}
        ]
    return result


def to_sarif(result, rules, tool_version: str = "0") -> dict:
    """Render an ``AnalysisResult`` as a SARIF 2.1.0 log dict."""
    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [_result(f, rule_index, suppressed=False) for f in result.findings]
    results += [
        _result(f, rule_index, suppressed=True) for f in result.grandfathered
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": TOOL_URI,
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }

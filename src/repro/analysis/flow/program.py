"""Whole-program fixpoint over function summaries, plus findings access.

A :class:`FlowProgram` is built once per ``Analyzer.run`` (lazily, on the
first dataflow rule that asks for it) from every parsed module.  It:

1. indexes all function definitions into a :class:`ProjectIndex`;
2. iterates bottom-up-ish to a fixpoint: each pass re-interprets every
   function against the current summary table until no summary changes
   (recursion-safe — a cycle simply converges because the taint lattice
   is finite and transfer is monotone);
3. runs one final *reporting* pass that emits :class:`FlowHit` findings,
   deduplicated by (rule, path, line, col, message) and filtered through
   the catalog's per-rule module exemptions.

Rules then pull their slice with :meth:`FlowProgram.findings_for`.
"""

from __future__ import annotations

import ast

from .callgraph import ProjectIndex
from .catalog import EXEMPT_MODULES, EXEMPT_SUMMARY_TAGS
from .interpret import EMPTY_SUMMARY, FlowHit, FunctionInterpreter, Summary
from .taint import without

#: Safety valve: summary fixpoints in this tree converge in 2–3 passes;
#: anything deeper indicates an oscillation bug, so cut off rather than
#: hang the lint.
MAX_PASSES = 8


class FlowProgram:
    """Interprocedural taint analysis over a set of parsed modules."""

    def __init__(self, modules: list[tuple[str, str | None, ast.Module]]):
        """*modules* is a list of ``(relpath, module_name, tree)``."""
        self.index = ProjectIndex()
        for relpath, module, tree in modules:
            self.index.add_module(relpath, module, tree)
        self.summaries: dict[str, Summary] = {}
        self.hits: list[FlowHit] = []
        self.passes_used = 0
        self._analyze()

    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        for info in self.index.functions:
            self.summaries[info.qualname] = EMPTY_SUMMARY
        for round_number in range(1, MAX_PASSES + 1):
            self.passes_used = round_number
            changed = False
            for info in self.index.functions:
                summary = FunctionInterpreter(
                    info, self.index, self.summaries, report=None
                ).run()
                exempt = EXEMPT_SUMMARY_TAGS.get(info.module or "")
                if exempt:
                    summary = Summary(
                        returns=without(summary.returns, exempt),
                        param_sinks=summary.param_sinks,
                    )
                if summary.key() != self.summaries[info.qualname].key():
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        seen: set[tuple] = set()
        for info in self.index.functions:
            def report(hit: FlowHit) -> None:
                if hit.module in EXEMPT_MODULES.get(hit.rule_id, ()):
                    return
                key = (hit.rule_id, hit.relpath, hit.line, hit.col, hit.message)
                if key not in seen:
                    seen.add(key)
                    self.hits.append(hit)

            FunctionInterpreter(
                info, self.index, self.summaries, report=report
            ).run()
        self.hits.sort(key=lambda h: (h.relpath, h.line, h.col, h.rule_id))

    # ------------------------------------------------------------------

    def findings_for(self, relpath: str, rule_id: str) -> list[FlowHit]:
        return [
            hit
            for hit in self.hits
            if hit.relpath == relpath and hit.rule_id == rule_id
        ]

"""Project-wide function index and best-effort call resolution.

The interprocedural engine needs to know, for ``self.pager.read_pages(..)``
or ``hkdf(..)``, which function definitions the call might reach.  Python
gives no static guarantees, so resolution is heuristic but conservative:

* ``self.method(...)`` resolves to the enclosing class's method when it
  has one (single target — the common case in this tree);
* ``expr.method(...)`` resolves to every known method of that name,
  capped — when too many classes share a name the call is treated as
  unknown and taint propagates through it instead;
* ``name(...)`` resolves to module-level functions of that name,
  preferring the caller's own module;
* calls to known *class* names are constructor calls and resolve to
  nothing (object construction does not launder or leak by itself; field
  sensitivity is by attribute name, see the catalog).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Above this many same-named candidates, attribute resolution gives up
#: and the engine falls back to plain taint propagation.
MAX_CANDIDATES = 8


def _imported_modules(
    module: str, tree: ast.Module, *, is_package: bool
) -> set[str]:
    """Absolute dotted names this module imports (modules and symbols).

    Relative imports are resolved against the module's package; both the
    ``from``-target and each imported name are recorded, because ``from
    repro.sql import expressions`` may bind a module while ``from
    repro.sql.expressions import Scope`` binds a symbol of one.
    """
    pkg_parts = module.split(".") if is_package else module.split(".")[:-1]
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(base_parts)
            else:
                base = ""
            full = ".".join(p for p in (base, node.module or "") if p)
            if full:
                out.add(full)
            for alias in node.names:
                out.add(f"{full}.{alias.name}" if full else alias.name)
    return out


@dataclass
class FunctionInfo:
    """One analyzable function or method definition."""

    qualname: str  # "module:Class.method", "module:func", ":func" for loose files
    name: str
    cls: str | None
    module: str | None
    relpath: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        args = self.node.args
        self.params = [a.arg for a in (*args.posonlyargs, *args.args)]

    @property
    def suffixes(self) -> tuple[str, ...]:
        """Names PARAM_SINKS entries may use: ``Class.method`` and ``method``."""
        if self.cls:
            return (f"{self.cls}.{self.name}", self.name)
        return (self.name,)


class ProjectIndex:
    """All function definitions across the analyzed tree, resolvable."""

    def __init__(self) -> None:
        self.functions: list[FunctionInfo] = []
        self._methods: dict[str, list[FunctionInfo]] = {}
        self._module_functions: dict[tuple[str | None, str], list[FunctionInfo]] = {}
        self._by_name_toplevel: dict[str, list[FunctionInfo]] = {}
        self._class_methods: dict[tuple[str, str], list[FunctionInfo]] = {}
        self.class_names: set[str] = set()
        self._imports: dict[str, set[str]] = {}

    def add_module(self, relpath: str, module: str | None, tree: ast.Module) -> None:
        if module is not None:
            self._imports[module] = _imported_modules(
                module, tree, is_package=relpath.endswith("__init__.py")
            )
        self._collect(relpath, module, tree, cls=None)

    def _collect(self, relpath, module, node, cls) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module or ''}:{cls + '.' if cls else ''}{child.name}",
                    name=child.name,
                    cls=cls,
                    module=module,
                    relpath=relpath,
                    node=child,
                )
                self.functions.append(info)
                if cls is not None:
                    self._methods.setdefault(child.name, []).append(info)
                    self._class_methods.setdefault((cls, child.name), []).append(info)
                else:
                    self._by_name_toplevel.setdefault(child.name, []).append(info)
                self._module_functions.setdefault(
                    (module, child.name), []
                ).append(info)
                # Nested defs are analyzed as their own functions too.
                self._collect(relpath, module, child, cls)
            elif isinstance(child, ast.ClassDef):
                self.class_names.add(child.name)
                self._collect(relpath, module, child, cls=child.name)

    # ------------------------------------------------------------------

    def resolve(
        self, call: ast.Call, *, module: str | None, cls: str | None
    ) -> list[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, module, cls)
        return []

    def _visible(
        self, module: str | None, candidates: list[FunctionInfo]
    ) -> list[FunctionInfo]:
        """Drop candidates the caller's module cannot even name.

        Same-named methods exist across unrelated classes (``resolve``,
        ``eval``, ``send``); a candidate is only plausible when it lives
        in the caller's own module or in a module the caller imports.
        Loose scripts (no module name) keep every candidate.
        """
        if module is None:
            return candidates
        imports = self._imports.get(module, set())
        return [
            c
            for c in candidates
            if c.module is None or c.module == module or c.module in imports
        ]

    def _resolve_name(self, name: str, module: str | None) -> list[FunctionInfo]:
        if name in self.class_names:
            return []  # constructor call
        local = self._module_functions.get((module, name))
        if local:
            return [f for f in local if f.cls is None] or list(local)
        return self._visible(module, list(self._by_name_toplevel.get(name, ())))

    def _resolve_attribute(
        self, func: ast.Attribute, module: str | None, cls: str | None
    ) -> list[FunctionInfo]:
        attr = func.attr
        if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
            if cls is not None:
                own = self._class_methods.get((cls, attr))
                if own:
                    return list(own)
        # ``ClassName.method(...)`` — explicit class receiver.
        if isinstance(func.value, ast.Name) and func.value.id in self.class_names:
            exact = self._class_methods.get((func.value.id, attr))
            if exact:
                return list(exact)
        candidates = self._visible(module, self._methods.get(attr, []))
        if 0 < len(candidates) <= MAX_CANDIDATES:
            return candidates
        # Fall back to module-level functions accessed via a module alias.
        toplevel = self._visible(module, self._by_name_toplevel.get(attr, []))
        if 0 < len(toplevel) <= MAX_CANDIDATES:
            return toplevel
        return []

"""Declarative source / sink / sanitizer catalog for the dataflow rules.

Every entry names a *real* API of the reproduction.  The engine matches
call sites against these patterns (suffix dotted-name matching, see
:func:`repro.analysis.flow.taint.match_pattern`); adding a summary for a
new API is adding one line here, never touching the engine.

Catalog semantics:

* **Source** — the call's return value acquires ``tags``.  An optional
  ``when_arg`` restricts the match to calls carrying that string literal
  as an argument (used for command-dispatch APIs like
  ``trusted_os.invoke("secure-storage", "get_master_key")``).
* **ValueSanitizer** — the call's return value is the union of its
  argument taints *minus* ``clears``.  Encryption (``hash_ctr_crypt``,
  ``cbc_encrypt``, ``seal``) and one-way functions (``sha256``, ``sign``)
  launder what they consume: ciphertext and digests are safe to ship and
  log.
* **GuardSanitizer** — a verification call: reaching it means the current
  path has authenticated its inputs, so ``clears`` is removed from every
  live value in the function (flow-sensitively — a decode *before* the
  guard still fires).  ``constant_time_eq`` clears only the channel tag:
  a page MAC alone does not prove freshness, the Merkle/anchored-digest
  walk (``verify_*``) does.
* **CallSink** — arguments carrying one of ``tags`` at this call violate
  ``rule``.
* **PARAM_SINKS** — sinks declared on the *callee*: any call resolving to
  that function with a tainted value in the named parameter fires, so the
  finding lands at the caller's line (e.g. key material passed to
  ``SecureChannel.send`` — even encrypted, keys never ride the data
  channel).
* **ATTRIBUTE_SOURCES** — reading an attribute with one of these names is
  a source regardless of how the object was obtained (field-name
  sensitivity: ``session.key``, ``self._enc_key``).
* **EXEMPT_MODULES** — per-rule module exemptions.  The only entry is the
  deliberately-unauthenticated baseline pager (``repro.storage.pager``),
  which exists to measure the *insecure* arms of the paper's figures and
  decodes device bytes without MACs by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .taint import TAG_CHANNEL, TAG_KEY, TAG_PLAINTEXT, TAG_STORAGE


@dataclass(frozen=True)
class Source:
    pattern: str
    tags: frozenset
    origin: str
    when_arg: str | None = None


@dataclass(frozen=True)
class ValueSanitizer:
    pattern: str
    clears: frozenset
    label: str


@dataclass(frozen=True)
class GuardSanitizer:
    pattern: str
    clears: frozenset
    label: str


@dataclass(frozen=True)
class CallSink:
    pattern: str
    rule: str
    tags: frozenset
    label: str


@dataclass(frozen=True)
class ParamSink:
    param: str
    rule: str
    tags: frozenset
    label: str


_KEY = frozenset({TAG_KEY})
_UNVERIFIED = frozenset({TAG_STORAGE, TAG_CHANNEL})
_ALL = frozenset({TAG_KEY, TAG_STORAGE, TAG_CHANNEL, TAG_PLAINTEXT})


SOURCES: tuple[Source, ...] = (
    # -- key material ---------------------------------------------------
    Source("hkdf", _KEY, "hkdf()"),
    Source("derive_key", _KEY, "derive_key()"),
    Source("sealing_key_for", _KEY, "sealing_key_for()"),
    Source("generate_keypair", _KEY, "generate_keypair()"),
    Source("get_master_key", _KEY, "get_master_key()"),
    Source("invoke", _KEY, 'invoke(.., "get_master_key")', when_arg="get_master_key"),
    # -- untrusted storage bytes ---------------------------------------
    Source("device.read_page", frozenset({TAG_STORAGE}), "device.read_page()"),
    Source("device.read_meta", frozenset({TAG_STORAGE}), "device.read_meta()"),
    # -- untrusted channel bytes ---------------------------------------
    Source("link.receive", frozenset({TAG_CHANNEL}), "link.receive()"),
    # -- decrypted row data inside the enclave --------------------------
    Source("pager.read_page", frozenset({TAG_PLAINTEXT}), "pager.read_page()"),
    Source("pager.read_pages", frozenset({TAG_PLAINTEXT}), "pager.read_pages()"),
    Source("unpack_page", frozenset({TAG_PLAINTEXT}), "unpack_page()"),
    Source("decode_batch", frozenset({TAG_PLAINTEXT}), "decode_batch()"),
    Source("decode_row", frozenset({TAG_PLAINTEXT}), "decode_row()"),
)

#: Attribute-read sources, matched as dotted suffix patterns against the
#: full receiver chain (``auth.session.key`` matches ``session.key``).
#: Bare names match any receiver; ``session.key`` is anchored because a
#: bare ``.key`` collides with AST/dict field names.
ATTRIBUTE_SOURCES: dict[str, tuple[frozenset, str]] = {
    "session.key": (_KEY, ".session.key"),
    "master_key": (_KEY, ".master_key"),
    "session_key": (_KEY, ".session_key"),
    "sealing_key": (_KEY, ".sealing_key"),
    "private_key": (_KEY, ".private_key"),
    "_signing_key": (_KEY, "._signing_key"),
    "_enc_key": (_KEY, "._enc_key"),
    "_mac_key": (_KEY, "._mac_key"),
    "_merkle_key": (_KEY, "._merkle_key"),
    "_root_key": (_KEY, "._root_key"),
    "_huk": (_KEY, "._huk (hardware-unique key)"),
    "_task": (_KEY, "._task (TA storage key)"),
    "_keypair": (_KEY, "._keypair"),
}

VALUE_SANITIZERS: tuple[ValueSanitizer, ...] = (
    # Encryption: ciphertext is safe to ship, store and (size-wise) meter.
    ValueSanitizer("hash_ctr_crypt", _ALL, "hash-CTR encrypt/decrypt"),
    ValueSanitizer("cbc_encrypt", _ALL, "AES-CBC encrypt"),
    ValueSanitizer("cbc_decrypt", _ALL, "AES-CBC decrypt"),
    ValueSanitizer("seal", _ALL, "enclave sealing"),
    # One-way functions: digests/signatures of secrets are declassified.
    ValueSanitizer("sha256", _ALL, "SHA-256"),
    ValueSanitizer("sha512", _ALL, "SHA-512"),
    ValueSanitizer("hmac_sha256", _ALL, "HMAC-SHA256"),
    ValueSanitizer("hmac_sha512", _ALL, "HMAC-SHA512"),
    ValueSanitizer("sign", _ALL, "signature"),
    ValueSanitizer("fingerprint", _ALL, "public-key fingerprint"),
    # Row → wire encoders produce opaque framing the ship path may handle.
    ValueSanitizer("len", _ALL, "length"),
)

GUARD_SANITIZERS: tuple[GuardSanitizer, ...] = (
    # A MAC check proves integrity of what arrived *now* — enough for the
    # sequenced channel, not for storage (replay of a stale page passes).
    GuardSanitizer(
        "constant_time_eq", frozenset({TAG_CHANNEL}), "constant-time MAC check"
    ),
    GuardSanitizer(
        "compare_digest", frozenset({TAG_CHANNEL}), "constant-time MAC check"
    ),
    # Merkle walks and anchored-digest checks prove freshness too.
    GuardSanitizer("verify_*", _UNVERIFIED, "Merkle/anchored-root verification"),
)

CALL_SINKS: tuple[CallSink, ...] = (
    # -- logging --------------------------------------------------------
    CallSink("print", "TAINT001", _KEY, "print()"),
    CallSink("logging.debug", "TAINT001", _KEY, "logging"),
    CallSink("logging.info", "TAINT001", _KEY, "logging"),
    CallSink("logging.warning", "TAINT001", _KEY, "logging"),
    CallSink("logging.error", "TAINT001", _KEY, "logging"),
    CallSink("logging.exception", "TAINT001", _KEY, "logging"),
    CallSink("logging.critical", "TAINT001", _KEY, "logging"),
    CallSink("logging.log", "TAINT001", _KEY, "logging"),
    CallSink("logger.*", "TAINT001", _KEY, "logging"),
    CallSink("log.*", "TAINT001", _KEY, "logging"),
    # -- telemetry spans / metric labels -------------------------------
    CallSink("tracer.event", "TAINT001", _KEY, "telemetry event"),
    CallSink("tracer.span", "TAINT001", _KEY, "telemetry span"),
    CallSink("metrics.counter", "TAINT001", _KEY, "metric label"),
    # -- observable-event taps (repro.telemetry.obsv) ------------------
    # Observable traces model the *adversary's* record: feeding them key
    # material or decrypted row bytes would turn the leakage meter into a
    # leak.  Taps pass indices and byte counts only (``len`` sanitizes).
    CallSink("obsv.observe", "TAINT001", _KEY, "observable-event tap"),
    CallSink(
        "obsv.observe",
        "FLOW001",
        frozenset({TAG_PLAINTEXT}),
        "observable-event tap",
    ),
    CallSink("obsv.annotate", "TAINT001", _KEY, "observable-trace attr"),
    CallSink(
        "obsv.annotate",
        "FLOW001",
        frozenset({TAG_PLAINTEXT}),
        "observable-trace attr",
    ),
    # -- the raw (unencrypted) link ------------------------------------
    CallSink("link.send", "TAINT001", _KEY, "raw network link"),
    CallSink(
        "link.send",
        "FLOW001",
        frozenset({TAG_PLAINTEXT}),
        "raw network link",
    ),
    # -- decode/use of unverified bytes (TAINT002) ---------------------
    CallSink("hash_ctr_crypt", "TAINT002", _UNVERIFIED, "decrypt"),
    CallSink("cbc_decrypt", "TAINT002", _UNVERIFIED, "decrypt"),
    CallSink("unpack_page", "TAINT002", _UNVERIFIED, "row decode"),
    CallSink("decode_batch", "TAINT002", _UNVERIFIED, "batch decode"),
    CallSink("decode_row", "TAINT002", _UNVERIFIED, "row decode"),
    CallSink("json.loads", "TAINT002", _UNVERIFIED, "JSON decode"),
)

#: Sinks declared on callees: resolved calls check the named parameter.
#: Keys are ``Class.method`` / function-name suffixes of the definition's
#: qualified name.
PARAM_SINKS: dict[str, tuple[ParamSink, ...]] = {
    # Keys never ride the data channel, not even encrypted: the monitor
    # distributes session keys out of band, and a key inside a record
    # batch would decrypt on the *other* engine.
    "SecureChannel.send": (
        ParamSink("payload", "TAINT001", _KEY, "SecureChannel.send"),
    ),
    # The JSONL/Chrome exporters write to untrusted files by design.
    "write_jsonl": (ParamSink("traces", "TAINT001", _KEY, "JSONL exporter"),),
    "to_chrome_trace": (
        ParamSink("traces", "TAINT001", _KEY, "Chrome-trace exporter"),
    ),
    # Observable traces are the adversary's own record (exported to
    # untrusted files for leakage metering): plaintext rows or key
    # material must never reach the recorder or its exporter.
    "ObservableRecorder.observe": (
        ParamSink("detail", "TAINT001", _KEY, "observable-event tap"),
        ParamSink(
            "detail", "FLOW001", frozenset({TAG_PLAINTEXT}), "observable-event tap"
        ),
        ParamSink("actor", "TAINT001", _KEY, "observable-event tap"),
        ParamSink(
            "actor", "FLOW001", frozenset({TAG_PLAINTEXT}), "observable-event tap"
        ),
    ),
    "write_obsv_jsonl": (
        ParamSink("traces", "TAINT001", _KEY, "observable-trace exporter"),
        ParamSink(
            "traces",
            "FLOW001",
            frozenset({TAG_PLAINTEXT}),
            "observable-trace exporter",
        ),
    ),
}

#: Per-rule module exemptions, each carrying its justification here.
EXEMPT_MODULES: dict[str, frozenset[str]] = {
    # The plain pager is the paper's insecure baseline arm: it reads
    # device pages with no MAC or Merkle tree *by design* (figures 8/9c
    # measure secure-storage overhead against it).
    "TAINT002": frozenset({"repro.storage.pager"}),
    "FLOW001": frozenset({"repro.storage.pager"}),
}

#: Tags stripped from the *summaries* of functions defined in a module:
#: the baseline pager's returns are unauthenticated by design, so its
#: callers (the polymorphic ``PagedStore`` scan paths) must not inherit
#: the storage taint — the secure arm goes through ``SecurePager``, whose
#: summaries are clean because it verifies before returning.
EXEMPT_SUMMARY_TAGS: dict[str, frozenset] = {
    "repro.storage.pager": frozenset({TAG_STORAGE}),
}


@dataclass(frozen=True)
class RuleDoc:
    """Human-readable catalog slice for ``repro-lint --explain``."""

    rule_id: str
    sources: tuple[str, ...] = field(default_factory=tuple)
    sinks: tuple[str, ...] = field(default_factory=tuple)
    sanitizers: tuple[str, ...] = field(default_factory=tuple)


def _tags_for_rule(rule_id: str) -> frozenset:
    tags = set()
    for sink in CALL_SINKS:
        if sink.rule == rule_id:
            tags |= sink.tags
    for sinks in PARAM_SINKS.values():
        for sink in sinks:
            if sink.rule == rule_id:
                tags |= sink.tags
    return frozenset(tags)


def rule_doc(rule_id: str) -> RuleDoc:
    """Sources, sinks and sanitizers relevant to one TAINT/FLOW rule."""
    tags = _tags_for_rule(rule_id)
    sources = [f"{s.pattern}  [{', '.join(sorted(s.tags))}]"
               for s in SOURCES if s.tags & tags]
    sources += [f".{name} (attribute read)"
                for name, (attr_tags, _) in sorted(ATTRIBUTE_SOURCES.items())
                if attr_tags & tags]
    sinks = [f"{s.pattern}  ({s.label})" for s in CALL_SINKS if s.rule == rule_id]
    sinks += [
        f"{qual}({sink.param}=...)  ({sink.label})"
        for qual, entries in sorted(PARAM_SINKS.items())
        for sink in entries
        if sink.rule == rule_id
    ]
    sanitizers = [f"{s.pattern}  (clears {', '.join(sorted(s.clears & tags))})"
                  for s in (*VALUE_SANITIZERS, *GUARD_SANITIZERS)
                  if s.clears & tags]
    return RuleDoc(rule_id, tuple(sources), tuple(sinks), tuple(sanitizers))

"""Interprocedural taint/dataflow engine for the repro linter.

See :mod:`repro.analysis.flow.catalog` for the source/sink/sanitizer
model and ``docs/static-analysis.md`` ("Dataflow rules") for the rule
semantics.
"""

from .catalog import rule_doc
from .interpret import FlowHit
from .program import FlowProgram
from .taint import TAG_CHANNEL, TAG_KEY, TAG_PLAINTEXT, TAG_STORAGE

__all__ = [
    "FlowHit",
    "FlowProgram",
    "rule_doc",
    "TAG_CHANNEL",
    "TAG_KEY",
    "TAG_PLAINTEXT",
    "TAG_STORAGE",
]

"""Taint lattice and AST naming helpers for the dataflow engine.

A *taint* is a set of tags attached to an abstract value.  Real tags name
the security domains the paper's trust argument cares about; symbolic
``("param", i)`` tags stand for "whatever the caller passes as argument
*i*" and make function summaries composable (the fixpoint in
:mod:`repro.analysis.flow.program` resolves them at every call site).

Taints are represented as plain ``dict[tag, str]`` mapping each tag to a
short human-readable origin ("hkdf() at line 38"), so a finding can say
*where* the offending value came from, not just that it is tainted.
Merging unions tags and keeps the first origin seen (deterministic under
the engine's statement-ordered walk).
"""

from __future__ import annotations

import ast

#: Key/secret material: HKDF outputs, sealing keys, signing keys, the
#: session keys the monitor distributes.  Must never reach a log,
#: telemetry label, exception message or the wire.
TAG_KEY = "key-material"

#: Bytes read from the untrusted storage device before the MAC **and**
#: Merkle/anchored-digest freshness walk have passed.  A page MAC alone
#: is not enough — a replayed stale page carries a valid MAC — so only a
#: ``verify_*`` call (Merkle walk, anchored-digest check) clears this.
TAG_STORAGE = "unverified-storage"

#: Bytes popped from the network link before the record MAC
#: (``constant_time_eq``) has been checked.
TAG_CHANNEL = "unverified-channel"

#: Decrypted row data inside the trust boundary.  May cross to the other
#: engine only through channel encryption (``SecureChannel.send`` / an
#: ``encrypt``-family call), never over the raw link.
TAG_PLAINTEXT = "plaintext-rows"

REAL_TAGS = frozenset({TAG_KEY, TAG_STORAGE, TAG_CHANNEL, TAG_PLAINTEXT})

#: Tags cleared by one-way functions (hashing, signing): a digest of a
#: key or of unverified bytes is safe to log, compare and export.
ALL_CLEARABLE = REAL_TAGS


def param_tag(index: int) -> tuple[str, int]:
    """Symbolic tag for "taint of the caller's argument *index*"."""
    return ("param", index)


def is_param_tag(tag) -> bool:
    return isinstance(tag, tuple) and len(tag) == 2 and tag[0] == "param"


Taint = dict  # tag -> origin string


def merge(into: Taint, other: Taint) -> Taint:
    """Union *other* into *into* (first origin wins), returning *into*."""
    for tag, origin in other.items():
        into.setdefault(tag, origin)
    return into


def union(*taints: Taint) -> Taint:
    out: Taint = {}
    for taint in taints:
        merge(out, taint)
    return out


def without(taint: Taint, cleared: frozenset) -> Taint:
    if not cleared:
        return dict(taint)
    return {tag: origin for tag, origin in taint.items() if tag not in cleared}


def real_tags(taint: Taint) -> set:
    return {tag for tag in taint if not is_param_tag(tag)}


# ----------------------------------------------------------------------
# AST naming


def dotted_name(node: ast.AST) -> str | None:
    """Best-effort dotted rendering of an expression: ``self.device.read_page``.

    Calls and subscripts are looked through (``x().y`` → ``x.y``) so the
    catalog's suffix patterns match chained expressions too.  Returns
    ``None`` for expressions with no stable name (literals, operators).
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    if isinstance(node, ast.Subscript):
        return dotted_name(node.value)
    if isinstance(node, ast.Starred):
        return dotted_name(node.value)
    return None


def match_pattern(dotted: str | None, pattern: str) -> bool:
    """Suffix-match a call's dotted name against a catalog pattern.

    ``"hkdf"`` matches ``hkdf`` and ``crypto.hkdf``; ``"device.read_page"``
    matches ``self.device.read_page`` but not ``pager.read_page``.  A
    trailing ``*`` in the last segment is a prefix wildcard on the final
    attribute (``"verify_*"`` matches ``tree.verify_leaf``); leading
    underscores on the final attribute are ignored so private helpers
    (``_verify_meta_digest``) match the same family.
    """
    if dotted is None:
        return False
    segments = dotted.split(".")
    want = pattern.split(".")
    if len(want) > len(segments):
        return False
    tail = segments[-len(want):]
    for actual, expected in zip(tail, want):
        if expected.endswith("*"):
            if not actual.lstrip("_").startswith(expected[:-1]):
                return False
        elif actual != expected and actual.lstrip("_") != expected:
            return False
    return True

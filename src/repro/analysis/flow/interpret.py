"""Per-function abstract interpreter: statement-ordered taint propagation.

One :class:`FunctionInterpreter` run walks a function body in source
order, tracking a taint environment over local names and ``self.attr``
pseudo-names.  Assignments (including tuple unpacking, augmented
assignment, comprehension targets and ``with``/``for`` bindings)
propagate taint; calls consult the catalog (sources, sinks, sanitizers)
and the summaries of resolved callees; verification guards clear the
"unverified" tags flow-sensitively, so a decode *before* its MAC/Merkle
check still fires.

The body is executed twice per run so loop-carried taint reaches a
fixpoint (the lattice is finite and the transfer monotone, two passes
suffice for one level of loop carry — matching every loop shape in this
tree); the engine-level fixpoint in :mod:`.program` handles recursion
across functions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from . import catalog
from .callgraph import FunctionInfo, ProjectIndex
from .taint import (
    Taint,
    dotted_name,
    is_param_tag,
    match_pattern,
    merge,
    param_tag,
    union,
    without,
)

_EXCEPTION_NAME = re.compile(r"^[A-Z]\w*(Error|Exception|Violation)$")

#: Receiver-mutating methods: ``rows.append(tainted)`` taints ``rows``.
_MUTATORS = frozenset(
    {"append", "add", "extend", "insert", "update", "setdefault", "put", "push"}
)

#: Message templates per rule; ``{origin}`` is the taint's provenance,
#: ``{label}`` the sink description.
MESSAGES = {
    "TAINT001": "key material ({origin}) reaches {label} unencrypted",
    "TAINT002": "bytes from {origin} are decoded/used by {label} "
    "before MAC+Merkle verification",
    "FLOW001": "plaintext row data ({origin}) crosses the enclave boundary "
    "via {label} without channel encryption",
}


@dataclass(frozen=True)
class ParamSinkRecord:
    """Summary fact: "my parameter *index* flows into a *rule* sink"."""

    index: int
    rule: str
    tags: frozenset
    label: str


@dataclass
class Summary:
    """Caller-visible behavior of one function."""

    returns: Taint
    param_sinks: frozenset  # of ParamSinkRecord

    def key(self):
        return (frozenset(self.returns.keys()), self.param_sinks)


EMPTY_SUMMARY = Summary(returns={}, param_sinks=frozenset())


@dataclass(frozen=True)
class FlowHit:
    """One dataflow finding, pre-``Finding`` (no path context yet)."""

    rule_id: str
    relpath: str
    module: str | None
    line: int
    col: int
    message: str


class FunctionInterpreter:
    def __init__(
        self,
        info: FunctionInfo,
        index: ProjectIndex,
        summaries: dict[str, Summary],
        report=None,
    ):
        self.info = info
        self.index = index
        self.summaries = summaries
        self.report = report  # callable(FlowHit) | None during fixpoint passes
        self.env: dict[str, Taint] = {}
        self.ret: Taint = {}
        self.param_sinks: set[ParamSinkRecord] = set()

    # ------------------------------------------------------------------

    def run(self) -> Summary:
        for i, name in enumerate(self.info.params):
            self.env[name] = {param_tag(i): f"parameter {name!r}"}
        body = self.info.node.body
        self.exec_stmts(body)
        self.exec_stmts(body)  # second pass: loop-carried taint
        self._apply_catalog_param_sinks()
        return Summary(returns=dict(self.ret), param_sinks=frozenset(self.param_sinks))

    def _apply_catalog_param_sinks(self) -> None:
        """Fold declared PARAM_SINKS for this function into its summary."""
        for suffix in self.info.suffixes:
            for sink in catalog.PARAM_SINKS.get(suffix, ()):
                if sink.param in self.info.params:
                    self.param_sinks.add(
                        ParamSinkRecord(
                            index=self.info.params.index(sink.param),
                            rule=sink.rule,
                            tags=sink.tags,
                            label=sink.label,
                        )
                    )

    # -- statements -----------------------------------------------------

    def exec_stmts(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, taint, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taint = union(self.eval(stmt.target), self.eval(stmt.value))
            self.assign(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                merge(self.ret, self.eval(stmt.value))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter)
            self.assign(stmt.target, taint)
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_stmts(stmt.body)
            self.exec_stmts(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            # Join semantics: each handler runs from the body's exit
            # state, and the after-try environment is the *union* of all
            # paths — a verification guard inside a handler must not
            # sanitize the fall-through path.
            self.exec_stmts(stmt.body)
            env_body = {name: dict(t) for name, t in self.env.items()}
            exits = [env_body]
            for handler in stmt.handlers:
                self.env = {name: dict(t) for name, t in env_body.items()}
                if handler.name:
                    self.env[handler.name] = {}
                self.exec_stmts(handler.body)
                exits.append(self.env)
            joined: dict = {}
            for exit_env in exits:
                for name, taint in exit_env.items():
                    merge(joined.setdefault(name, {}), taint)
            self.env = joined
            self.exec_stmts(stmt.orelse)
            self.exec_stmts(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taint)
            self.exec_stmts(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                name = dotted_name(target)
                if name:
                    self.env.pop(name, None)
        elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            subject = self.eval(stmt.subject)
            for case in stmt.cases:
                for capture in ast.walk(case.pattern):
                    if isinstance(capture, ast.MatchAs) and capture.name:
                        self.env[capture.name] = dict(subject)
                self.exec_stmts(case.body)
        # Nested defs/classes are indexed and analyzed separately;
        # imports, global/nonlocal, pass, break, continue carry no taint.

    # -- assignment targets ---------------------------------------------

    def assign(self, target, taint: Taint, value=None) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dict(taint)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = None
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                elements = value.elts
            for pos, sub in enumerate(target.elts):
                if elements is not None:
                    self.assign(sub, self.eval(elements[pos]), elements[pos])
                else:
                    self.assign(sub, taint)
        elif isinstance(target, ast.Attribute):
            name = dotted_name(target)
            if name:
                self.env[name] = dict(taint)
        elif isinstance(target, ast.Subscript):
            # Container write: the container accumulates the value's taint.
            name = dotted_name(target.value)
            if name:
                merge(self.env.setdefault(name, {}), taint)

    # -- expressions -----------------------------------------------------

    def eval(self, node) -> Taint:
        if node is None or isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BinOp):
            return union(self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.BoolOp):
            return union(*(self.eval(v) for v in node.values))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return {}  # comparisons yield booleans, not the compared bytes
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return union(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.JoinedStr):
            return union(*(self.eval(v) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return union(*(self.eval(e) for e in node.elts))
        if isinstance(node, ast.Dict):
            parts = [self.eval(k) for k in node.keys if k is not None]
            parts += [self.eval(v) for v in node.values]
            return union(*parts)
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            iter_taint = self._bind_comprehension(node.generators)
            return union(iter_taint, self.eval(node.elt))
        if isinstance(node, ast.DictComp):
            iter_taint = self._bind_comprehension(node.generators)
            return union(iter_taint, self.eval(node.key), self.eval(node.value))
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self.assign(node.target, taint)
            return taint
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            return self.eval(node.value) if node.value else {}
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part)
            return {}
        return {}

    def _eval_attribute(self, node: ast.Attribute) -> Taint:
        name = dotted_name(node)
        if name and name in self.env:
            return dict(self.env[name])
        for pattern, (tags, origin) in catalog.ATTRIBUTE_SOURCES.items():
            if match_pattern(name, pattern):
                return {
                    tag: f"{origin} at line {node.lineno}" for tag in tags
                }
        return self.eval(node.value)

    def _bind_comprehension(self, generators) -> Taint:
        out: Taint = {}
        for gen in generators:
            taint = self.eval(gen.iter)
            self.assign(gen.target, taint)
            for cond in gen.ifs:
                self.eval(cond)
            merge(out, taint)
        return out

    # -- calls -----------------------------------------------------------

    def eval_call(self, call: ast.Call) -> Taint:
        func = call.func
        dotted = dotted_name(func)
        arg_nodes = list(call.args) + [kw.value for kw in call.keywords]
        arg_taints = [self.eval(a) for a in arg_nodes]
        recv_taint = (
            self.eval(func.value) if isinstance(func, ast.Attribute) else {}
        )

        # Verification guards: the path is now authenticated.
        for guard in catalog.GUARD_SANITIZERS:
            if match_pattern(dotted, guard.pattern):
                self._clear_env(guard.clears)
                return {}

        result: Taint = {}
        handled = False

        for source in catalog.SOURCES:
            if not match_pattern(dotted, source.pattern):
                continue
            if source.when_arg is not None and not self._has_literal(
                arg_nodes, source.when_arg
            ):
                continue
            for tag in source.tags:
                result.setdefault(tag, f"{source.origin} at line {call.lineno}")
            handled = True

        for sanitizer in catalog.VALUE_SANITIZERS:
            if match_pattern(dotted, sanitizer.pattern):
                merge(result, without(union(*arg_taints), sanitizer.clears))
                handled = True

        all_args = union(*arg_taints)
        for sink in catalog.CALL_SINKS:
            if match_pattern(dotted, sink.pattern):
                self._sink_hit(call, sink.rule, sink.tags, sink.label, all_args)
                handled = True

        # Exception construction: interpolated secrets leak through
        # ``str(exc)``, tracebacks and signed audit exports.
        if isinstance(func, ast.Name) and _EXCEPTION_NAME.match(func.id):
            self._sink_hit(
                call,
                "TAINT001",
                catalog._KEY,
                f"exception {func.id}",
                all_args,
            )
            handled = True

        # Constructor calls: building an object neither leaks nor
        # launders by itself — reads of secret-bearing fields are caught
        # by ATTRIBUTE_SOURCES (field-name sensitivity).
        if isinstance(func, ast.Name) and func.id in self.index.class_names:
            handled = True

        resolved = self.index.resolve(
            call, module=self.info.module, cls=self.info.cls
        )
        for callee in resolved:
            summary = self.summaries.get(callee.qualname)
            if summary is None:
                continue
            handled = True
            offset = 1 if self._is_bound_method_call(call, callee) else 0
            for tag, origin in summary.returns.items():
                if is_param_tag(tag):
                    merge(result, self._taint_of_param(call, callee, tag[1], offset))
                else:
                    result.setdefault(tag, origin)
            for record in summary.param_sinks:
                taint = self._taint_of_param(call, callee, record.index, offset)
                self._sink_hit(
                    call,
                    record.rule,
                    record.tags,
                    record.label,
                    taint,
                    via=callee.name,
                )

        if not handled:
            result = union(recv_taint, *arg_taints)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and result
            ):
                base = dotted_name(func.value)
                if base:
                    merge(self.env.setdefault(base, {}), result)
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _has_literal(arg_nodes, literal: str) -> bool:
        return any(
            isinstance(a, ast.Constant) and a.value == literal for a in arg_nodes
        )

    @staticmethod
    def _is_bound_method_call(call: ast.Call, callee: FunctionInfo) -> bool:
        """True when the receiver supplies ``self`` (``obj.m(...)``)."""
        if callee.cls is None or not callee.params or callee.params[0] not in (
            "self",
            "cls",
        ):
            return False
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        # ``ClassName.method(obj, ...)`` passes self explicitly.
        if isinstance(func.value, ast.Name) and func.value.id == callee.cls:
            return False
        return True

    def _taint_of_param(
        self, call: ast.Call, callee: FunctionInfo, index: int, offset: int
    ) -> Taint:
        """Taint of the value the caller passes for parameter *index*."""
        positional = index - offset
        if 0 <= positional < len(call.args):
            node = call.args[positional]
            if isinstance(node, ast.Starred):
                return self.eval(node.value)
            return self.eval(node)
        if index < len(callee.params):
            wanted = callee.params[index]
            for kw in call.keywords:
                if kw.arg == wanted:
                    return self.eval(kw.value)
        return {}

    def _clear_env(self, cleared: frozenset) -> None:
        for name, taint in list(self.env.items()):
            self.env[name] = without(taint, cleared)
        self.ret = without(self.ret, cleared)

    def _sink_hit(
        self,
        node: ast.AST,
        rule: str,
        tags: frozenset,
        label: str,
        taint: Taint,
        via: str | None = None,
    ) -> None:
        for tag, origin in taint.items():
            if is_param_tag(tag):
                # The caller decides: record "my parameter tag[1] flows
                # into this sink" so resolved call sites re-check with
                # the real taint of the argument they pass.
                self.param_sinks.add(
                    ParamSinkRecord(index=tag[1], rule=rule, tags=tags, label=label)
                )
            elif tag in tags and self.report is not None:
                message = MESSAGES[rule].format(origin=origin, label=label)
                if via:
                    message += f" (via {via}())"
                self.report(
                    FlowHit(
                        rule_id=rule,
                        relpath=self.info.relpath,
                        module=self.info.module,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0) + 1,
                        message=message,
                    )
                )

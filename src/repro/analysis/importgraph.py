"""Module-import-graph builder.

Maps every analyzed module to the set of in-tree (``repro.*``) modules it
imports, resolving relative imports against the importer's package.  The
architecture-conformance rules (layering, enclave boundary) consume this
graph instead of re-walking the AST themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

ROOT_PACKAGE = "repro"


def module_name_for(path: Path) -> str | None:
    """Dotted module name for *path*, found by walking up ``__init__.py``s.

    Returns ``None`` for a loose script that is not inside a package —
    such files still get the security rules, but no architecture rules.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(parts) if parts else None


def top_subpackage(module: str) -> str | None:
    """``repro.storage.merkle`` → ``storage``; ``repro`` itself → ``None``."""
    parts = module.split(".")
    # Package-name comparison, not authenticator bytes:
    if len(parts) < 2 or parts[0] != ROOT_PACKAGE:  # lint: disable=SEC001
        return None
    return parts[1]


@dataclass
class ImportRecord:
    """One resolved in-tree import site."""

    module: str  # resolved absolute dotted target, e.g. "repro.storage"
    names: tuple[str, ...]  # names bound by a from-import ("SecurePager",)
    lineno: int
    col: int


@dataclass
class ImportGraph:
    """Resolved in-tree imports for every analyzed module."""

    _edges: dict[str, list[ImportRecord]] = field(default_factory=dict)

    def add_module(
        self, module: str | None, tree: ast.AST, *, is_package: bool = False
    ) -> list[ImportRecord]:
        """Record the in-tree imports of *module* and return them.

        *is_package* marks ``__init__`` modules, whose relative imports
        resolve against the module itself rather than its parent.
        """
        records: list[ImportRecord] = []
        package = self._package_of(module, is_package)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    if self._in_tree(target):
                        records.append(
                            ImportRecord(target, (), node.lineno, node.col_offset + 1)
                        )
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(package, node)
                if target is not None and self._in_tree(target):
                    names = tuple(alias.name for alias in node.names)
                    records.append(
                        ImportRecord(target, names, node.lineno, node.col_offset + 1)
                    )
        if module is not None:
            self._edges.setdefault(module, []).extend(records)
        return records

    def imports_of(self, module: str) -> list[ImportRecord]:
        return list(self._edges.get(module, ()))

    def imported_subpackages(self, module: str) -> set[str]:
        """Top-level ``repro`` subpackages *module* depends on."""
        out: set[str] = set()
        for record in self.imports_of(module):
            sub = top_subpackage(record.module)
            if sub is not None:
                out.add(sub)
        return out

    def modules(self) -> list[str]:
        return sorted(self._edges)

    # ------------------------------------------------------------------

    @staticmethod
    def _package_of(module: str | None, is_package: bool) -> list[str]:
        if module is None:
            return []
        parts = module.split(".")
        return parts if is_package else parts[:-1]

    @staticmethod
    def _in_tree(target: str) -> bool:
        # Package-name comparison, not authenticator bytes:
        return target == ROOT_PACKAGE or target.startswith(ROOT_PACKAGE + ".")  # lint: disable=SEC001

    @staticmethod
    def _resolve_from(package: list[str], node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        # "from ..crypto import x" inside repro.storage.merkle:
        # level=2 strips one extra component off the package path.
        strip = node.level - 1
        if strip > len(package):
            return None  # relative import escaping the tree; not ours to resolve
        base = package[: len(package) - strip] if strip else list(package)
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

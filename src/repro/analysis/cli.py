"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit status: 0 when clean (or when findings exist but
``--fail-on-findings`` was not requested), 1 when findings remain after
suppressions and baseline filtering and ``--fail-on-findings`` is set,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import Analyzer
from .registry import all_rules, select_rules

DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Security-lint and architecture-conformance checks "
        "for the IronSafe reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyze (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="describe one rule (for TAINT/FLOW rules: its source/sink/"
        "sanitizer catalog) and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of grandfathered findings to ignore",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 if any non-grandfathered finding remains",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by '# lint: disable=...' comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every registered rule"
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.title}")
        print(f"        {rule.rationale}")
    return 0


def _explain(rule_id: str) -> int:
    from .registry import get_rule

    try:
        rule = get_rule(rule_id.upper())
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{rule.rule_id}: {rule.title}")
    print()
    print(rule.rationale)
    if rule.rule_id.startswith(("TAINT", "FLOW")):
        from .flow import rule_doc

        doc = rule_doc(rule.rule_id)
        for heading, lines in (
            ("sources", doc.sources),
            ("sinks", doc.sinks),
            ("sanitizers", doc.sanitizers),
        ):
            if lines:
                print()
                print(f"{heading}:")
                for line in lines:
                    print(f"  {line}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.explain:
        return _explain(args.explain)

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        print("repro-lint: no paths given and default src/repro not found", file=sys.stderr)
        return 2

    try:
        selected = (
            select_rules([r.strip() for r in args.select.split(",") if r.strip()])
            if args.select
            else None
        )
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"repro-lint: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    try:
        result = Analyzer(rules=selected).run(paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).dump(args.write_baseline)
        print(
            f"wrote baseline with {len(result.findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.format == "sarif":
        from .sarif import to_sarif

        rules = selected if selected is not None else all_rules()
        print(json.dumps(to_sarif(result, rules), indent=2))
    elif args.format == "json":
        payload = {
            "modules_analyzed": result.modules_analyzed,
            "findings": [f.to_json() for f in result.findings],
            "grandfathered": [f.to_json() for f in result.grandfathered],
            "suppressed": [f.to_json() for f in result.suppressed]
            if args.show_suppressed
            else len(result.suppressed),
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        if args.show_suppressed:
            for finding in result.suppressed:
                print(f"{finding.render()}  (suppressed)")
        tail = (
            f"{result.modules_analyzed} module(s), "
            f"{len(result.findings)} finding(s), "
            f"{len(result.grandfathered)} grandfathered, "
            f"{len(result.suppressed)} suppressed"
        )
        print(tail)

    if result.findings and args.fail_on_findings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

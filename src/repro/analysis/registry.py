"""Rule-plugin registry.

Rules are small classes registered with the :func:`register` decorator.
The engine never hard-codes a rule list; adding a check to the framework
is *only* writing a class, so future PRs can ship their own invariants
alongside the code they protect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ModuleContext


class Rule:
    """Base class for one analysis rule.

    Subclasses set ``rule_id`` (e.g. ``"SEC001"``), ``title`` and
    ``rationale``, and implement :meth:`check` over a single parsed
    module.  Rules must be stateless across modules: the engine reuses
    one instance for the whole run.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node, message: str) -> Finding:
        """Build a finding anchored at an AST node of *ctx*'s module."""
        return Finding(
            rule_id=self.rule_id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its ``rule_id``."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}") from None


def select_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """All rules, or the subset named in *only* (validated)."""
    if only is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in only]

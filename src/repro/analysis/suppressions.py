"""Per-line suppression comments.

A finding on a line carrying ``# lint: disable=SEC001`` (or a
comma-separated list, or ``all``) is dropped.  Suppressions are meant to
be rare and justified in an adjacent comment; the CLI's ``--show-suppressed``
makes them auditable.
"""

from __future__ import annotations

import re

_DISABLE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


def suppressed_rules(line: str) -> frozenset[str]:
    """Rule ids suppressed by the source *line* (empty set if none)."""
    match = _DISABLE.search(line)
    if not match:
        return frozenset()
    return frozenset(
        token.strip().upper() for token in match.group(1).split(",") if token.strip()
    )


def is_suppressed(rule_id: str, line: str) -> bool:
    rules = suppressed_rules(line)
    return rule_id.upper() in rules or "ALL" in rules


def line_suppressions(source_lines: list[str]) -> dict[int, frozenset[str]]:
    """Map of 1-based line number → suppressed rule ids, sparse."""
    table: dict[int, frozenset[str]] = {}
    for index, line in enumerate(source_lines, start=1):
        rules = suppressed_rules(line)
        if rules:
            table[index] = rules
    return table

"""JSON baseline of grandfathered findings.

A baseline lets the analyzer gate *new* violations while an old one is
being paid down: findings whose (rule, path, message) triple appears in
the baseline file are reported as grandfathered instead of failing the
run.  Line numbers are deliberately not part of the identity so that
unrelated edits do not resurrect entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered finding identities."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {data.get('version')!r}"
            )
        entries = {
            (item["rule"], item["path"].replace("\\", "/"), item["message"])
            for item in data.get("findings", [])
        }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls({f.baseline_key() for f in findings})

    def contains(self, finding: Finding) -> bool:
        return finding.baseline_key() in self.entries

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered)."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if self.contains(finding) else new).append(finding)
        return new, old

    def dump(self, path: str | Path) -> None:
        items = [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in sorted(self.entries)
        ]
        payload = {"version": BASELINE_VERSION, "findings": items}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

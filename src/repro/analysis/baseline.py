"""JSON baseline of grandfathered findings.

A baseline lets the analyzer gate *new* violations while an old one is
being paid down: findings whose (rule, path, message) triple appears in
the baseline file are reported as grandfathered instead of failing the
run.  Line numbers are deliberately not part of the identity so that
unrelated edits do not resurrect entries.

Identities are a *multiset*: when the same (rule, path, message) triple
occurs K times in the baseline, only the first K occurrences in the run
— ordered by (line, col), a stable occurrence index — are grandfathered,
and any further duplicates are new findings.  A plain set would silently
grandfather every future copy of a baselined message (e.g. the same
``print()`` pasted into a second function of the file).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Multiset of grandfathered finding identities."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {data.get('version')!r}"
            )
        entries: Counter = Counter()
        for item in data.get("findings", []):
            entries[
                (item["rule"], item["path"].replace("\\", "/"), item["message"])
            ] += 1
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.baseline_key() for f in findings))

    def contains(self, finding: Finding) -> bool:
        return self.entries[finding.baseline_key()] > 0

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered).

        Duplicate identities are consumed in stable occurrence order
        (path, line, col, rule), so which copy stays grandfathered does
        not depend on input ordering.
        """
        new: list[Finding] = []
        old: list[Finding] = []
        remaining = Counter(self.entries)
        ordered = sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )
        for finding in ordered:
            key = finding.baseline_key()
            if remaining[key] > 0:
                remaining[key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def dump(self, path: str | Path) -> None:
        items = [
            {"rule": rule, "path": rel, "message": message}
            for (rule, rel, message), count in sorted(self.entries.items())
            for _ in range(count)
        ]
        payload = {"version": BASELINE_VERSION, "findings": items}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

"""Dataflow rules: key confinement, verify-before-use, fail-closed.

TAINT001/TAINT002/FLOW001 are thin adapters over the interprocedural
engine in :mod:`repro.analysis.flow` — they pull the pre-computed hits
for their module out of the shared :class:`FlowProgram`.  TAINT003 is a
direct AST check (exception-handler discipline needs no dataflow).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register

#: Exceptions that signal a broken integrity/freshness proof.  Catching
#: one and carrying on converts a detected attack into silent data loss.
_FAIL_CLOSED_EXCEPTIONS = {"IntegrityError", "FreshnessError"}

#: Calls that count as routing the violation into the audit trail.
_AUDIT_CALL_NAMES = {
    "record_integrity_violation",
    "_report_violation",
    "on_violation",
}


class _FlowRule(Rule):
    """Shared ``check``: surface this module's slice of the flow program."""

    def check(self, ctx) -> Iterator[Finding]:
        for hit in ctx.flow.findings_for(ctx.relpath, self.rule_id):
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=hit.line,
                col=hit.col,
                message=hit.message,
            )


@register
class KeyConfinement(_FlowRule):
    rule_id = "TAINT001"
    title = "key material must not reach logs, telemetry, exceptions or the wire"
    rationale = (
        "Derived keys (hkdf, sealing keys, session keys) leak through "
        "__str__ of log records, telemetry labels, exception messages and "
        "raw link frames; only ciphertext and digests may leave the "
        "enclave trust boundary."
    )


@register
class VerifyBeforeUse(_FlowRule):
    rule_id = "TAINT002"
    title = "storage/channel bytes must be MAC+Merkle verified before decoding"
    rationale = (
        "Decoding untrusted device or link bytes before the MAC check and "
        "the Merkle/anchored-digest freshness walk lets a malicious host "
        "feed forged or replayed pages into query results."
    )


@register
class PlaintextBoundary(_FlowRule):
    rule_id = "FLOW001"
    title = "plaintext rows must not cross the enclave boundary unencrypted"
    rationale = (
        "Decrypted row data may leave an engine only through channel "
        "encryption (SecureChannel / an encrypt-family call); writing it "
        "to the raw link reveals query contents to the host."
    )


@register
class FailClosedHandlers(Rule):
    rule_id = "TAINT003"
    title = "IntegrityError/FreshnessError must fail closed"
    rationale = (
        "An except block that swallows an integrity or freshness failure "
        "without re-raising or recording it in the monitor's audit log "
        "turns a detected attack into a silent wrong answer."
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                relevant = self._caught_names(handler) & _FAIL_CLOSED_EXCEPTIONS
                if not relevant or self._fails_closed(handler):
                    continue
                yield self.finding(
                    ctx,
                    handler,
                    f"{'/'.join(sorted(relevant))} caught without re-raise "
                    "or record_integrity_violation — integrity failures "
                    "must fail closed into the audit log",
                )

    @staticmethod
    def _caught_names(handler: ast.ExceptHandler) -> set[str]:
        names: set[str] = set()
        spec = handler.type
        if spec is None:
            return {"BaseException"}
        parts = spec.elts if isinstance(spec, ast.Tuple) else [spec]
        for part in parts:
            if isinstance(part, ast.Name):
                names.add(part.id)
            elif isinstance(part, ast.Attribute):
                names.add(part.attr)
        return names

    @staticmethod
    def _fails_closed(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name in _AUDIT_CALL_NAMES:
                    return True
        return False

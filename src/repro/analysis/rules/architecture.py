"""Architecture-conformance rules (ARCH001–ARCH010).

The reproduction's trust argument depends on its layering: ``crypto`` is
the bottom of the TCB, enclave internals are reachable only through the
deployment/channel layer, and every monitor mutation leaves an audit
trace.  These rules pin that structure so a refactor cannot silently
invert it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..importgraph import top_subpackage
from ..registry import Rule, register

# Allowed repro-internal dependencies per top-level subpackage.  "errors"
# is the shared bottom; a package absent from this table is unconstrained
# (new packages opt in by adding a row).
LAYERING: dict[str, frozenset[str]] = {
    "errors": frozenset(),
    "crypto": frozenset({"errors"}),
    "sim": frozenset({"errors"}),
    # Telemetry is pure observation: it may see simulated time but never
    # the security machinery it observes (ARCH004 enforces the latter by
    # name too, so even an allowed layer can't smuggle key material in).
    "telemetry": frozenset({"errors", "sim"}),
    # The performance layer (page cache, session scheduler) is policy, not
    # security: it handles opaque bytes and simulated durations, so it may
    # never import the crypto it sits next to.
    "perf": frozenset({"errors", "sim"}),
    # The streaming ship pipeline is transport policy: encoded rows and
    # simulated durations only.  It may see the record wire format
    # (ARCH005 pins its repro.sql surface to repro.sql.records) but never
    # the query engine or crypto it ships between.
    "stream": frozenset({"errors", "sim", "sql"}),
    # Table statistics (zone maps / pruning predicates) summarise plaintext
    # rows: they may use the SQL value semantics (ARCH006 pins the surface
    # to repro.sql.values) but never the crypto/TEE machinery that
    # authenticates the persisted synopses — that protection lives in the
    # storage layer.
    "stats": frozenset({"errors", "sim", "sql"}),
    # Oblivious-execution primitives (padding, fixed ship schedules, the
    # bitonic operator networks) are pure data-shape policy: they may see
    # simulated meters, telemetry and the SQL value semantics (ARCH008
    # pins the surface to repro.sql.values) but never the crypto, TEE or
    # engine machinery whose traces they flatten.
    "oblivious": frozenset({"errors", "sim", "telemetry", "sql"}),
    "sql": frozenset({"errors", "sim", "stats", "oblivious"}),
    "storage": frozenset({"errors", "sim", "crypto", "telemetry", "perf"}),
    "tee": frozenset({"errors", "sim", "crypto"}),
    "policy": frozenset({"errors", "sql"}),
    "monitor": frozenset(
        {"errors", "sim", "crypto", "sql", "policy", "tee", "telemetry"}
    ),
    "tpch": frozenset({"errors", "crypto", "sql"}),
    "core": frozenset(
        {"errors", "sim", "crypto", "sql", "storage", "tee", "policy", "monitor",
         "tpch", "telemetry", "perf", "stream", "oblivious"}
    ),
    "gdpr": frozenset(
        {"errors", "sim", "crypto", "sql", "storage", "policy", "monitor", "core"}
    ),
    "bench": frozenset(
        {"errors", "sim", "crypto", "sql", "tpch", "core", "telemetry"}
    ),
    # The sharded scale-out layer composes existing machinery: it may see
    # the deployment/partitioning surface (core), zone-map synopses
    # (stats), the ship pipeline and oblivious padding, and the TPC-H
    # generator for partition-aware loading.  Its repro.sql surface is
    # pinned by ARCH010 to the value semantics and record wire format —
    # parsing and planning happen through repro.core — and it must never
    # touch crypto or TEE machinery: each shard's keys and anchors live
    # behind its engines.
    "shard": frozenset(
        {"errors", "sim", "stats", "telemetry", "perf", "stream",
         "oblivious", "sql", "tpch", "core"}
    ),
    # The analyzer lints trees that may not import; it depends on nothing.
    "analysis": frozenset(),
}

# Class names that are enclave/secure-storage internals: only the trusted
# assembly layer may touch them; untrusted code goes through core.channel
# or the Deployment API.
ENCLAVE_INTERNALS = frozenset(
    {
        "SecurePager",
        "TAAnchor",
        "Enclave",
        "TrustedOS",
        "TrustedApplication",
        "SecureStorageTA",
        "AttestationTA",
        "RPMB",
        "RPMBClient",
        "TrustZoneDevice",
        "RealmManager",
    }
)
TRUSTED_SUBPACKAGES = frozenset({"storage", "tee", "monitor", "core"})

# Monitor methods whose name starts with one of these verbs mutate
# monitor state and must leave an audit-log trace.
MUTATION_PREFIXES = ("register_", "provision_", "revoke", "rotate_", "finish_", "delete_")
AUDIT_CALL_NAMES = frozenset({"_audit", "append", "audit_log"})


@register
class LayeringViolation(Rule):
    """Module imports a subpackage its layer may not depend on.

    Keeps the TCB partial order acyclic and honest: ``crypto`` must stay
    importable inside the most constrained TEE (so it cannot pull in
    ``monitor``/``core``), and the ``sql`` engine runs inside enclaves on
    both sides of the channel, so it may never reach back into ``tee``.
    """

    rule_id = "ARCH001"
    title = "package layering violation"
    rationale = "the TCB dependency order is part of the trust argument"

    def check(self, ctx) -> Iterator[Finding]:
        subpackage = ctx.subpackage
        if ctx.module is None or subpackage is None:
            return
        allowed = LAYERING.get(subpackage)
        if allowed is None:
            return
        for record in ctx.graph.imports_of(ctx.module):
            target = top_subpackage(record.module)
            if target is None:
                # Importing the bare "repro" package root from inside a
                # subpackage would also invert the layering.
                if record.module == "repro" and subpackage != "analysis":
                    yield Finding(
                        rule_id=self.rule_id,
                        path=ctx.relpath,
                        line=record.lineno,
                        col=record.col,
                        message=f"'{subpackage}' imports the repro package root; "
                        "import the concrete subpackage instead",
                    )
                continue
            if target == subpackage or target in allowed:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"'{subpackage}' may not import 'repro.{target}' "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})"
                ),
            )


@register
class EnclaveBoundaryViolation(Rule):
    """Untrusted module reaches into enclave / secure-storage internals.

    ``SecurePager``, ``Enclave``, the TrustZone TAs and the RPMB are
    inside the trust boundary; host-side and workload code must cross it
    only through ``repro.core.channel`` (MAC'd messages) or the
    ``Deployment`` API, exactly like the hardware would force it to.
    """

    rule_id = "ARCH002"
    title = "enclave internals referenced outside the trusted layer"
    rationale = "the enclave boundary is only real if no code bypasses it"

    def check(self, ctx) -> Iterator[Finding]:
        subpackage = ctx.subpackage
        if subpackage is None or subpackage in TRUSTED_SUBPACKAGES:
            return
        if subpackage == "analysis":
            return  # the linter names these classes in its own tables
        for node in ast.walk(ctx.tree):
            name: str | None = None
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in ENCLAVE_INTERNALS:
                        name = alias.name
                        break
            elif isinstance(node, ast.Name) and node.id in ENCLAVE_INTERNALS:
                name = node.id
            elif isinstance(node, ast.Attribute) and node.attr in ENCLAVE_INTERNALS:
                name = node.attr
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"untrusted package '{subpackage}' references enclave-internal "
                    f"'{name}'; go through repro.core.channel or the Deployment API",
                )


@register
class UnauditedMonitorMutation(Rule):
    """Monitor state mutated without an audit-log append.

    The paper's transparency obligation (and GDPR Art. 30) requires the
    trusted monitor to record provisioning, registration and revocation —
    not just queries.  Any ``register_*``/``provision_*``/``revoke*``/...
    method on a ``*Monitor`` class must append to an audit log (directly
    or via an ``_audit`` helper).
    """

    rule_id = "ARCH003"
    title = "monitor mutation without audit-log append"
    rationale = "unaudited mutations break the tamper-evident history"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "monitor":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or "Monitor" not in node.name:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not item.name.startswith(MUTATION_PREFIXES):
                    continue
                if self._audits(item):
                    continue
                yield self.finding(
                    ctx,
                    item,
                    f"{node.name}.{item.name} mutates monitor state but never "
                    "appends to an audit log",
                )

    @staticmethod
    def _audits(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Attribute) and callee.attr in AUDIT_CALL_NAMES:
                    return True
                if isinstance(callee, ast.Name) and callee.id in AUDIT_CALL_NAMES:
                    return True
        return False


# Packages the observability layer must never depend on, and the secret-
# bearing attribute/function names it must never reference.  A span that
# could reach key material would turn the trace files — which leave the
# enclave by design — into an exfiltration channel.
TELEMETRY_FORBIDDEN_PACKAGES = frozenset({"crypto", "tee"})
TELEMETRY_FORBIDDEN_NAMES = frozenset(
    {
        "master_key",
        "session_key",
        "get_master_key",
        "private_key",
        "_signing_key",
        "_keypair",
        "_enc_key",
        "_mac_key",
        "_merkle_key",
        "attestation_key",
    }
)


@register
class TelemetryIsolationViolation(Rule):
    """Telemetry reaches into crypto/TEE internals or names key material.

    Traces and metrics are exported to untrusted storage (JSONL files,
    Chrome trace viewers) — the one place data intentionally leaves the
    trust boundary.  The telemetry package therefore must stay blind to
    the security machinery: no imports of ``repro.crypto`` or
    ``repro.tee``, and no references to key-bearing attributes.  Audit
    correlation uses duck-typed entry digests for exactly this reason.
    """

    rule_id = "ARCH004"
    title = "telemetry reaches into security internals"
    rationale = "exported traces must be incapable of carrying key material"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "telemetry":
            return
        for record in ctx.graph.imports_of(ctx.module) if ctx.module else ():
            target = top_subpackage(record.module)
            if target in TELEMETRY_FORBIDDEN_PACKAGES:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=record.lineno,
                    col=record.col,
                    message=f"telemetry may not import 'repro.{target}': "
                    "the observability layer stays outside the TCB",
                )
        for node in ast.walk(ctx.tree):
            name: str | None = None
            if isinstance(node, ast.Attribute) and node.attr in TELEMETRY_FORBIDDEN_NAMES:
                name = node.attr
            elif isinstance(node, ast.Name) and node.id in TELEMETRY_FORBIDDEN_NAMES:
                name = node.id
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"telemetry references key material {name!r}; spans may "
                    "carry counts and digests only",
                )


# The one repro.sql module the stream package may import: the record wire
# format.  Everything else in repro.sql (parser, planner, operators,
# stores) is query-engine machinery the transport layer must stay blind to.
STREAM_ALLOWED_SQL_MODULES = frozenset({"repro.sql.records"})


@register
class StreamSurfaceViolation(Rule):
    """The stream package imports repro.sql beyond the record wire format.

    ARCH001 already allows ``stream`` → ``sql``, but the intended surface
    is exactly ``repro.sql.records`` (encode/decode of rows and batches).
    If the ship pipeline could reach the planner or the stores it could
    execute queries on its own, outside the engines' metering and the
    enclave boundary — so the wider import is banned by name.
    """

    rule_id = "ARCH005"
    title = "stream package exceeds its repro.sql surface"
    rationale = "the transport layer must not grow into a query engine"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "stream" or ctx.module is None:
            return
        for record in ctx.graph.imports_of(ctx.module):
            if top_subpackage(record.module) != "sql":
                continue
            if record.module in STREAM_ALLOWED_SQL_MODULES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"stream may import repro.sql only via "
                    f"{', '.join(sorted(STREAM_ALLOWED_SQL_MODULES))}; "
                    f"found import of {record.module!r}"
                ),
            )


# The one repro.sql module the stats package may import: the SQL value
# semantics (coercion and three-valued comparisons).  Pruning decisions
# must agree with the row-level filter, so they share those primitives —
# but the stats layer must never reach the planner, stores or operators,
# and (via LAYERING) never the crypto that authenticates its synopses.
STATS_ALLOWED_SQL_MODULES = frozenset({"repro.sql.values"})


@register
class StatsSurfaceViolation(Rule):
    """The stats package imports repro.sql beyond the value semantics.

    ARCH001 already allows ``stats`` → ``sql``, but the intended surface
    is exactly ``repro.sql.values``.  If zone maps could reach the stores
    or the pager they could read pages outside the metered, authenticated
    scan path — the synopses must stay a passive summary the engine
    consults, not a second data path.
    """

    rule_id = "ARCH006"
    title = "stats package exceeds its repro.sql surface"
    rationale = "zone maps summarise data; they must not become a data path"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "stats" or ctx.module is None:
            return
        for record in ctx.graph.imports_of(ctx.module):
            if top_subpackage(record.module) != "sql":
                continue
            if record.module in STATS_ALLOWED_SQL_MODULES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"stats may import repro.sql only via "
                    f"{', '.join(sorted(STATS_ALLOWED_SQL_MODULES))}; "
                    f"found import of {record.module!r}"
                ),
            )


# The adversary-view observability package (repro.telemetry.obsv) models
# what the untrusted host/storage can see.  It must stay a pure consumer
# of recorded traces: telemetry internals, shared errors and simulated
# time only — pulling in storage, core or crypto would let the "adversary"
# peek inside the trust boundary it is supposed to sit outside of.
OBSV_PREFIX = "repro.telemetry.obsv"
OBSV_ALLOWED_SUBPACKAGES = frozenset({"telemetry", "errors", "sim"})


@register
class ObsvConfinementViolation(Rule):
    rule_id = "ARCH007"
    title = "adversary-view package exceeds its import surface"
    rationale = "the leakage meter models the adversary; it must not join the system"

    def check(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if module is None:
            return
        if module != OBSV_PREFIX and not module.startswith(OBSV_PREFIX + "."):
            return
        for record in ctx.graph.imports_of(module):
            target = top_subpackage(record.module)
            if target in OBSV_ALLOWED_SUBPACKAGES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"repro.telemetry.obsv may import only "
                    f"{', '.join(sorted(OBSV_ALLOWED_SUBPACKAGES))}; "
                    f"found import of {record.module!r}"
                ),
            )


# The oblivious-execution package pads and reorders *shapes* (page
# schedules, frame sizes, compare-exchange networks).  Like stats it may
# share the SQL value semantics — the bitonic sort must agree with the
# engine's ORDER BY comparisons — but it must never reach the stores,
# pager or operators: obliviousness is a transform the engine applies,
# not a second execution path.
OBLIVIOUS_ALLOWED_SQL_MODULES = frozenset({"repro.sql.values"})


@register
class ObliviousSurfaceViolation(Rule):
    """The oblivious package imports repro.sql beyond the value semantics.

    ARCH001 already allows ``oblivious`` → ``sql``, but the intended
    surface is exactly ``repro.sql.values``.  If the padding or shuffle
    primitives could reach the stores or the pager they could issue reads
    outside the metered, authenticated scan path — dummy work must flow
    through the same pipeline as real work or the cost model lies.
    """

    rule_id = "ARCH008"
    title = "oblivious package exceeds its repro.sql surface"
    rationale = "dummy work must ride the real pipeline, not a side door"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "oblivious" or ctx.module is None:
            return
        for record in ctx.graph.imports_of(ctx.module):
            if top_subpackage(record.module) != "sql":
                continue
            if record.module in OBLIVIOUS_ALLOWED_SQL_MODULES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"oblivious may import repro.sql only via "
                    f"{', '.join(sorted(OBLIVIOUS_ALLOWED_SQL_MODULES))}; "
                    f"found import of {record.module!r}"
                ),
            )


# The vector data plane (repro.sql.vector) holds typed column buffers and
# batch kernels.  It must stay a passive data representation: the record
# wire format, the SQL value semantics, shared errors and simulated meters
# only.  If it could reach the planner, stores or operators it would grow
# into a second query engine outside the metered scan path — morsels are
# containers the engine fills, not a data path of their own.
# The sharded scale-out package routes scans, partitions rows and prices
# candidate plans — all over values and encoded records.  Its repro.sql
# surface is exactly the value semantics and the record wire format;
# parsing, planning and aggregate decomposition go through repro.core.
# And although every shard's engines hold keys, anchors and Merkle roots,
# the shard layer itself must stay key-blind: it reaches each node's
# security machinery only through engine/deployment attribute surfaces.
SHARD_ALLOWED_SQL_MODULES = frozenset({"repro.sql.values", "repro.sql.records"})
SHARD_FORBIDDEN_NAMES = frozenset(
    {
        "master_key",
        "get_master_key",
        "private_key",
        "_signing_key",
        "_keypair",
        "_enc_key",
        "_mac_key",
        "_merkle_key",
        "attestation_key",
    }
)


@register
class ShardConfinementViolation(Rule):
    """The shard package exceeds its repro.sql surface or names key material.

    ARCH001 already allows ``shard`` → ``sql``, but the intended surface
    is exactly ``repro.sql.values`` / ``repro.sql.records`` — the sharded
    runners re-ship rows other layers produced; if they could reach the
    parser, planner or stores they would become a second query engine
    outside the metered path.  The rule also bans key-material names
    outright: a layer that fans one query across N trust domains must
    never be able to aggregate their keys.
    """

    rule_id = "ARCH010"
    title = "shard package exceeds its confinement surface"
    rationale = "cross-shard orchestration must stay key-blind and engine-blind"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.subpackage != "shard":
            return
        for record in ctx.graph.imports_of(ctx.module) if ctx.module else ():
            if top_subpackage(record.module) != "sql":
                continue
            if record.module in SHARD_ALLOWED_SQL_MODULES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"shard may import repro.sql only via "
                    f"{', '.join(sorted(SHARD_ALLOWED_SQL_MODULES))}; "
                    f"found import of {record.module!r}"
                ),
            )
        for node in ast.walk(ctx.tree):
            name: str | None = None
            if isinstance(node, ast.Attribute) and node.attr in SHARD_FORBIDDEN_NAMES:
                name = node.attr
            elif isinstance(node, ast.Name) and node.id in SHARD_FORBIDDEN_NAMES:
                name = node.id
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"shard references key material {name!r}; per-shard keys "
                    "stay inside each node's engines",
                )


VECTOR_PREFIX = "repro.sql.vector"
VECTOR_ALLOWED_SUBPACKAGES = frozenset({"errors", "sim"})
VECTOR_ALLOWED_SQL_MODULES = frozenset({"repro.sql.values", "repro.sql.records"})


@register
class VectorConfinementViolation(Rule):
    rule_id = "ARCH009"
    title = "vector data plane exceeds its import surface"
    rationale = "column batches are containers, not a second query engine"

    def check(self, ctx) -> Iterator[Finding]:
        module = ctx.module
        if module is None:
            return
        if module != VECTOR_PREFIX and not module.startswith(VECTOR_PREFIX + "."):
            return
        for record in ctx.graph.imports_of(module):
            if record.module == VECTOR_PREFIX or record.module.startswith(
                VECTOR_PREFIX + "."
            ):
                continue
            if top_subpackage(record.module) in VECTOR_ALLOWED_SUBPACKAGES:
                continue
            if record.module in VECTOR_ALLOWED_SQL_MODULES:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=record.lineno,
                col=record.col,
                message=(
                    f"repro.sql.vector may import only "
                    f"{', '.join(sorted(VECTOR_ALLOWED_SQL_MODULES))} plus "
                    f"{', '.join(sorted(VECTOR_ALLOWED_SUBPACKAGES))}; "
                    f"found import of {record.module!r}"
                ),
            )

"""Security-hygiene rules (SEC001–SEC005).

These encode the paper's side-channel and key-management discipline as
machine-checked invariants: MAC/digest comparisons must be constant-time,
randomness must flow through the deterministic DRBG, and the tree must
stay free of deserialization/exec gadgets, swallowed security errors and
hard-coded secrets.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def name_segments(identifier: str) -> frozenset[str]:
    """Lower-cased word segments of a snake_case / CamelCase identifier."""
    spaced = _CAMEL.sub("_", identifier)
    return frozenset(seg for seg in re.split(r"[^a-zA-Z]+", spaced.lower()) if seg)


def operand_identifier(node: ast.AST) -> str | None:
    """Best-effort identifier for one side of a comparison."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return operand_identifier(node.func)
    if isinstance(node, ast.Subscript):
        return operand_identifier(node.value)
    if isinstance(node, ast.Starred):
        return operand_identifier(node.value)
    return None


@register
class ConstantTimeComparison(Rule):
    """Digest/MAC/signature material compared with ``==`` / ``!=``.

    Verifier-side equality on authenticator bytes leaks the position of
    the first mismatching byte through timing (the classic HMAC-forgery
    oracle); the paper's integrity walk does one MAC check per page read,
    so the oracle would be queryable at line rate.  Use
    ``repro.crypto.constant_time_eq`` instead.

    ``key`` and ``tag`` are deliberately *not* matched: in this tree they
    overwhelmingly name dict keys, client-key strings and serializer type
    tags, none of which are secret-dependent byte comparisons.
    """

    rule_id = "SEC001"
    title = "non-constant-time comparison of authenticator material"
    rationale = "timing side channel on MAC/digest verification"

    SENSITIVE = frozenset(
        {"mac", "hmac", "digest", "sig", "signature", "fingerprint", "measurement", "root"}
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in (node.left, *node.comparators):
                identifier = operand_identifier(operand)
                if identifier is None:
                    continue
                hits = name_segments(identifier) & self.SENSITIVE
                if hits:
                    yield self.finding(
                        ctx,
                        node,
                        f"'{identifier}' looks like authenticator material; "
                        "compare with repro.crypto.constant_time_eq, not ==/!=",
                    )
                    break  # one finding per comparison


@register
class NonDeterministicRandomness(Rule):
    """``random`` / ``os.urandom`` / time-seeded randomness.

    Every IV, nonce, key and attestation challenge in the reproduction
    must come from ``repro.crypto.rng.Rng`` (an HMAC-DRBG) so runs are
    bit-for-bit reproducible and nonce reuse is impossible by
    construction.  ``random`` is a Mersenne Twister — predictable from
    624 outputs — and wall-clock seeding makes freshness nonces guessable.
    """

    rule_id = "SEC002"
    title = "randomness outside repro.crypto.rng"
    rationale = "predictable or non-reproducible random material"

    _SEEDY = frozenset({"rng", "seed", "random"})

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            ctx, node, "import of 'random'; use repro.crypto.rng.Rng"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module.split(".")[0] == "random"
                ):
                    yield self.finding(
                        ctx, node, "import from 'random'; use repro.crypto.rng.Rng"
                    )
                elif node.level == 0 and node.module == "os":
                    if any(alias.name == "urandom" for alias in node.names):
                        yield self.finding(
                            ctx, node, "os.urandom import; use repro.crypto.rng.Rng"
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "urandom"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            yield self.finding(
                ctx, call, "os.urandom() call; draw bytes from repro.crypto.rng.Rng"
            )
            return
        # time.time() flowing into anything seed/rng-named makes the
        # "random" material guessable to anyone who knows the clock.
        callee = operand_identifier(func)
        if callee is None or not (name_segments(callee) & self._SEEDY):
            return
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr in {"time", "time_ns", "monotonic"}
                and isinstance(arg.func.value, ast.Name)
                and arg.func.value.id == "time"
            ):
                yield self.finding(
                    ctx,
                    call,
                    f"wall-clock seed passed to '{callee}'; seed Rng explicitly",
                )


@register
class DangerousConstruct(Rule):
    """``pickle`` / ``eval`` / ``exec`` usage.

    ``pickle.loads`` on attacker-reachable bytes is arbitrary code
    execution — fatal in a codebase whose storage device is *assumed*
    adversarial — and ``eval``/``exec`` turn any string-injection bug
    into the same.  Pages and records here serialize through explicit
    ``struct``/JSON codecs instead.
    """

    rule_id = "SEC003"
    title = "pickle/eval/exec construct"
    rationale = "deserialization / code-execution gadget"

    _MODULES = frozenset({"pickle", "cPickle", "dill", "shelve", "marshal"})

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in self._MODULES:
                        yield self.finding(
                            ctx, node, f"import of '{alias.name}'; use explicit codecs"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module.split(".")[0] in self._MODULES
                ):
                    yield self.finding(
                        ctx, node, f"import from '{node.module}'; use explicit codecs"
                    )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in {"eval", "exec"}:
                    yield self.finding(
                        ctx, node, f"call to builtin {node.func.id}()"
                    )


@register
class SwallowedSecurityError(Rule):
    """Broad ``except`` that never re-raises.

    ``except Exception`` (or a bare ``except``) around storage or monitor
    calls silently swallows ``IntegrityError`` / ``FreshnessError`` — the
    exact signals a rollback or tamper attack produces — turning a
    detected attack into a benign-looking empty result.  Catch the
    narrowest error type, or re-raise.
    """

    rule_id = "SEC004"
    title = "broad except swallows security errors"
    rationale = "IntegrityError/FreshnessError must not be silently dropped"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(inner, ast.Raise) for inner in ast.walk(node)):
                continue
            caught = "bare except" if node.type is None else "except Exception"
            yield self.finding(
                ctx,
                node,
                f"{caught} without re-raise can swallow IntegrityError/"
                "FreshnessError; catch the specific error instead",
            )

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Name):
            return type_node.id in {"Exception", "BaseException"}
        if isinstance(type_node, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in {"Exception", "BaseException"}
                for el in type_node.elts
            )
        return False


@register
class HardcodedSecret(Rule):
    """Key-like name bound to a high-entropy literal.

    Keys in this system are derived (HKDF from the hardware-unique key or
    the monitor's DRBG) — a literal key in source ships the same secret
    to every deployment and outlives every rotation.  Flags assignments
    and keyword arguments whose name says key/secret/password/token and
    whose value is a bytes literal (≥ 8 bytes) or a long token-looking
    string.
    """

    rule_id = "SEC005"
    title = "hard-coded key/secret literal"
    rationale = "literal secrets defeat key derivation and rotation"

    _NAMES = frozenset({"key", "secret", "password", "token", "passphrase"})
    _TOKENISH = re.compile(r"^[A-Za-z0-9+/=_\-]{16,}$")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    identifier = operand_identifier(target)
                    if self._match(identifier, node.value):
                        yield self._report(ctx, node, identifier)
                        break
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                identifier = operand_identifier(node.target)
                if self._match(identifier, node.value):
                    yield self._report(ctx, node, identifier)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg and self._match(kw.arg, kw.value):
                        yield self._report(ctx, kw.value, kw.arg)

    def _match(self, identifier: str | None, value: ast.AST) -> bool:
        if identifier is None or not (name_segments(identifier) & self._NAMES):
            return False
        if not isinstance(value, ast.Constant):
            return False
        if isinstance(value.value, bytes):
            return len(value.value) >= 8
        if isinstance(value.value, str):
            text = value.value
            return bool(self._TOKENISH.match(text)) and any(c.isdigit() for c in text)
        return False

    def _report(self, ctx, node, identifier) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'{identifier}' is bound to a literal secret; derive keys via "
            "HKDF / provision them through the monitor",
        )

"""Built-in rule families.

Importing this package registers every rule with the registry; the
engine then discovers them via :func:`repro.analysis.registry.all_rules`.
"""

from . import architecture, dataflow, security  # noqa: F401  (import for side effect)

__all__ = ["architecture", "dataflow", "security"]

"""Analysis driver: walk paths, parse modules, run rules, filter output.

Two passes: the first parses every file and feeds the import graph (so
architecture rules see the whole tree before judging any module), the
second runs each rule over each module and applies per-line suppressions
and the optional baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .findings import Finding, Severity
from .importgraph import ImportGraph, module_name_for
from .registry import Rule, select_rules
from .suppressions import line_suppressions

SKIP_DIR_SUFFIXES = (".egg-info",)
SKIP_DIR_NAMES = {"__pycache__", ".git", ".pytest_cache", ".hypothesis"}


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: Path
    relpath: str  # as reported in findings / baselines (posix separators)
    module: str | None  # dotted name, None for loose scripts
    is_package: bool  # True for __init__.py files
    tree: ast.Module
    lines: list[str]
    graph: ImportGraph
    #: Shared interprocedural dataflow program; built lazily by the first
    #: TAINT/FLOW rule that asks (see :meth:`flow`), one per analyzer run.
    flow_factory: object | None = None
    _flow_cache: object | None = None

    @property
    def flow(self):
        """The run-wide :class:`repro.analysis.flow.FlowProgram`."""
        if self._flow_cache is None:
            if self.flow_factory is not None:
                self._flow_cache = self.flow_factory()
            else:
                from .flow import FlowProgram

                self._flow_cache = FlowProgram(
                    [(self.relpath, self.module, self.tree)]
                )
        return self._flow_cache

    @property
    def subpackage(self) -> str | None:
        """Top-level ``repro`` subpackage this module belongs to."""
        from .importgraph import top_subpackage

        return top_subpackage(self.module) if self.module else None


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    modules_analyzed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Expand the CLI path arguments into a sorted list of .py files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if _skippable(candidate):
                    continue
                files.add(candidate)
        elif path.is_file() and path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    if not files:
        raise FileNotFoundError(
            "no Python files found under: "
            + ", ".join(str(p) for p in paths)
        )
    return sorted(files)


def _skippable(path: Path) -> bool:
    for part in path.parts[:-1]:
        if part in SKIP_DIR_NAMES or part.endswith(SKIP_DIR_SUFFIXES):
            return True
    return False


class Analyzer:
    """Run a rule set over a file tree."""

    def __init__(self, rules: list[Rule] | None = None, root: Path | None = None):
        self.rules = rules if rules is not None else select_rules()
        self.root = Path(root) if root is not None else Path.cwd()

    def run(self, paths: list[str | Path], baseline: Baseline | None = None) -> AnalysisResult:
        result = AnalysisResult()
        contexts: list[ModuleContext] = []
        graph = ImportGraph()

        # Pass 1: parse everything, build the import graph.
        for path in collect_files(paths):
            relpath = self._relpath(path)
            try:
                source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                result.findings.append(
                    Finding(
                        rule_id="PARSE",
                        path=relpath,
                        line=getattr(exc, "lineno", None) or 1,
                        col=(getattr(exc, "offset", None) or 0) + 1,
                        message=f"file could not be analyzed: {exc.__class__.__name__}: {exc}",
                    )
                )
                continue
            module = module_name_for(path)
            is_package = path.name == "__init__.py"
            graph.add_module(module, tree, is_package=is_package)
            contexts.append(
                ModuleContext(
                    path=path,
                    relpath=relpath,
                    module=module,
                    is_package=is_package,
                    tree=tree,
                    lines=source.splitlines(),
                    graph=graph,
                )
            )

        # Pass 1.5: every context shares one lazy dataflow program so the
        # interprocedural fixpoint runs at most once per analyzer run.
        shared: list = []

        def flow_factory():
            if not shared:
                from .flow import FlowProgram

                shared.append(
                    FlowProgram(
                        [(c.relpath, c.module, c.tree) for c in contexts]
                    )
                )
            return shared[0]

        for ctx in contexts:
            ctx.flow_factory = flow_factory

        # Pass 2: rules, then suppressions.
        for ctx in contexts:
            result.modules_analyzed += 1
            suppress_table = line_suppressions(ctx.lines)
            for rule in self.rules:
                for finding in rule.check(ctx):
                    rules_here = suppress_table.get(finding.line, frozenset())
                    if finding.rule_id.upper() in rules_here or "ALL" in rules_here:
                        result.suppressed.append(finding)
                    else:
                        result.findings.append(finding)

        if baseline is not None:
            result.findings, result.grandfathered = baseline.split(result.findings)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return result

    def _relpath(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        return rel.as_posix()

"""Security-lint and architecture-conformance framework for the reproduction.

IronSafe's guarantees (constant-time MAC checks, DRBG-only randomness,
enclave-boundary isolation, audited monitor mutations) are invariants of
the *source tree*, not of any single run — so they are enforced here, by a
stdlib-only ``ast``-based analyzer that CI runs over ``src/repro`` on
every change.

Usage::

    python -m repro.analysis src/repro --fail-on-findings
    repro-lint --list-rules

The framework is deliberately self-contained: it imports nothing from the
rest of ``repro`` (rule ARCH001 enforces that, on itself), so it can lint
a tree that does not even import cleanly.
"""

from .baseline import Baseline
from .engine import AnalysisResult, Analyzer, ModuleContext
from .findings import Finding, Severity
from .importgraph import ImportGraph
from .registry import Rule, all_rules, get_rule, register

# Importing the rule modules registers every built-in rule.
from . import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "Finding",
    "ImportGraph",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register",
]

"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; ``error`` gates CI, ``warning`` informs."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is the path exactly as the analyzer walked it (normally
    relative to the invocation directory) so findings are stable across
    machines and usable as baseline entries.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = field(default=Severity.ERROR)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity.value,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes line/column so grandfathered findings do not
        resurface when unrelated edits shift the file.
        """
        return (self.rule_id, self.path.replace("\\", "/"), self.message)

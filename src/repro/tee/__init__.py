"""Heterogeneous TEE simulation: Intel SGX (host) and ARM TrustZone (storage).

See DESIGN.md §2 for what is modelled and why the simulation preserves the
paper's performance- and security-relevant behaviour.
"""

from .common import Measurement, Quote

__all__ = ["Measurement", "Quote"]

"""Simulated Intel SGX: platforms, enclaves, and the attestation service."""

from .enclave import Enclave
from .ias import AttestationReport, IntelAttestationService, check_report
from .platform import SgxPlatform

__all__ = [
    "AttestationReport",
    "Enclave",
    "IntelAttestationService",
    "SgxPlatform",
    "check_report",
]

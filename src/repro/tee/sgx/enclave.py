"""Simulated SGX enclave.

Captures the four behaviours of real enclaves that matter to IronSafe:

* **Identity** — the enclave's measurement (MRENCLAVE) is the hash of the
  loaded code image; quotes bind it to a challenge.
* **Isolation** — data stored inside the enclave is only reachable through
  ECALLs; reading it "from outside" raises :class:`EnclaveError` (tests use
  this to assert the host OS cannot see query state).
* **Cost** — every ECALL/OCALL edge bumps the transition counter, and the
  in-enclave working set feeds the EPC paging model (this is what makes
  the host-only secure configuration slow in Figure 9a).
* **Sealing** — data sealed by an enclave can only be unsealed by the same
  measurement on the same platform.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable

from ...crypto import ctr_crypt, hmac_sha256, constant_time_eq
from ...errors import EnclaveError, SealingError
from ...sim import Meter
from ..common import Measurement, Quote

if TYPE_CHECKING:  # pragma: no cover
    from .platform import SgxPlatform


class Enclave:
    """A single enclave instance on an :class:`SgxPlatform`."""

    def __init__(self, name: str, code_image: bytes, platform: "SgxPlatform"):
        self.name = name
        self.platform = platform
        self.measurement = Measurement.of_image(code_image, label=name)
        self.meter = Meter()
        self.memory_in_use = 0
        self._protected: dict[str, Any] = {}
        self._ecalls: dict[str, Callable[..., Any]] = {}
        self._destroyed = False
        self._inside = False

    # ------------------------------------------------------------------
    # Isolation
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError(f"enclave {self.name!r} has been destroyed")

    def put(self, key: str, value: Any, nbytes: int = 0) -> None:
        """Store protected state.  Only callable from inside an ECALL."""
        self._check_alive()
        if not self._inside:
            raise EnclaveError("enclave memory is not writable from outside")
        self._protected[key] = value
        self.memory_in_use += nbytes
        self.meter.note_memory(self.memory_in_use)

    def get(self, key: str) -> Any:
        """Read protected state.  Only callable from inside an ECALL."""
        self._check_alive()
        if not self._inside:
            raise EnclaveError(
                f"attempt to read enclave memory of {self.name!r} from untrusted code"
            )
        return self._protected[key]

    def drop(self, key: str, nbytes: int = 0) -> None:
        """Free protected state (session cleanup deletes temp tables)."""
        self._check_alive()
        if not self._inside:
            raise EnclaveError("enclave memory is not writable from outside")
        self._protected.pop(key, None)
        self.memory_in_use = max(0, self.memory_in_use - nbytes)

    def wipe(self) -> None:
        """Erase all protected state (end-of-session cleanup)."""
        self._check_alive()
        self._protected.clear()
        self.memory_in_use = 0

    # ------------------------------------------------------------------
    # ECALL / OCALL
    # ------------------------------------------------------------------

    def register_ecall(self, name: str, fn: Callable[..., Any]) -> None:
        """Expose *fn* as an entry point into the enclave."""
        self._check_alive()
        self._ecalls[name] = fn

    def ecall(self, name: str, *args, **kwargs) -> Any:
        """Enter the enclave, run the registered function, and exit.

        Charges two world transitions (enter + exit), exactly what makes
        chatty I/O from inside an enclave expensive on real hardware.
        """
        self._check_alive()
        fn = self._ecalls.get(name)
        if fn is None:
            raise EnclaveError(f"enclave {self.name!r} has no ecall {name!r}")
        self.meter.enclave_transitions += 2
        was_inside = self._inside
        self._inside = True
        try:
            return fn(*args, **kwargs)
        finally:
            self._inside = was_inside

    def ocall(self, fn: Callable[..., Any], *args, **kwargs) -> Any:
        """Leave the enclave to run untrusted code, then re-enter."""
        self._check_alive()
        if not self._inside:
            raise EnclaveError("ocall is only meaningful from inside the enclave")
        self.meter.enclave_transitions += 2
        self._inside = False
        try:
            return fn(*args, **kwargs)
        finally:
            self._inside = True

    @property
    def inside(self) -> bool:
        return self._inside

    # ------------------------------------------------------------------
    # Attestation
    # ------------------------------------------------------------------

    def generate_quote(self, challenge: bytes, report_data: bytes = b"") -> Quote:
        """Produce attestation evidence signed by the platform key.

        On real hardware this goes EREPORT → quoting enclave; the security
        property is identical: the signature binds (measurement, challenge,
        report_data) to a key Intel certified for this platform.
        """
        self._check_alive()
        quote = Quote(
            measurement=self.measurement,
            challenge=challenge,
            report_data=report_data,
            platform_id=self.platform.platform_id,
        )
        signature = self.platform.attestation_key.sign(quote.signed_payload())
        return Quote(
            measurement=quote.measurement,
            challenge=quote.challenge,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            signature=signature,
        )

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt + MAC data so only this enclave on this CPU can read it."""
        self._check_alive()
        key = self.platform.sealing_key_for(self.measurement.digest)
        nonce = self.platform.nonce(16)
        ciphertext = ctr_crypt(key, nonce, plaintext)
        mac = hmac_sha256(key, nonce + ciphertext)
        blob = {
            "nonce": nonce.hex(),
            "ciphertext": ciphertext.hex(),
            "mac": mac.hex(),
        }
        return json.dumps(blob).encode()

    def unseal(self, sealed: bytes) -> bytes:
        """Reverse :meth:`seal`; fails for other enclaves or platforms."""
        self._check_alive()
        key = self.platform.sealing_key_for(self.measurement.digest)
        try:
            blob = json.loads(sealed.decode())
            nonce = bytes.fromhex(blob["nonce"])
            ciphertext = bytes.fromhex(blob["ciphertext"])
            mac = bytes.fromhex(blob["mac"])
        except (ValueError, KeyError) as exc:
            raise SealingError("malformed sealed blob") from exc
        if not constant_time_eq(hmac_sha256(key, nonce + ciphertext), mac):
            raise SealingError(
                "sealed data does not belong to this enclave/platform"
            )
        return ctr_crypt(key, nonce, ciphertext)

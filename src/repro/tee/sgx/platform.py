"""Simulated SGX-capable x86 platform.

A platform owns a provisioned attestation key (certified by the simulated
Intel Attestation Service at manufacturing time), a per-CPU sealing root,
and an EPC budget shared by its enclaves.  Enclaves are created through the
platform so their measurements and EPC usage are tracked in one place.
"""

from __future__ import annotations

from ...crypto import PrivateKey, Rng, generate_keypair, hkdf
from ...errors import EnclaveError
from ...sim import CostModel, SimClock
from .enclave import Enclave


class SgxPlatform:
    """One SGX machine: attestation identity + sealing root + EPC."""

    def __init__(
        self,
        platform_id: str,
        clock: SimClock,
        cost_model: CostModel,
        rng: Rng,
        *,
        epc_limit_bytes: int | None = None,
    ):
        self.platform_id = platform_id
        self.clock = clock
        self.cost_model = cost_model
        self._rng = rng.fork(f"sgx-platform:{platform_id}")
        # Provisioned at "manufacturing"; the IAS learns the public half.
        self.attestation_key: PrivateKey = generate_keypair(self._rng)
        # CPU fuse key from which per-enclave sealing keys derive.
        self._sealing_root = self._rng.bytes(32)
        self.epc_limit_bytes = (
            epc_limit_bytes if epc_limit_bytes is not None else cost_model.epc_limit_bytes
        )
        self._enclaves: dict[str, Enclave] = {}

    def create_enclave(self, name: str, code_image: bytes) -> Enclave:
        """Load *code_image* into a new enclave and measure it.

        Mirrors the SGX init flow: the loader hashes the image, producing
        the MRENCLAVE a remote verifier will later compare against.
        """
        if name in self._enclaves:
            raise EnclaveError(f"enclave {name!r} already exists on {self.platform_id}")
        enclave = Enclave(name=name, code_image=code_image, platform=self)
        self._enclaves[name] = enclave
        return enclave

    def destroy_enclave(self, name: str) -> None:
        enclave = self._enclaves.pop(name, None)
        if enclave is None:
            raise EnclaveError(f"no enclave {name!r} on {self.platform_id}")
        enclave._destroyed = True

    def sealing_key_for(self, measurement_digest: bytes) -> bytes:
        """MRENCLAVE-bound sealing key: same enclave, same platform only."""
        return hkdf(self._sealing_root, b"seal:" + measurement_digest, 32)

    def epc_in_use(self) -> int:
        return sum(e.memory_in_use for e in self._enclaves.values())

    def nonce(self, n: int = 16) -> bytes:
        return self._rng.bytes(n)

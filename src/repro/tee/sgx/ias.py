"""Simulated Intel Attestation Service (IAS).

Real SGX attestation routes quotes through Intel: the verifier submits a
quote, Intel checks that the signing key belongs to a genuine, non-revoked
SGX CPU, and returns a signed attestation report.  We model exactly that
trust topology — platforms register their attestation public keys at
"manufacturing", verifiers hold the IAS report-signing public key, and the
monitor accepts a quote only with a valid IAS report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ...crypto import PrivateKey, PublicKey, Rng, generate_keypair
from ...errors import AttestationError
from ..common import Quote


@dataclass(frozen=True)
class AttestationReport:
    """An IAS verdict over a quote, signed by the IAS report key."""

    quote_payload: bytes
    is_valid: bool
    platform_id: str
    signature: bytes

    def signed_body(self) -> bytes:
        return json.dumps(
            {
                "quote": self.quote_payload.hex(),
                "is_valid": self.is_valid,
                "platform_id": self.platform_id,
            },
            sort_keys=True,
        ).encode()


class IntelAttestationService:
    """Registry of genuine platforms + report signer."""

    def __init__(self, rng: Rng):
        self._report_key: PrivateKey = generate_keypair(rng.fork("ias"))
        self._platforms: dict[str, PublicKey] = {}
        self._revoked: set[str] = set()

    @property
    def report_signing_key(self) -> PublicKey:
        """Public key verifiers pin (ships with the monitor's TCB)."""
        return self._report_key.public_key

    def register_platform(self, platform_id: str, attestation_key: PublicKey) -> None:
        """Record a genuine platform at manufacturing time."""
        if platform_id in self._platforms:
            raise AttestationError(f"platform {platform_id!r} already registered")
        self._platforms[platform_id] = attestation_key

    def revoke_platform(self, platform_id: str) -> None:
        """Mark a platform compromised (its quotes stop verifying)."""
        self._revoked.add(platform_id)

    def verify_quote(self, quote: Quote) -> AttestationReport:
        """Check a quote's signature against the registered platform key."""
        key = self._platforms.get(quote.platform_id)
        is_valid = (
            key is not None
            and quote.platform_id not in self._revoked
            and key.verify(quote.signed_payload(), quote.signature)
        )
        report = AttestationReport(
            quote_payload=quote.signed_payload(),
            is_valid=is_valid,
            platform_id=quote.platform_id,
            signature=b"",
        )
        return AttestationReport(
            quote_payload=report.quote_payload,
            is_valid=report.is_valid,
            platform_id=report.platform_id,
            signature=self._report_key.sign(report.signed_body()),
        )


def check_report(report: AttestationReport, ias_key: PublicKey) -> None:
    """Validate an IAS report a verifier received; raise if untrustworthy."""
    if not ias_key.verify(report.signed_body(), report.signature):
        raise AttestationError("IAS report signature invalid")
    if not report.is_valid:
        raise AttestationError(
            f"IAS rejected the quote from platform {report.platform_id!r}"
        )

"""Simulated ARM TrustZone storage platform.

Models the Solidrun/LX2160A-class storage server of the paper:

* a **hardware-unique key (HUK)** fused into the SoC, from which the
  secure world derives the TA storage key (TASK) and the RPMB key;
* a **root-of-trust public key (ROTPK)** burnt into ROM — the boot ROM
  only executes firmware whose certificate chain verifies against it;
* a **manufacturer-provisioned device attestation key**, certified at the
  factory, that signs attestation challenge responses;
* **secure boot** that measures each stage (secure world, then the normal
  world image) and refuses to hand over control on a hash mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...crypto import (
    Certificate,
    PrivateKey,
    PublicKey,
    Rng,
    generate_keypair,
    hkdf,
    issue_certificate,
    self_signed,
    sha256,
)
from ...errors import SecureBootError
from ..common import Measurement, Quote
from .rpmb import RPMB


@dataclass(frozen=True)
class FirmwareImage:
    """A signed software image for one boot stage."""

    name: str
    payload: bytes
    version: str
    signature: bytes = b""

    def signed_body(self) -> bytes:
        return b"fw:" + self.name.encode() + b":" + self.version.encode() + b":" + sha256(self.payload)


class DeviceVendor:
    """The party that signs firmware and provisions device identities.

    One vendor instance acts as the trust anchor for a fleet of devices;
    verifiers (the trusted monitor) pin ``root_public_key``.
    """

    def __init__(self, name: str, rng: Rng):
        self.name = name
        self._rng = rng.fork(f"vendor:{name}")
        self._root_key: PrivateKey = generate_keypair(self._rng)
        self.root_certificate = self_signed(name, self._root_key, {"role": "vendor-root"})

    @property
    def root_public_key(self) -> PublicKey:
        return self._root_key.public_key

    def sign_firmware(self, name: str, payload: bytes, version: str) -> FirmwareImage:
        image = FirmwareImage(name=name, payload=payload, version=version)
        return FirmwareImage(
            name=image.name,
            payload=image.payload,
            version=image.version,
            signature=self._root_key.sign(image.signed_body()),
        )

    def provision_device(
        self, device_id: str, *, location: str, rpmb_blocks: int = 128
    ) -> "TrustZoneDevice":
        """Manufacture a device: fuse keys, certify its attestation key."""
        device_rng = self._rng.fork(f"device:{device_id}")
        attestation_key = generate_keypair(device_rng)
        device_cert = issue_certificate(
            issuer_name=self.name,
            issuer_key=self._root_key,
            subject=device_id,
            subject_public_key=attestation_key.public_key,
            attributes={"role": "device", "location": location},
        )
        return TrustZoneDevice(
            device_id=device_id,
            location=location,
            vendor_root=self.root_public_key,
            vendor_root_certificate=self.root_certificate,
            device_certificate=device_cert,
            attestation_key=attestation_key,
            huk=device_rng.bytes(32),
            rpmb=RPMB(rpmb_blocks),
            rng=device_rng,
        )


@dataclass
class BootState:
    """What secure boot established: measurements + the certificate chain."""

    secure_world: FirmwareImage
    normal_world: FirmwareImage
    normal_world_measurement: Measurement
    certificate_chain: list[Certificate] = field(default_factory=list)


class TrustZoneDevice:
    """One storage-server SoC with TrustZone."""

    def __init__(
        self,
        device_id: str,
        location: str,
        vendor_root: PublicKey,
        vendor_root_certificate: Certificate,
        device_certificate: Certificate,
        attestation_key: PrivateKey,
        huk: bytes,
        rpmb: RPMB,
        rng: Rng,
    ):
        self.device_id = device_id
        self.location = location
        self._vendor_root = vendor_root
        self._vendor_root_certificate = vendor_root_certificate
        self._device_certificate = device_certificate
        self._attestation_key = attestation_key
        self._huk = huk
        self.rpmb = rpmb
        self._rng = rng
        self.boot_state: BootState | None = None

    # ------------------------------------------------------------------
    # Key derivation (secure-world only)
    # ------------------------------------------------------------------

    def derive_key(self, purpose: str, length: int = 32) -> bytes:
        """Derive a purpose-bound key from the HUK (TASK, RPMB key, ...)."""
        return hkdf(self._huk, b"huk:" + purpose.encode(), length)

    def nonce(self, n: int = 16) -> bytes:
        return self._rng.bytes(n)

    # ------------------------------------------------------------------
    # Secure boot
    # ------------------------------------------------------------------

    def secure_boot(
        self, secure_world: FirmwareImage, normal_world: FirmwareImage
    ) -> BootState:
        """Run the boot ROM → ATF/OP-TEE → normal world chain.

        The ROM verifies the secure-world image signature against the
        vendor root (the ROTPK); the trusted OS then *measures* the normal
        world image and records the hash in a boot certificate signed by
        the device attestation key.  An unsigned or tampered secure world
        never boots; a modified normal world boots but carries the "wrong"
        measurement, so the monitor will refuse it.
        """
        if not self._vendor_root.verify(secure_world.signed_body(), secure_world.signature):
            raise SecureBootError(
                f"secure-world image {secure_world.name!r} signature invalid — refusing to boot"
            )
        normal_measurement = Measurement.of_image(
            normal_world.payload, label=normal_world.name
        )
        boot_cert = issue_certificate(
            issuer_name=self.device_id,
            issuer_key=self._attestation_key,
            subject=f"{self.device_id}/boot",
            subject_public_key=self._attestation_key.public_key,
            attributes={
                "role": "boot",
                "fw_version": normal_world.version,
                "secure_world_version": secure_world.version,
                "location": self.location,
                "normal_world_hash": normal_measurement.hex(),
            },
        )
        self.boot_state = BootState(
            secure_world=secure_world,
            normal_world=normal_world,
            normal_world_measurement=normal_measurement,
            certificate_chain=[
                self._vendor_root_certificate,
                self._device_certificate,
                boot_cert,
            ],
        )
        return self.boot_state

    @property
    def booted(self) -> bool:
        return self.boot_state is not None

    # ------------------------------------------------------------------
    # Attestation (used by the attestation TA)
    # ------------------------------------------------------------------

    def sign_attestation(self, challenge: bytes, report_data: bytes = b"") -> Quote:
        """Answer an attestation challenge with the device key.

        Only meaningful after secure boot: the quoted measurement is the
        normal-world hash recorded by the trusted OS.
        """
        if self.boot_state is None:
            raise SecureBootError("device has not completed secure boot")
        quote = Quote(
            measurement=self.boot_state.normal_world_measurement,
            challenge=challenge,
            report_data=report_data,
            platform_id=self.device_id,
        )
        return Quote(
            measurement=quote.measurement,
            challenge=quote.challenge,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            signature=self._attestation_key.sign(quote.signed_payload()),
        )

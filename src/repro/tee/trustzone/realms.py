"""ARM v9 Realms (CCA) — the paper's stated future work.

§3.3: "Due to the limitations of ARM TrustZone, we currently need to
consider the entire OS stack and query engine on the storage side as part
of our TCB.  However, ARM v9 aims to overcome this limitation, which
would allow us to not trust the OS stack anymore."

This module models exactly that upgrade: a *realm* is an isolated,
measured execution environment managed by the Realm Management Monitor
(RMM), SGX-enclave-like in its properties but hosted on the ARM side:

* the normal-world OS can create/schedule realms but cannot read their
  memory (isolation is enforced, like :class:`~repro.tee.sgx.Enclave`);
* each realm carries a measurement of its initial image, attestable with
  a token signed by the device key — so the *storage engine alone* is in
  the TCB, not the normal-world kernel;
* realm execution pays a small memory-protection overhead (granule
  protection checks), modelled by ``CostModel.realm_cpu_overhead``.
"""

from __future__ import annotations

from typing import Any, Callable

from ...errors import EnclaveError, SecureBootError
from ...sim import Meter
from ..common import Measurement, Quote
from .device import TrustZoneDevice


class Realm:
    """One realm instance (isolation semantics mirror SGX enclaves)."""

    def __init__(self, name: str, image: bytes, device: TrustZoneDevice):
        self.name = name
        self.device = device
        self.measurement = Measurement.of_image(image, label=f"realm:{name}")
        self.meter = Meter()
        self._protected: dict[str, Any] = {}
        self._entries: dict[str, Callable[..., Any]] = {}
        self._inside = False

    # -- isolation -------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        if not self._inside:
            raise EnclaveError("realm memory is not writable from the normal world")
        self._protected[key] = value

    def get(self, key: str) -> Any:
        if not self._inside:
            raise EnclaveError(
                f"attempt to read realm {self.name!r} memory from the normal world"
            )
        return self._protected[key]

    # -- entry points ------------------------------------------------------

    def register_entry(self, name: str, fn: Callable[..., Any]) -> None:
        self._entries[name] = fn

    def enter(self, name: str, *args, **kwargs) -> Any:
        """RMM world switch into the realm and back (2 transitions)."""
        fn = self._entries.get(name)
        if fn is None:
            raise EnclaveError(f"realm {self.name!r} has no entry {name!r}")
        self.meter.enclave_transitions += 2
        was_inside = self._inside
        self._inside = True
        try:
            return fn(*args, **kwargs)
        finally:
            self._inside = was_inside

    # -- attestation ---------------------------------------------------------

    def attestation_token(self, challenge: bytes) -> Quote:
        """CCA attestation token: realm measurement signed by the device key.

        Unlike TrustZone normal-world attestation, the quoted measurement
        covers ONLY the realm image — the normal-world OS is out of the
        trust statement entirely.
        """
        if not self.device.booted:
            raise SecureBootError("realms require a booted device (RMM loaded)")
        quote = Quote(
            measurement=self.measurement,
            challenge=challenge,
            report_data=b"cca-realm-token",
            platform_id=self.device.device_id,
        )
        return Quote(
            measurement=quote.measurement,
            challenge=quote.challenge,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            signature=self.device._attestation_key.sign(quote.signed_payload()),
        )


class RealmManager:
    """The RMM: creates realms on an ARMv9-capable device."""

    def __init__(self, device: TrustZoneDevice):
        if not device.booted:
            raise SecureBootError("the RMM loads during secure boot")
        self.device = device
        self._realms: dict[str, Realm] = {}

    def create_realm(self, name: str, image: bytes) -> Realm:
        if name in self._realms:
            raise EnclaveError(f"realm {name!r} already exists")
        realm = Realm(name, image, self.device)
        self._realms[name] = realm
        return realm

    def realm(self, name: str) -> Realm:
        realm = self._realms.get(name)
        if realm is None:
            raise EnclaveError(f"no realm named {name!r}")
        return realm

"""IronSafe's trusted applications (secure-world services).

Two TAs implement the paper's §4.1/§4.2 secure-world functionality:

* :class:`AttestationTA` answers monitor challenges with a quote signed by
  the device key plus the secure-boot certificate chain.
* :class:`SecureStorageTA` owns the database master key (generated at
  initialization, persisted in RPMB so it survives reboots) and anchors
  the Merkle-tree root in RPMB: it HMACs the root with the TASK (a key
  derived from the hardware-unique key, binding the data to this CPU) and
  stores the MAC in the replay-protected partition.  Freshness holds
  because replacing the stored MAC requires an RPMB write, which requires
  the RPMB key, which only the secure world can derive.
"""

from __future__ import annotations

from ...crypto import Certificate, constant_time_eq, hmac_sha256
from ...errors import FreshnessError
from ..common import Quote
from .device import TrustZoneDevice
from .rpmb import RPMBClient
from .trusted_os import TrustedApplication

RPMB_ADDR_MASTER_KEY = 0
RPMB_ADDR_ROOT_MAC = 1
RPMB_ADDR_EPOCH = 2


class AttestationTA(TrustedApplication):
    """Generates remote-attestation evidence for the storage node."""

    name = "attestation"

    def _register_commands(self) -> None:
        self.command("attest", self.attest)

    def attest(self, challenge: bytes, report_data: bytes = b"") -> tuple[Quote, list[Certificate]]:
        """Sign the challenge + normal-world measurement; attach the chain."""
        quote = self.device.sign_attestation(challenge, report_data)
        assert self.device.boot_state is not None
        return quote, list(self.device.boot_state.certificate_chain)


class SecureStorageTA(TrustedApplication):
    """Key custody + Merkle-root freshness anchoring."""

    name = "secure-storage"

    def __init__(self, device: TrustZoneDevice):
        super().__init__(device)
        self._rpmb = RPMBClient(device.rpmb, device.derive_key("rpmb-key"))
        self._task = device.derive_key("ta-storage-key", 16)  # 128-bit TASK

    def _register_commands(self) -> None:
        self.command("get_master_key", self.get_master_key)
        self.command("anchor_root", self.anchor_root)
        self.command("verify_root", self.verify_root)
        self.command("current_epoch", self.current_epoch)

    # -- master key ------------------------------------------------------

    def get_master_key(self) -> bytes:
        """Return the database master key, creating it on first use.

        The key is stored in RPMB so it survives reboots; it never leaves
        the device in plaintext except to the (attested) normal-world
        storage engine.
        """
        nonce = self.device.nonce()
        stored = self._rpmb.read(RPMB_ADDR_MASTER_KEY, nonce)
        if stored:
            return stored
        key = self.device.nonce(32)
        self._rpmb.write(RPMB_ADDR_MASTER_KEY, key)
        return key

    # -- freshness anchor --------------------------------------------------

    def _root_mac(self, root: bytes, epoch: int) -> bytes:
        return hmac_sha256(self._task, b"merkle-root" + epoch.to_bytes(8, "big") + root)

    def anchor_root(self, root: bytes) -> int:
        """Record a new Merkle root; returns the new epoch number.

        The epoch is a monotonic counter stored alongside the MAC — a
        forked replica that anchors its own root advances the counter, so
        the two replicas' anchors diverge and the fork is detectable.
        """
        epoch = self.current_epoch() + 1
        mac = self._root_mac(root, epoch)
        self._rpmb.write(RPMB_ADDR_ROOT_MAC, mac)
        self._rpmb.write(RPMB_ADDR_EPOCH, epoch.to_bytes(8, "big"))
        return epoch

    def verify_root(self, root: bytes) -> None:
        """Check *root* against the RPMB anchor; raise on rollback."""
        nonce = self.device.nonce()
        stored_mac = self._rpmb.read(RPMB_ADDR_ROOT_MAC, nonce)
        if not stored_mac:
            return  # nothing anchored yet: first initialization of the store
        epoch = self.current_epoch()
        if not constant_time_eq(self._root_mac(root, epoch), stored_mac):
            raise FreshnessError(
                "Merkle root does not match the RPMB anchor: rollback or fork detected"
            )

    def current_epoch(self) -> int:
        nonce = self.device.nonce()
        raw = self._rpmb.read(RPMB_ADDR_EPOCH, nonce)
        return int.from_bytes(raw, "big") if raw else 0

"""Simulated ARM TrustZone: devices, secure boot, RPMB, trusted OS, TAs."""

from .device import BootState, DeviceVendor, FirmwareImage, TrustZoneDevice
from .realms import Realm, RealmManager
from .rpmb import RPMB, RPMBClient, RPMBReadResponse
from .tas import AttestationTA, SecureStorageTA
from .trusted_os import TrustedApplication, TrustedOS

__all__ = [
    "AttestationTA",
    "BootState",
    "DeviceVendor",
    "FirmwareImage",
    "RPMB",
    "Realm",
    "RealmManager",
    "RPMBClient",
    "RPMBReadResponse",
    "SecureStorageTA",
    "TrustedApplication",
    "TrustedOS",
    "TrustZoneDevice",
]

"""Replay-Protected Memory Block (RPMB) emulation.

eMMC parts ship a small authenticated partition: a key is programmed once
(by the secure world during provisioning), after which every write must
carry an HMAC over (data, address, write counter) and every read response
is MACed by the device.  The monotonically increasing write counter is what
defeats replay: an attacker who snapshots the partition cannot restore it
without forging a MAC for a stale counter.

IronSafe stores two things here: the database master encryption key and
the HMAC of the Merkle root (the freshness anchor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import constant_time_eq, hmac_sha256
from ...errors import RPMBError

RPMB_BLOCK_SIZE = 256


@dataclass
class RPMBReadResponse:
    """A device-authenticated read: data + counter + MAC over both."""

    address: int
    data: bytes
    write_counter: int
    nonce: bytes
    mac: bytes

    def verify(self, key: bytes) -> None:
        expected = _read_mac(key, self.address, self.data, self.write_counter, self.nonce)
        if not constant_time_eq(expected, self.mac):
            raise RPMBError("RPMB read response MAC invalid")


def _write_mac(key: bytes, address: int, data: bytes, counter: int) -> bytes:
    body = b"rpmb-write" + address.to_bytes(4, "big") + counter.to_bytes(4, "big") + data
    return hmac_sha256(key, body)


def _read_mac(key: bytes, address: int, data: bytes, counter: int, nonce: bytes) -> bytes:
    body = (
        b"rpmb-read"
        + address.to_bytes(4, "big")
        + counter.to_bytes(4, "big")
        + nonce
        + data
    )
    return hmac_sha256(key, body)


class RPMB:
    """The authenticated partition itself (device side)."""

    def __init__(self, num_blocks: int = 128):
        if num_blocks <= 0:
            raise RPMBError("RPMB must have at least one block")
        self.num_blocks = num_blocks
        self._blocks: dict[int, bytes] = {}
        self._key: bytes | None = None
        self._write_counter = 0

    @property
    def key_programmed(self) -> bool:
        return self._key is not None

    @property
    def write_counter(self) -> int:
        return self._write_counter

    def program_key(self, key: bytes) -> None:
        """One-shot key programming; a second attempt is a hardware error."""
        if self._key is not None:
            raise RPMBError("RPMB key can only be programmed once")
        if len(key) < 16:
            raise RPMBError("RPMB key too short")
        self._key = bytes(key)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.num_blocks:
            raise RPMBError(f"RPMB address {address} out of range")

    def authenticated_write(self, address: int, data: bytes, counter: int, mac: bytes) -> None:
        """Write one block; the MAC must cover the *current* counter.

        A replayed write (stale counter) or a forged MAC is rejected —
        this is the property the freshness anchor relies on.
        """
        if self._key is None:
            raise RPMBError("RPMB key not programmed")
        self._check_address(address)
        if len(data) > RPMB_BLOCK_SIZE:
            raise RPMBError("RPMB block payload too large")
        if counter != self._write_counter:
            raise RPMBError(
                f"stale write counter {counter} (device at {self._write_counter})"
            )
        if not constant_time_eq(_write_mac(self._key, address, data, counter), mac):
            raise RPMBError("RPMB write MAC invalid")
        self._blocks[address] = bytes(data)
        self._write_counter += 1

    def authenticated_read(self, address: int, nonce: bytes) -> RPMBReadResponse:
        """Read one block with a device MAC binding data + counter + nonce."""
        if self._key is None:
            raise RPMBError("RPMB key not programmed")
        self._check_address(address)
        data = self._blocks.get(address, b"")
        mac = _read_mac(self._key, address, data, self._write_counter, nonce)
        return RPMBReadResponse(
            address=address,
            data=data,
            write_counter=self._write_counter,
            nonce=nonce,
            mac=mac,
        )


class RPMBClient:
    """Secure-world helper that speaks the authenticated protocol."""

    def __init__(self, rpmb: RPMB, key: bytes):
        self._rpmb = rpmb
        self._key = key
        if not rpmb.key_programmed:
            rpmb.program_key(key)

    def write(self, address: int, data: bytes) -> None:
        counter = self._rpmb.write_counter
        mac = _write_mac(self._key, address, data, counter)
        self._rpmb.authenticated_write(address, data, counter, mac)

    def read(self, address: int, nonce: bytes) -> bytes:
        response = self._rpmb.authenticated_read(address, nonce)
        response.verify(self._key)
        return response.data

"""OP-TEE-style trusted OS hosting trusted applications.

The secure world runs a minimal trusted OS that loads TAs and mediates
world switches (SMC calls).  The normal world — where the storage engine
and SQLite-like query engine actually run after secure boot — talks to TAs
only through :meth:`TrustedOS.invoke`, which charges the world-switch cost
and dispatches to the named command.
"""

from __future__ import annotations

from typing import Any, Callable

from ...errors import SecureBootError, TEEError
from ...sim import Meter
from .device import TrustZoneDevice


class TrustedApplication:
    """Base class for secure-world services."""

    name = "ta"

    def __init__(self, device: TrustZoneDevice):
        self.device = device
        self._commands: dict[str, Callable[..., Any]] = {}
        self._register_commands()

    def _register_commands(self) -> None:
        """Subclasses register their command handlers here."""

    def command(self, name: str, fn: Callable[..., Any]) -> None:
        self._commands[name] = fn

    def invoke(self, command: str, *args, **kwargs) -> Any:
        fn = self._commands.get(command)
        if fn is None:
            raise TEEError(f"TA {self.name!r} has no command {command!r}")
        return fn(*args, **kwargs)


class TrustedOS:
    """The secure-world OS: TA registry + SMC dispatch."""

    def __init__(self, device: TrustZoneDevice):
        if not device.booted:
            raise SecureBootError("trusted OS starts only after secure boot")
        self.device = device
        self.meter = Meter()
        self._tas: dict[str, TrustedApplication] = {}

    def load_ta(self, ta: TrustedApplication) -> None:
        if ta.name in self._tas:
            raise TEEError(f"TA {ta.name!r} already loaded")
        self._tas[ta.name] = ta

    def invoke(self, ta_name: str, command: str, *args, **kwargs) -> Any:
        """World switch into the secure world and back (one SMC round trip)."""
        ta = self._tas.get(ta_name)
        if ta is None:
            raise TEEError(f"no TA named {ta_name!r}")
        self.meter.enclave_transitions += 2  # SMC entry + exit
        return ta.invoke(command, *args, **kwargs)

    def has_ta(self, ta_name: str) -> bool:
        return ta_name in self._tas

"""Shared TEE abstractions: software measurements and attestation evidence.

Both TEE families boil down to the same trust argument — "hardware-rooted
keys sign a hash of the software that booted" — but with incompatible
mechanisms (SGX quotes verified through Intel's attestation service vs
TrustZone challenge/response over a secure-boot certificate chain).  The
trusted monitor bridges the two; these are the common data shapes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..crypto import sha256


@dataclass(frozen=True)
class Measurement:
    """A hash identifying a software image (MRENCLAVE / boot-stage hash)."""

    digest: bytes
    label: str = ""

    @classmethod
    def of_image(cls, image: bytes, label: str = "") -> "Measurement":
        return cls(digest=sha256(image), label=label)

    def hex(self) -> str:
        return self.digest.hex()


@dataclass(frozen=True)
class Quote:
    """Attestation evidence: a measurement bound to a challenge.

    ``report_data`` carries protocol-specific payload (e.g. the hash of a
    key the attester wants certified); ``signature`` is produced by a
    hardware-rooted key (the SGX platform attestation key or a TrustZone
    key derived from the device's ROTPK).
    """

    measurement: Measurement
    challenge: bytes
    report_data: bytes = b""
    platform_id: str = ""
    signature: bytes = b""

    def signed_payload(self) -> bytes:
        body = {
            "measurement": self.measurement.digest.hex(),
            "label": self.measurement.label,
            "challenge": self.challenge.hex(),
            "report_data": self.report_data.hex(),
            "platform_id": self.platform_id,
        }
        return json.dumps(body, sort_keys=True).encode()

"""Catalog: table schemas + their page extents.

The catalog is persisted in the device metadata region as JSON so a
database survives close/reopen (and, for the secure store, so a fresh
process can rebuild state after attestation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import CatalogError
from .values import TYPE_NAMES


@dataclass
class TableSchema:
    name: str
    columns: list[tuple[str, str]]  # (column name, type name)
    primary_key: tuple[str, ...] = ()
    pages: list[int] = field(default_factory=list)
    row_count: int = 0

    def __post_init__(self) -> None:
        seen = set()
        for col_name, type_name in self.columns:
            if col_name in seen:
                raise CatalogError(f"duplicate column {col_name!r} in {self.name!r}")
            seen.add(col_name)
            if type_name not in TYPE_NAMES:
                raise CatalogError(f"unknown type {type_name!r} for {self.name}.{col_name}")

    @property
    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]

    def column_index(self, name: str) -> int:
        for i, (col_name, _) in enumerate(self.columns):
            if col_name == name:
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def column_type(self, name: str) -> str:
        return self.columns[self.column_index(name)][1]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "columns": self.columns,
            "primary_key": list(self.primary_key),
            "pages": self.pages,
            "row_count": self.row_count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableSchema":
        return cls(
            name=data["name"],
            columns=[tuple(c) for c in data["columns"]],
            primary_key=tuple(data.get("primary_key", ())),
            pages=list(data.get("pages", [])),
            row_count=int(data.get("row_count", 0)),
        )


class Catalog:
    """All table schemas of one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema

    def drop_table(self, name: str) -> TableSchema:
        schema = self._tables.pop(name, None)
        if schema is None:
            raise CatalogError(f"no table named {name!r}")
        return schema

    def table(self, name: str) -> TableSchema:
        schema = self._tables.get(name)
        if schema is None:
            raise CatalogError(f"no table named {name!r}")
        return schema

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def owner_of_column(self, column: str) -> str | None:
        """Resolve an unqualified column to its unique owning table.

        TPC-H column names are prefix-unique (``l_``, ``o_``, ``ps_`` ...),
        which the automatic query partitioner exploits.  Returns None when
        zero or several tables own the name.
        """
        owners = [t.name for t in self._tables.values() if column in t.column_names]
        return owners[0] if len(owners) == 1 else None

    def serialize(self) -> bytes:
        payload = {name: schema.to_dict() for name, schema in self._tables.items()}
        return json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def deserialize(cls, blob: bytes) -> "Catalog":
        catalog = cls()
        for data in json.loads(blob.decode()).values():
            catalog.create_table(TableSchema.from_dict(data))
        return catalog

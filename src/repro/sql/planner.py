"""Query planner: SELECT AST → physical operator tree.

Planning pipeline:

1. plan FROM items (scans / materialized derived tables) and explicit JOINs;
2. split WHERE into conjuncts, pushing single-table predicates below the
   joins, turning two-table equalities into hash-join edges, and
   **decorrelating subqueries**:
   - uncorrelated scalar / IN / EXISTS subqueries evaluate once and fold
     into constants, :class:`~.ast_nodes.InSet` filters, or trivial TRUE/FALSE;
   - correlated EXISTS / NOT EXISTS / IN become hash (anti) semi joins on
     the equality correlation keys with any remaining cross-scope
     predicate as a join residual;
   - correlated scalar *aggregate* subqueries (the TPC-H Q2/Q17 shape) are
     rewritten to a GROUP BY over the correlation keys, materialized into
     a lookup map, and replaced by :class:`~.ast_nodes.MapLookup`;
3. greedy hash-join ordering over the equality edge graph (cartesian
   nested-loop fallback);
4. aggregation (group keys + aggregate accumulators, with HAVING and the
   projection rewritten over the aggregate output), DISTINCT, ORDER BY
   (resolved against the output schema first, the input schema otherwise)
   and LIMIT.

The planner is shared by every engine role: the storage engine plans
offloaded filter scans, the host engine plans the full query over shipped
tables, and the monitor's policy rewrites produce ASTs that plan like any
other query.
"""

from __future__ import annotations

import datetime
from dataclasses import replace

from ..errors import PlanError
from ..stats import CMP_OPS, PruningPredicate
from . import ast_nodes as A
from .expressions import ExprCompiler, Scope
from .operators import (
    Aggregate,
    AggSpec,
    Distinct,
    ExecContext,
    Filter,
    HashJoin,
    HashSemiJoin,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    RowsSource,
    SeqScan,
    Sort,
)
from .vexec import (
    VAggregate,
    VecAggSpec,
    VecExprCompiler,
    VFilter,
    VHashJoin,
    VProject,
    VSeqScan,
    supports_morsels,
)

# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


def conjuncts_of(expr: A.Expr | None) -> list[A.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, A.Binary) and expr.op == "AND":
        return conjuncts_of(expr.left) + conjuncts_of(expr.right)
    return [expr]


def and_together(conjuncts: list[A.Expr]) -> A.Expr | None:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = A.Binary("AND", result, conjunct)
    return result


def or_together(disjuncts: list[A.Expr]) -> A.Expr | None:
    if not disjuncts:
        return None
    result = disjuncts[0]
    for disjunct in disjuncts[1:]:
        result = A.Binary("OR", result, disjunct)
    return result


def walk_expr(expr: A.Expr):
    """Yield *expr* and every sub-expression (not descending into subqueries)."""
    yield expr
    children: list[A.Expr] = []
    if isinstance(expr, A.Unary):
        children = [expr.operand]
    elif isinstance(expr, A.Binary):
        children = [expr.left, expr.right]
    elif isinstance(expr, A.Between):
        children = [expr.operand, expr.low, expr.high]
    elif isinstance(expr, A.Like):
        children = [expr.operand, expr.pattern]
    elif isinstance(expr, A.IsNull):
        children = [expr.operand]
    elif isinstance(expr, A.InList):
        children = [expr.operand, *expr.items]
    elif isinstance(expr, A.InSet):
        children = [expr.operand]
    elif isinstance(expr, A.MapLookup):
        children = list(expr.keys)
    elif isinstance(expr, A.InSubquery):
        children = [expr.operand]
    elif isinstance(expr, A.Case):
        for cond, result in expr.whens:
            children.extend([cond, result])
        if expr.default is not None:
            children.append(expr.default)
    elif isinstance(expr, A.Extract):
        children = [expr.operand]
    elif isinstance(expr, A.Substring):
        children = [expr.operand, expr.start]
        if expr.length is not None:
            children.append(expr.length)
    elif isinstance(expr, (A.FuncCall,)):
        children = list(expr.args)
    elif isinstance(expr, A.AggCall) and expr.arg is not None:
        children = [expr.arg]
    for child in children:
        yield from walk_expr(child)


def contains_subquery(expr: A.Expr) -> bool:
    return any(
        isinstance(node, (A.Exists, A.InSubquery, A.ScalarSubquery))
        for node in walk_expr(expr)
    )


def contains_aggregate(expr: A.Expr) -> bool:
    return any(isinstance(node, A.AggCall) for node in walk_expr(expr))


def column_refs(expr: A.Expr) -> list[A.Column]:
    return [node for node in walk_expr(expr) if isinstance(node, A.Column)]


def _compilable(expr: A.Expr, scope: Scope) -> bool:
    """True when every column in *expr* resolves in *scope* (no subqueries)."""
    if contains_subquery(expr):
        return False
    for col in column_refs(expr):
        if scope.try_resolve(col.table, col.name) is None:
            return False
    return True


# -- sargable-predicate extraction (zone-map skip-scans) --------------------

#: Comparison operators whose mirror image is also sargable.
_FLIPPED_CMP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _sargable_literal(value, type_name: str) -> bool:
    """Can *value* be compared against a column of *type_name* without a
    type error?  Extraction refuses anything else, so a pruned scan can
    never suppress the ExecutionError the row-level filter would raise.
    """
    if value is None:
        return False
    if type_name in ("INTEGER", "REAL"):
        return isinstance(value, (int, float))
    if type_name == "TEXT":
        return isinstance(value, str)
    if type_name == "DATE":
        return isinstance(value, datetime.date)
    return False


def _column_index(expr: A.Expr, scope: Scope) -> int | None:
    """Scope index of a bare column reference (None for anything else).

    A :class:`SeqScan` scope lists the base table's columns in schema
    order, so this index doubles as the zone-map column index.
    """
    if isinstance(expr, A.Column):
        return scope.try_resolve(expr.table, expr.name)
    return None


def extract_pruning(
    conjuncts: list[A.Expr], scope: Scope, column_types: list[str]
) -> PruningPredicate | None:
    """Lower the sargable conjuncts of a pushed-down filter.

    Handles ``col <op> literal`` (either orientation), ``BETWEEN``,
    ``IN`` lists/sets and ``IS [NOT] NULL``.  Non-sargable conjuncts are
    simply ignored — they stay in the row-level filter, and the pruning
    predicate remains a sound over-approximation of the full filter.
    """
    lowered: list[tuple] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, A.Binary) and conjunct.op in CMP_OPS:
            index = _column_index(conjunct.left, scope)
            op = conjunct.op
            literal = conjunct.right
            if index is None:
                index = _column_index(conjunct.right, scope)
                op = _FLIPPED_CMP[op]
                literal = conjunct.left
            if (
                index is not None
                and isinstance(literal, A.Literal)
                and _sargable_literal(literal.value, column_types[index])
            ):
                lowered.append(("cmp", index, (op, literal.value)))
        elif isinstance(conjunct, A.Between) and not conjunct.negated:
            index = _column_index(conjunct.operand, scope)
            if (
                index is not None
                and isinstance(conjunct.low, A.Literal)
                and isinstance(conjunct.high, A.Literal)
                and _sargable_literal(conjunct.low.value, column_types[index])
                and _sargable_literal(conjunct.high.value, column_types[index])
            ):
                lowered.append(
                    ("between", index, (conjunct.low.value, conjunct.high.value))
                )
        elif isinstance(conjunct, (A.InList, A.InSet)) and not conjunct.negated:
            index = _column_index(conjunct.operand, scope)
            if index is None:
                continue
            if isinstance(conjunct, A.InList):
                if not all(isinstance(item, A.Literal) for item in conjunct.items):
                    continue
                values = [item.value for item in conjunct.items]
            else:
                values = list(conjunct.values)
            # NULL list items never match; any incompatible item could
            # raise at row level, so refuse the whole conjunct.
            usable = [v for v in values if v is not None]
            if usable and all(
                _sargable_literal(v, column_types[index]) for v in usable
            ):
                lowered.append(("in", index, tuple(usable)))
        elif isinstance(conjunct, A.IsNull):
            index = _column_index(conjunct.operand, scope)
            if index is not None:
                lowered.append(("isnull", index, (conjunct.negated,)))
    if not lowered:
        return None
    return PruningPredicate(lowered)


def rewrite_expr(expr: A.Expr, mapping) -> A.Expr:
    """Structurally rewrite an expression bottom-up.

    ``mapping(expr)`` returns a replacement node or None to recurse.
    """
    replacement = mapping(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, A.Unary):
        return A.Unary(expr.op, rewrite_expr(expr.operand, mapping))
    if isinstance(expr, A.Binary):
        return A.Binary(
            expr.op, rewrite_expr(expr.left, mapping), rewrite_expr(expr.right, mapping)
        )
    if isinstance(expr, A.Between):
        return A.Between(
            rewrite_expr(expr.operand, mapping),
            rewrite_expr(expr.low, mapping),
            rewrite_expr(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, A.Like):
        return A.Like(
            rewrite_expr(expr.operand, mapping),
            rewrite_expr(expr.pattern, mapping),
            expr.negated,
        )
    if isinstance(expr, A.IsNull):
        return A.IsNull(rewrite_expr(expr.operand, mapping), expr.negated)
    if isinstance(expr, A.InList):
        return A.InList(
            rewrite_expr(expr.operand, mapping),
            tuple(rewrite_expr(i, mapping) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, A.InSet):
        return A.InSet(
            rewrite_expr(expr.operand, mapping), expr.values, expr.has_null, expr.negated
        )
    if isinstance(expr, A.MapLookup):
        return A.MapLookup(
            tuple(rewrite_expr(k, mapping) for k in expr.keys), expr.mapping_id
        )
    if isinstance(expr, A.Case):
        return A.Case(
            tuple(
                (rewrite_expr(c, mapping), rewrite_expr(r, mapping))
                for c, r in expr.whens
            ),
            rewrite_expr(expr.default, mapping) if expr.default is not None else None,
        )
    if isinstance(expr, A.Extract):
        return A.Extract(expr.unit, rewrite_expr(expr.operand, mapping))
    if isinstance(expr, A.Substring):
        return A.Substring(
            rewrite_expr(expr.operand, mapping),
            rewrite_expr(expr.start, mapping),
            rewrite_expr(expr.length, mapping) if expr.length is not None else None,
        )
    if isinstance(expr, A.FuncCall):
        return A.FuncCall(
            expr.name, tuple(rewrite_expr(a, mapping) for a in expr.args), expr.distinct
        )
    if isinstance(expr, A.AggCall):
        return A.AggCall(
            expr.name,
            rewrite_expr(expr.arg, mapping) if expr.arg is not None else None,
            expr.distinct,
        )
    return expr


def bind_params(expr: A.Expr, params: tuple) -> A.Expr:
    """Replace `?` placeholders with literal values."""

    def mapping(node: A.Expr):
        if isinstance(node, A.Param):
            if node.index >= len(params):
                raise PlanError(f"missing value for parameter {node.index}")
            return A.Literal(params[node.index])
        return None

    return rewrite_expr(expr, mapping)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class _FromItem:
    """One planned FROM entry, wrapped so filters can be pushed below joins."""

    __slots__ = ("binding", "op")

    def __init__(self, binding: str, op: Operator):
        self.binding = binding
        self.op = op


class Planner:
    def __init__(self, store, ctx: ExecContext):
        self.store = store
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def plan_select(self, select: A.Select, outer_scope: Scope | None = None) -> Operator:
        tree = self._plan_from_where(select, outer_scope)
        return self._plan_projection(select, tree)

    def output_names(self, select: A.Select) -> list[str]:
        """Column names of the SELECT's result."""
        names: list[str] = []
        star_expansion_needed = any(
            isinstance(item.expr, A.Star) for item in select.items
        )
        if star_expansion_needed:
            # Names depend on the planned scope; recompute via planning.
            tree = self._plan_from_where(select, None)
            for item in select.items:
                if isinstance(item.expr, A.Star):
                    for binding, name in tree.scope.columns:
                        if item.expr.table is None or binding == item.expr.table:
                            names.append(name)
                else:
                    names.append(self._item_name(item, len(names)))
            return names
        for index, item in enumerate(select.items):
            names.append(self._item_name(item, index))
        return names

    @staticmethod
    def _item_name(item: A.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, A.Column):
            return item.expr.name
        return f"col{index}"

    # ------------------------------------------------------------------
    # Vectorization helpers
    # ------------------------------------------------------------------
    #
    # Each helper builds the morsel operator from repro.sql.vexec when
    # the context asks for vectorized execution, the child can produce
    # morsels, and every expression involved has a batch form — and
    # falls back to the seed row operator otherwise (PlanError from the
    # vector compiler is the per-operator opt-out, mirroring how the row
    # compiler signals unsupported nodes).  With ctx.vectorized off they
    # construct exactly what the seed planner constructed.

    def _filter(self, child: Operator, expr: A.Expr) -> Operator:
        if self.ctx.vectorized and supports_morsels(child):
            try:
                vec_fn = VecExprCompiler(child.scope, self.ctx.lookup_maps).compile(expr)
            except PlanError:
                pass
            else:
                return VFilter(self.ctx, child, vec_fn)
        predicate = ExprCompiler(child.scope, self.ctx.lookup_maps).compile(expr)
        return Filter(self.ctx, child, predicate)

    def _project(
        self, child: Operator, items: list[A.SelectItem], output_scope: Scope
    ) -> Operator:
        if self.ctx.vectorized and supports_morsels(child):
            try:
                vec_fns = [
                    VecExprCompiler(child.scope, self.ctx.lookup_maps).compile(i.expr)
                    for i in items
                ]
            except PlanError:
                pass
            else:
                return VProject(self.ctx, child, vec_fns, output_scope)
        compiler = ExprCompiler(child.scope, self.ctx.lookup_maps)
        fns = [compiler.compile(item.expr) for item in items]
        return Project(self.ctx, child, fns, output_scope)

    def _hash_join(
        self,
        left: Operator,
        right: Operator,
        keys_left: list[A.Expr],
        keys_right: list[A.Expr],
        kind: str = "inner",
        residual_fn=None,
    ) -> Operator:
        # The full oblivious tier keeps the row HashJoin: its bitonic
        # sort-network variant is what makes the comparison schedule
        # predicate-independent, and it consumes a vectorized subtree
        # through rows() without losing that property.
        if (
            self.ctx.vectorized
            and not self.ctx.oblivious
            and supports_morsels(left)
            and supports_morsels(right)
        ):
            try:
                left_vfns = [
                    VecExprCompiler(left.scope, self.ctx.lookup_maps).compile(k)
                    for k in keys_left
                ]
                right_vfns = [
                    VecExprCompiler(right.scope, self.ctx.lookup_maps).compile(k)
                    for k in keys_right
                ]
            except PlanError:
                pass
            else:
                return VHashJoin(
                    self.ctx, left, right, left_vfns, right_vfns,
                    kind=kind, residual=residual_fn,
                )
        left_fns = [ExprCompiler(left.scope).compile(k) for k in keys_left]
        right_fns = [ExprCompiler(right.scope).compile(k) for k in keys_right]
        return HashJoin(
            self.ctx, left, right, left_fns, right_fns, kind=kind, residual=residual_fn
        )

    def _aggregate(
        self,
        child: Operator,
        group_exprs: list[A.Expr],
        agg_calls: list[A.AggCall],
        agg_scope: Scope,
    ) -> Operator:
        # Grouped aggregation under the full oblivious tier stays on the
        # row operator (sort-based oblivious grouping); a vectorized
        # child still feeds it through rows().
        if (
            self.ctx.vectorized
            and supports_morsels(child)
            and not (self.ctx.oblivious and group_exprs)
        ):
            try:
                vec_compiler = VecExprCompiler(child.scope, self.ctx.lookup_maps)
                vec_group = [vec_compiler.compile(g) for g in group_exprs]
                vec_specs = []
                for call in agg_calls:
                    if call.arg is None:
                        vec_specs.append(VecAggSpec("count_star", None, False))
                    else:
                        vec_specs.append(
                            VecAggSpec(
                                call.name, vec_compiler.compile(call.arg), call.distinct
                            )
                        )
            except PlanError:
                pass
            else:
                return VAggregate(self.ctx, child, vec_group, vec_specs, agg_scope)
        input_compiler = ExprCompiler(child.scope, self.ctx.lookup_maps)
        group_fns = [input_compiler.compile(g) for g in group_exprs]
        specs: list[AggSpec] = []
        for call in agg_calls:
            if call.arg is None:
                specs.append(AggSpec("count_star", None, False))
            else:
                specs.append(
                    AggSpec(call.name, input_compiler.compile(call.arg), call.distinct)
                )
        return Aggregate(self.ctx, child, group_fns, specs, agg_scope)

    # ------------------------------------------------------------------
    # FROM + WHERE
    # ------------------------------------------------------------------

    def _plan_from_item(self, item, outer_scope: Scope | None) -> _FromItem:
        if isinstance(item, A.TableRef):
            scan_cls = VSeqScan if self.ctx.vectorized else SeqScan
            return _FromItem(item.binding, scan_cls(self.ctx, self.store, item.name, item.binding))
        if isinstance(item, A.SubqueryRef):
            sub_op = self.plan_select(item.select, outer_scope)
            names = self.output_names(item.select)
            rows = list(sub_op.rows())
            scope = Scope([(item.alias, name) for name in names])
            return _FromItem(item.alias, RowsSource(self.ctx, rows, scope))
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _plan_from_where(self, select: A.Select, outer_scope: Scope | None) -> Operator:
        if not select.from_items:
            # SELECT without FROM: single empty row.
            scope = Scope([])
            return RowsSource(self.ctx, [()], scope)

        joined_ops = [self._plan_from_item(fi, outer_scope) for fi in select.from_items]

        # Explicit INNER joins fold into the FROM-item list: their ON
        # conjuncts classify exactly like WHERE conjuncts.  LEFT OUTER
        # joins keep their semantics and apply after the inner-join tree.
        where_conjuncts = conjuncts_of(select.where)
        left_joins: list[A.Join] = []
        for join in select.joins:
            if join.kind == "LEFT":
                left_joins.append(join)
            else:
                joined_ops.append(self._plan_from_item(join.right, outer_scope))
                where_conjuncts.extend(conjuncts_of(join.on))

        # Split WHERE into conjunct classes.
        push_filters: dict[int, list[A.Expr]] = {}
        join_edges: list[tuple[int, int, A.Expr, A.Expr]] = []
        residuals: list[A.Expr] = []
        subquery_conjuncts: list[A.Expr] = []

        for conjunct in where_conjuncts:
            if contains_subquery(conjunct):
                subquery_conjuncts.append(conjunct)
                continue
            target = None
            for i in range(len(joined_ops)):
                if _compilable(conjunct, joined_ops[i].op.scope):
                    target = i
                    break
            if target is not None:
                push_filters.setdefault(target, []).append(conjunct)
                continue
            edge = self._as_join_edge(conjunct, joined_ops)
            if edge is not None:
                join_edges.append(edge)
            else:
                residuals.append(conjunct)

        # Push single-item filters below the joins.  When the store has
        # skip-scans enabled, additionally lower the sargable conjuncts
        # into a zone-map pruning predicate on the scan itself.
        for i, conjs in push_filters.items():
            op = joined_ops[i].op
            if isinstance(op, SeqScan) and getattr(self.store, "prune_scans", False):
                schema = self.store.catalog.table(op.table_name)
                op.pruning = extract_pruning(
                    conjs, op.scope, [t for _, t in schema.columns]
                )
            joined_ops[i] = _FromItem(
                joined_ops[i].binding, self._filter(op, and_together(conjs))
            )

        # Greedy join ordering over the equality edge graph.
        tree = self._order_joins(joined_ops, join_edges)

        # LEFT OUTER joins.
        for join in left_joins:
            right = self._plan_from_item(join.right, outer_scope)
            tree = self._apply_explicit_join(tree, right, join)

        # Residual multi-table predicates (after outer joins so they may
        # reference outer-join columns).
        if residuals:
            tree = self._filter(tree, and_together(residuals))

        # Subquery conjuncts: decorrelate into semi joins / lookups / sets.
        for conjunct in subquery_conjuncts:
            tree = self._apply_subquery_conjunct(conjunct, tree)

        return tree

    # -- join edges -----------------------------------------------------

    def _as_join_edge(self, conjunct: A.Expr, items: list[_FromItem]):
        if not (isinstance(conjunct, A.Binary) and conjunct.op == "="):
            return None
        for i in range(len(items)):
            for j in range(len(items)):
                if i == j:
                    continue
                if _compilable(conjunct.left, items[i].op.scope) and _compilable(
                    conjunct.right, items[j].op.scope
                ):
                    return (i, j, conjunct.left, conjunct.right)
        return None

    def _order_joins(
        self, items: list[_FromItem], edges: list[tuple[int, int, A.Expr, A.Expr]]
    ) -> Operator:
        remaining = set(range(len(items)))
        joined = {0}
        remaining.discard(0)
        tree = items[0].op
        edge_pool = list(edges)

        while remaining:
            # Find a candidate connected to the joined set by >=1 edge.
            best = None
            for candidate in sorted(remaining):
                keys_left: list[A.Expr] = []
                keys_right: list[A.Expr] = []
                used: list[int] = []
                for idx, (i, j, le, re_) in enumerate(edge_pool):
                    if i in joined and j == candidate:
                        keys_left.append(le)
                        keys_right.append(re_)
                        used.append(idx)
                    elif j in joined and i == candidate:
                        keys_left.append(re_)
                        keys_right.append(le)
                        used.append(idx)
                if keys_left:
                    best = (candidate, keys_left, keys_right, used)
                    break
            if best is None:
                # Cartesian product fallback.
                candidate = sorted(remaining)[0]
                tree = NestedLoopJoin(self.ctx, tree, items[candidate].op, None)
                joined.add(candidate)
                remaining.discard(candidate)
                continue
            candidate, keys_left, keys_right, used = best
            right_op = items[candidate].op
            tree = self._hash_join(tree, right_op, keys_left, keys_right)
            for idx in sorted(used, reverse=True):
                edge_pool.pop(idx)
            joined.add(candidate)
            remaining.discard(candidate)

        # Any leftover edges (between already-joined items) become filters.
        leftover = [A.Binary("=", le, re_) for (_, _, le, re_) in edge_pool]
        if leftover:
            tree = self._filter(tree, and_together(leftover))
        return tree

    def _apply_explicit_join(self, tree: Operator, right: _FromItem, join: A.Join) -> Operator:
        kind = "left" if join.kind == "LEFT" else "inner"
        on_conjuncts = conjuncts_of(join.on)
        keys_left: list[A.Expr] = []
        keys_right: list[A.Expr] = []
        residual: list[A.Expr] = []
        for conjunct in on_conjuncts:
            if isinstance(conjunct, A.Binary) and conjunct.op == "=":
                if _compilable(conjunct.left, tree.scope) and _compilable(
                    conjunct.right, right.op.scope
                ):
                    keys_left.append(conjunct.left)
                    keys_right.append(conjunct.right)
                    continue
                if _compilable(conjunct.right, tree.scope) and _compilable(
                    conjunct.left, right.op.scope
                ):
                    keys_left.append(conjunct.right)
                    keys_right.append(conjunct.left)
                    continue
            residual.append(conjunct)
        combined_scope = tree.scope.merged_with(right.op.scope)
        residual_fn = (
            ExprCompiler(combined_scope).compile(and_together(residual))
            if residual
            else None
        )
        if keys_left:
            return self._hash_join(
                tree, right.op, keys_left, keys_right, kind=kind, residual_fn=residual_fn
            )
        condition = residual_fn
        return NestedLoopJoin(self.ctx, tree, right.op, condition, kind=kind)

    # ------------------------------------------------------------------
    # Subquery handling
    # ------------------------------------------------------------------

    def _apply_subquery_conjunct(self, conjunct: A.Expr, tree: Operator) -> Operator:
        # NOT EXISTS (...) arrives as Unary(NOT, Exists).
        if isinstance(conjunct, A.Unary) and conjunct.op == "NOT" and isinstance(
            conjunct.operand, A.Exists
        ):
            return self._plan_exists(conjunct.operand.subquery, tree, anti=True)
        if isinstance(conjunct, A.Exists):
            return self._plan_exists(
                conjunct.subquery, tree, anti=conjunct.negated
            )
        if isinstance(conjunct, A.InSubquery):
            return self._plan_in_subquery(conjunct, tree)
        # Scalar subqueries inside a larger predicate.
        rewritten = self._fold_scalar_subqueries(conjunct, tree)
        return self._filter(tree, rewritten)

    def _split_correlation(
        self, sub: A.Select, inner_scope: Scope, outer_scope: Scope
    ) -> tuple[list[A.Expr], list[tuple[A.Expr, A.Expr]], list[A.Expr]]:
        """Partition the subquery WHERE into (local, equi-correlated, residual).

        equi-correlated entries are (outer_expr, inner_expr) pairs from
        ``inner_col = outer_col`` conjuncts; residual entries reference
        both scopes non-equally and evaluate over outer ++ inner rows.
        """
        local: list[A.Expr] = []
        corr: list[tuple[A.Expr, A.Expr]] = []
        residual: list[A.Expr] = []
        for conjunct in conjuncts_of(sub.where):
            if not contains_subquery(conjunct) and _compilable(conjunct, inner_scope):
                local.append(conjunct)
                continue
            if isinstance(conjunct, A.Binary) and conjunct.op == "=":
                left, right = conjunct.left, conjunct.right
                if _compilable(left, inner_scope) and _compilable(right, outer_scope):
                    corr.append((right, left))
                    continue
                if _compilable(right, inner_scope) and _compilable(left, outer_scope):
                    corr.append((left, right))
                    continue
            residual.append(conjunct)
        return local, corr, residual

    def _plan_exists(self, sub: A.Select, tree: Operator, anti: bool) -> Operator:
        inner_tree = self._plan_inner_raw(sub, tree.scope)
        inner_op, local, corr, residual = inner_tree
        if not corr:
            # Uncorrelated EXISTS: evaluate once.
            if residual:
                raise PlanError("unsupported correlation in EXISTS subquery")
            has_rows = next(iter(inner_op.rows()), None) is not None
            keep = (not has_rows) if anti else has_rows
            if keep:
                return tree
            return RowsSource(self.ctx, [], tree.scope)
        outer_keys = [ExprCompiler(tree.scope).compile(o) for o, _ in corr]
        inner_keys = [ExprCompiler(inner_op.scope).compile(i) for _, i in corr]
        residual_fn = None
        if residual:
            combined = tree.scope.merged_with(inner_op.scope)
            residual_fn = ExprCompiler(combined, self.ctx.lookup_maps).compile(
                and_together(residual)
            )
        return HashSemiJoin(
            self.ctx,
            tree,
            inner_op,
            outer_keys,
            inner_keys,
            anti=anti,
            residual=residual_fn,
        )

    def _plan_inner_raw(self, sub: A.Select, outer_scope: Scope):
        """Plan a subquery's FROM+local WHERE, separating correlation.

        Returns (operator, local_conjuncts, corr_pairs, residual_conjuncts)
        where the operator already has the local filters and internal joins
        applied.
        """
        # Plan the FROM items to learn the inner scope.
        items = [self._plan_from_item(fi, outer_scope) for fi in sub.from_items]
        if not items:
            raise PlanError("subquery without FROM is not supported here")
        merged = items[0].op.scope
        for item in items[1:]:
            merged = merged.merged_with(item.op.scope)
        for join in sub.joins:
            raise PlanError("explicit JOIN inside correlated subqueries is unsupported")
        local, corr, residual = self._split_correlation(sub, merged, outer_scope)
        # Re-plan with only the local WHERE.
        stripped = replace(sub, where=and_together(local), joins=())
        inner_op = self._plan_from_where(stripped, outer_scope)
        return inner_op, local, corr, residual

    def _plan_in_subquery(self, conjunct: A.InSubquery, tree: Operator) -> Operator:
        sub = conjunct.subquery
        if len(sub.items) != 1 or isinstance(sub.items[0].expr, A.Star):
            raise PlanError("IN subquery must select exactly one expression")
        if self._is_correlated(sub, tree.scope):
            inner_op, local, corr, residual = self._plan_inner_raw(sub, tree.scope)
            if contains_aggregate(sub.items[0].expr) or sub.group_by:
                raise PlanError("correlated IN with aggregation is unsupported")
            item_fn_expr = sub.items[0].expr
            outer_keys = [ExprCompiler(tree.scope).compile(conjunct.operand)]
            inner_keys = [ExprCompiler(inner_op.scope).compile(item_fn_expr)]
            for outer_e, inner_e in corr:
                outer_keys.append(ExprCompiler(tree.scope).compile(outer_e))
                inner_keys.append(ExprCompiler(inner_op.scope).compile(inner_e))
            residual_fn = None
            if residual:
                combined = tree.scope.merged_with(inner_op.scope)
                residual_fn = ExprCompiler(combined, self.ctx.lookup_maps).compile(
                    and_together(residual)
                )
            return HashSemiJoin(
                self.ctx,
                tree,
                inner_op,
                outer_keys,
                inner_keys,
                anti=conjunct.negated,
                residual=residual_fn,
                null_aware=conjunct.negated,
            )
        # Uncorrelated: evaluate the subquery once into a set.
        sub_op = self.plan_select(sub)
        values = set()
        has_null = False
        for row in sub_op.rows():
            if row[0] is None:
                has_null = True
            else:
                values.add(row[0])
        in_set = A.InSet(conjunct.operand, frozenset(values), has_null, conjunct.negated)
        return self._filter(tree, in_set)

    def _is_correlated(self, sub: A.Select, outer_scope: Scope) -> bool:
        """Heuristic: any WHERE column that does not resolve locally."""
        local_bindings = {fi.binding for fi in sub.from_items}
        local_columns: set[str] = set()
        for fi in sub.from_items:
            if isinstance(fi, A.TableRef) and self.store.catalog.has_table(fi.name):
                local_columns.update(self.store.catalog.table(fi.name).column_names)
        for conjunct in conjuncts_of(sub.where):
            for col in column_refs(conjunct):
                if col.table is not None:
                    if col.table not in local_bindings:
                        return True
                elif col.name not in local_columns:
                    return True
        return False

    def _fold_scalar_subqueries(self, expr: A.Expr, tree: Operator) -> A.Expr:
        """Replace ScalarSubquery nodes with literals or map lookups."""

        def mapping(node: A.Expr):
            if not isinstance(node, A.ScalarSubquery):
                return None
            sub = node.subquery
            if not self._is_correlated(sub, tree.scope):
                sub_op = self.plan_select(sub)
                rows = list(sub_op.rows())
                if len(rows) > 1:
                    raise PlanError("scalar subquery returned more than one row")
                value = rows[0][0] if rows else None
                return A.Literal(value)
            return self._decorrelate_scalar_agg(sub, tree)

        return rewrite_expr(expr, mapping)

    def _decorrelate_scalar_agg(self, sub: A.Select, tree: Operator) -> A.Expr:
        """Correlated scalar aggregate → GROUP BY correlation keys + lookup.

        Requires a single aggregate select item and pure equality
        correlation (the TPC-H Q2/Q17 shape).
        """
        if len(sub.items) != 1 or not contains_aggregate(sub.items[0].expr):
            raise PlanError(
                "only correlated scalar *aggregate* subqueries can be decorrelated"
            )
        inner_op, local, corr, residual = self._plan_inner_raw(sub, tree.scope)
        if residual:
            raise PlanError(
                "correlated scalar aggregate with non-equality correlation is unsupported"
            )
        if not corr:
            raise PlanError("scalar subquery classified correlated but no keys found")

        # Build: SELECT corr_inner..., <agg> FROM ... GROUP BY corr_inner.
        inner_items = tuple(
            A.SelectItem(inner_e, alias=f"__k{i}") for i, (_, inner_e) in enumerate(corr)
        ) + (sub.items[0],)
        grouped = replace(
            sub,
            items=inner_items,
            where=and_together(local),
            group_by=tuple(inner_e for _, inner_e in corr),
            joins=(),
        )
        grouped_op = self.plan_select(grouped)
        mapping_dict: dict = {}
        nkeys = len(corr)
        for row in grouped_op.rows():
            key = row[0] if nkeys == 1 else tuple(row[:nkeys])
            mapping_dict[key] = row[nkeys]
        mapping_id = len(self.ctx.lookup_maps)
        self.ctx.lookup_maps.append(mapping_dict)
        return A.MapLookup(tuple(outer_e for outer_e, _ in corr), mapping_id)

    # ------------------------------------------------------------------
    # Projection / aggregation / ordering
    # ------------------------------------------------------------------

    def _expand_stars(self, select: A.Select, scope: Scope) -> list[A.SelectItem]:
        items: list[A.SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, A.Star):
                for binding, name in scope.columns:
                    if item.expr.table is None or binding == item.expr.table:
                        items.append(A.SelectItem(A.Column(name, binding)))
            else:
                items.append(item)
        return items

    def _plan_projection(self, select: A.Select, tree: Operator) -> Operator:
        items = self._expand_stars(select, tree.scope)
        # Fold scalar subqueries appearing in the projection/having.
        items = [
            A.SelectItem(self._fold_scalar_subqueries(i.expr, tree), i.alias)
            for i in items
        ]
        having = (
            self._fold_scalar_subqueries(select.having, tree)
            if select.having is not None
            else None
        )

        has_aggregation = bool(select.group_by) or any(
            contains_aggregate(i.expr) for i in items
        ) or (having is not None and contains_aggregate(having))

        output_names: list[str] = []
        for index, item in enumerate(items):
            output_names.append(self._item_name(item, index))
        output_scope = Scope([(None, name) for name in output_names])

        order_exprs = [o.expr for o in select.order_by]
        if has_aggregation:
            tree, items, having, agg_mapping = self._plan_aggregate(
                select, tree, items, having
            )
            if having is not None:
                tree = self._filter(tree, having)
            # ORDER BY under aggregation may mix output aliases with group
            # expressions (e.g. "ORDER BY n DESC, d1.name"): rewrite group
            # expressions / aggregates to their aggregate-output columns,
            # then map projected expressions to their output names.
            def output_mapping(node: A.Expr):
                for item, name in zip(items, output_names):
                    if node == item.expr:
                        return A.Column(name)
                return None

            order_exprs = [
                rewrite_expr(rewrite_expr(e, agg_mapping), output_mapping)
                for e in order_exprs
            ]
        elif having is not None:
            raise PlanError("HAVING without aggregation")

        # ORDER BY: try the output scope first, falling back to the input
        # scope (sorting before projection).
        order_stage = None  # 'post' or 'pre'
        if select.order_by:
            if all(_compilable(e, output_scope) for e in order_exprs):
                order_stage = "post"
            elif not has_aggregation and all(
                _compilable(e, tree.scope) for e in order_exprs
            ):
                order_stage = "pre"
            else:
                raise PlanError("ORDER BY expression not resolvable")

        if order_stage == "pre":
            key_fns = [
                ExprCompiler(tree.scope, self.ctx.lookup_maps).compile(e)
                for e in order_exprs
            ]
            tree = Sort(self.ctx, tree, key_fns, [o.descending for o in select.order_by])

        tree = self._project(tree, items, output_scope)

        if select.distinct:
            tree = Distinct(self.ctx, tree)

        if order_stage == "post":
            out_compiler = ExprCompiler(output_scope, self.ctx.lookup_maps)
            key_fns = [out_compiler.compile(e) for e in order_exprs]
            tree = Sort(self.ctx, tree, key_fns, [o.descending for o in select.order_by])

        if select.limit is not None:
            tree = Limit(self.ctx, tree, select.limit)
        return tree

    def _plan_aggregate(
        self,
        select: A.Select,
        tree: Operator,
        items: list[A.SelectItem],
        having: A.Expr | None,
    ):
        group_exprs = list(select.group_by)
        # Collect every aggregate call (deduplicated structurally).
        agg_calls: list[A.AggCall] = []

        def collect(expr: A.Expr) -> None:
            for node in walk_expr(expr):
                if isinstance(node, A.AggCall) and node not in agg_calls:
                    agg_calls.append(node)

        for item in items:
            collect(item.expr)
        if having is not None:
            collect(having)
        for order in select.order_by:
            collect(order.expr)

        agg_scope = Scope(
            [(None, f"__g{i}") for i in range(len(group_exprs))]
            + [(None, f"__a{i}") for i in range(len(agg_calls))]
        )
        agg_op = self._aggregate(tree, group_exprs, agg_calls, agg_scope)

        # Rewrite projection/having over the aggregate output.
        def agg_mapping(node: A.Expr):
            for i, g in enumerate(group_exprs):
                if node == g:
                    return A.Column(f"__g{i}")
            if isinstance(node, A.AggCall):
                return A.Column(f"__a{agg_calls.index(node)}")
            return None

        new_items = [
            A.SelectItem(rewrite_expr(item.expr, agg_mapping), item.alias)
            for item in items
        ]
        new_having = rewrite_expr(having, agg_mapping) if having is not None else None

        # Validate: no stray input columns survived the rewrite.
        for item in new_items:
            for col in column_refs(item.expr):
                if agg_scope.try_resolve(col.table, col.name) is None:
                    raise PlanError(
                        f"column {col.to_sql()} must appear in GROUP BY or an aggregate"
                    )
        return agg_op, new_items, new_having, agg_mapping

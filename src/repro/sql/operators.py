"""Physical operators (iterator model) with resource metering.

Every operator reports its output :class:`Scope` and yields positional row
tuples.  Work counters go to the shared :class:`ExecContext` meter; the
materializing operators (hash join builds, sorts, aggregation tables) also
track allocated bytes so the cost model can reason about working sets
(EPC paging on the host, memory limits on the storage server).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

from ..errors import ExecutionError
from ..oblivious import oblivious_group_runs, oblivious_join
from ..sim import Meter
from .expressions import RowFn, Scope
from .values import estimate_row_bytes, is_true


class ExecContext:
    """Per-query execution state shared by all operators."""

    def __init__(
        self,
        meter: Meter | None = None,
        *,
        oblivious: bool = False,
        vectorized: bool = False,
        tracer=None,
    ):
        self.meter = meter if meter is not None else Meter()
        self._alloc_bytes = 0
        self.lookup_maps: list[dict] = []
        #: Full oblivious tier: joins and group-bys run the bitonic
        #: shuffle-based variants (``repro.oblivious.shuffle``) instead
        #: of their hash forms, so comparison schedules depend only on
        #: input cardinalities, never on the data.
        self.oblivious = oblivious
        #: Batch-at-a-time execution: the planner prefers the morsel
        #: operators of ``repro.sql.vexec`` wherever the expression set
        #: allows, falling back per operator otherwise.  Off keeps the
        #: seed row path bit for bit.
        self.vectorized = vectorized
        #: Optional query tracer (duck-typed; see ``repro.telemetry``)
        #: the vectorized operators emit per-batch events to.
        self.tracer = tracer

    def allocate(self, nbytes: int) -> None:
        self._alloc_bytes += nbytes
        self.meter.note_memory(self._alloc_bytes)

    def release(self, nbytes: int) -> None:
        self._alloc_bytes = max(0, self._alloc_bytes - nbytes)

    @property
    def allocated_bytes(self) -> int:
        return self._alloc_bytes


class Operator:
    """Base physical operator."""

    def __init__(self, ctx: ExecContext, scope: Scope):
        self.ctx = ctx
        self.scope = scope

    def rows(self) -> Iterator[tuple]:  # pragma: no cover - abstract
        raise NotImplementedError


class SeqScan(Operator):
    """Full scan of a stored table under a binding name."""

    def __init__(self, ctx: ExecContext, store, table_name: str, binding: str):
        schema = store.catalog.table(table_name)
        scope = Scope([(binding, name) for name in schema.column_names])
        super().__init__(ctx, scope)
        self.store = store
        self.table_name = table_name
        # Optional zone-map pruning predicate the planner attaches when the
        # store has skip-scans enabled; None keeps the seed scan path.
        self.pruning = None

    def rows(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        if self.pruning is not None:
            source = self.store.scan(self.table_name, pruning=self.pruning)
        else:
            source = self.store.scan(self.table_name)
        for row in source:
            meter.rows_scanned += 1
            yield row


class RowsSource(Operator):
    """Pre-materialized rows (derived tables, decorrelated inner sides)."""

    def __init__(self, ctx: ExecContext, rows: list[tuple], scope: Scope):
        super().__init__(ctx, scope)
        self._rows = rows

    def rows(self) -> Iterator[tuple]:
        return iter(self._rows)


class Filter(Operator):
    def __init__(self, ctx: ExecContext, child: Operator, predicate: RowFn):
        super().__init__(ctx, child.scope)
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        predicate = self.predicate
        for row in self.child.rows():
            meter.predicate_evals += 1
            if is_true(predicate(row)):
                yield row


class Project(Operator):
    def __init__(self, ctx: ExecContext, child: Operator, fns: list[RowFn], scope: Scope):
        super().__init__(ctx, scope)
        self.child = child
        self.fns = fns

    def rows(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        fns = self.fns
        nfns = len(fns)
        for row in self.child.rows():
            meter.expr_ops += nfns
            yield tuple(fn(row) for fn in fns)


def _pad(width: int) -> tuple:
    return (None,) * width


class HashJoin(Operator):
    """Equi hash join; build on the right input, probe with the left.

    ``residual`` (if given) is evaluated over the concatenated row and must
    be TRUE for a match.  ``kind`` is 'inner' or 'left' (left outer).
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        left_keys: list[RowFn],
        right_keys: list[RowFn],
        kind: str = "inner",
        residual: RowFn | None = None,
    ):
        if kind not in ("inner", "left"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        super().__init__(ctx, left.scope.merged_with(right.scope))
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.kind = kind
        self.residual = residual

    def _build(self) -> tuple[dict, int]:
        table: dict = {}
        meter = self.ctx.meter
        nbytes = 0
        for row in self.right.rows():
            key = tuple(fn(row) for fn in self.right_keys)
            if any(k is None for k in key):
                continue  # NULL keys never match in an equi join
            table.setdefault(key, []).append(row)
            meter.hash_inserts += 1
            # In-memory hash tables cost ~3x the serialized row size
            # (tuple + dict-entry + key overheads).
            nbytes += 3 * estimate_row_bytes(row) + 64
        self.ctx.allocate(nbytes)
        return table, nbytes

    def rows(self) -> Iterator[tuple]:
        if self.ctx.oblivious:
            yield from self._oblivious_rows()
            return
        table, nbytes = self._build()
        meter = self.ctx.meter
        right_width = len(self.right.scope)
        pad = _pad(right_width)
        try:
            for row in self.left.rows():
                meter.join_probes += 1
                key = tuple(fn(row) for fn in self.left_keys)
                matched = False
                if not any(k is None for k in key):
                    for right_row in table.get(key, ()):
                        combined = row + right_row
                        if self.residual is not None and not is_true(self.residual(combined)):
                            continue
                        matched = True
                        yield combined
                if not matched and self.kind == "left":
                    yield row + pad
        finally:
            self.ctx.release(nbytes)

    def _oblivious_rows(self) -> Iterator[tuple]:
        """Full-tier variant: bitonic sort-merge join (repro.oblivious).

        Same semantics as the hash path — NULL keys never match, left
        joins pad, the residual filters combined rows — but both inputs
        run through the oblivious sort network, so the comparison
        schedule is a function of the input cardinalities alone.  Output
        arrives in left-key order instead of left arrival order.
        """
        left_rows = list(self.left.rows())
        right_rows = list(self.right.rows())
        nbytes = sum(estimate_row_bytes(r) for r in left_rows) + sum(
            estimate_row_bytes(r) for r in right_rows
        )
        self.ctx.allocate(nbytes)
        residual = self.residual

        def accept(combined: tuple) -> bool:
            return residual is None or is_true(residual(combined))

        try:
            yield from oblivious_join(
                left_rows,
                right_rows,
                lambda row: tuple(fn(row) for fn in self.left_keys),
                lambda row: tuple(fn(row) for fn in self.right_keys),
                kind=self.kind,
                accept=accept,
                pad_width=len(self.right.scope),
                meter=self.ctx.meter,
            )
        finally:
            self.ctx.release(nbytes)


class HashSemiJoin(Operator):
    """EXISTS / NOT EXISTS / IN-subquery decorrelated to a (anti) semi join.

    Output schema is the left schema.  ``anti=True`` yields rows with *no*
    match (NOT EXISTS).  ``null_aware`` implements NOT IN semantics: if the
    right side contained a NULL key, no left row qualifies.
    """

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        left_keys: list[RowFn],
        right_keys: list[RowFn],
        anti: bool = False,
        residual: RowFn | None = None,
        null_aware: bool = False,
    ):
        super().__init__(ctx, left.scope)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.anti = anti
        self.residual = residual
        self.null_aware = null_aware

    def rows(self) -> Iterator[tuple]:
        meter = self.ctx.meter
        table: dict = {}
        nbytes = 0
        right_has_null = False
        keep_rows = self.residual is not None
        for row in self.right.rows():
            key = tuple(fn(row) for fn in self.right_keys)
            if any(k is None for k in key):
                right_has_null = True
                continue
            if keep_rows:
                table.setdefault(key, []).append(row)
                nbytes += estimate_row_bytes(row) + 16
            else:
                if key not in table:
                    table[key] = True
                    nbytes += 32
            meter.hash_inserts += 1
        self.ctx.allocate(nbytes)
        try:
            for row in self.left.rows():
                meter.join_probes += 1
                key = tuple(fn(row) for fn in self.left_keys)
                if any(k is None for k in key):
                    # NULL keys: IN → unknown (drop); NOT IN → unknown (drop)
                    continue
                if keep_rows:
                    matched = any(
                        is_true(self.residual(row + right_row))
                        for right_row in table.get(key, ())
                    )
                else:
                    matched = key in table
                if self.anti:
                    if not matched and not (self.null_aware and right_has_null):
                        yield row
                else:
                    if matched:
                        yield row
        finally:
            self.ctx.release(nbytes)


class NestedLoopJoin(Operator):
    """Fallback join for non-equi conditions (materializes the right side)."""

    def __init__(
        self,
        ctx: ExecContext,
        left: Operator,
        right: Operator,
        condition: RowFn | None,
        kind: str = "inner",
    ):
        if kind not in ("inner", "left"):
            raise ExecutionError(f"unsupported join kind {kind!r}")
        super().__init__(ctx, left.scope.merged_with(right.scope))
        self.left = left
        self.right = right
        self.condition = condition
        self.kind = kind

    def rows(self) -> Iterator[tuple]:
        right_rows = list(self.right.rows())
        nbytes = sum(estimate_row_bytes(r) for r in right_rows)
        self.ctx.allocate(nbytes)
        meter = self.ctx.meter
        pad = _pad(len(self.right.scope))
        try:
            for row in self.left.rows():
                matched = False
                for right_row in right_rows:
                    meter.join_probes += 1
                    combined = row + right_row
                    if self.condition is None or is_true(self.condition(combined)):
                        matched = True
                        yield combined
                if not matched and self.kind == "left":
                    yield row + pad
        finally:
            self.ctx.release(nbytes)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class _Accumulator:
    __slots__ = ("kind", "count", "total", "best", "distinct")

    def __init__(self, kind: str, distinct: bool):
        self.kind = kind
        self.count = 0
        self.total = None
        self.best = None
        self.distinct: set | None = set() if distinct else None

    def update(self, value) -> None:
        if self.kind == "count_star":
            self.count += 1
            return
        if value is None:
            return
        if self.distinct is not None:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        if self.kind in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.kind == "min":
            if self.best is None or value < self.best:
                self.best = value
        elif self.kind == "max":
            if self.best is None or value > self.best:
                self.best = value

    def result(self):
        if self.kind in ("count_star", "count"):
            return self.count
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.best


class AggSpec:
    """One aggregate to compute: kind + argument expression."""

    __slots__ = ("kind", "arg_fn", "distinct")

    def __init__(self, kind: str, arg_fn: RowFn | None, distinct: bool):
        if kind not in ("count_star", "count", "sum", "avg", "min", "max"):
            raise ExecutionError(f"unknown aggregate {kind!r}")
        self.kind = kind
        self.arg_fn = arg_fn
        self.distinct = distinct


class Aggregate(Operator):
    """Hash aggregation.  Output = group-key values ++ aggregate results."""

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        group_fns: list[RowFn],
        specs: list[AggSpec],
        scope: Scope,
    ):
        super().__init__(ctx, scope)
        self.child = child
        self.group_fns = group_fns
        self.specs = specs

    def rows(self) -> Iterator[tuple]:
        if self.ctx.oblivious and self.group_fns:
            # Full tier: sort-based grouping over the bitonic network
            # (a global aggregate has no data-dependent group structure
            # to hide, so it keeps the single-accumulator pass).
            yield from self._oblivious_rows()
            return
        meter = self.ctx.meter
        groups: dict[tuple, list[_Accumulator]] = {}
        nbytes = 0
        nspecs = max(1, len(self.specs))
        for row in self.child.rows():
            key = tuple(fn(row) for fn in self.group_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.kind, s.distinct) for s in self.specs]
                groups[key] = accs
                nbytes += 64 + 16 * len(accs)
            meter.agg_updates += nspecs
            for spec, acc in zip(self.specs, accs):
                acc.update(spec.arg_fn(row) if spec.arg_fn is not None else None)
        self.ctx.allocate(nbytes)
        try:
            if not groups and not self.group_fns:
                # Global aggregate over zero rows still yields one row.
                accs = [_Accumulator(s.kind, s.distinct) for s in self.specs]
                yield tuple(acc.result() for acc in accs)
                return
            for key, accs in groups.items():
                yield key + tuple(acc.result() for acc in accs)
        finally:
            self.ctx.release(nbytes)

    def _oblivious_rows(self) -> Iterator[tuple]:
        """Full-tier variant: sort-based group-by (repro.oblivious).

        Rows are ordered by group key through the oblivious sort network
        and aggregated run by run; the accumulator semantics (DISTINCT,
        NULL handling, empty input) are shared with the hash path.
        Groups emerge in ascending key order (NULLs last) instead of
        first-seen order.
        """
        meter = self.ctx.meter
        rows = list(self.child.rows())
        nbytes = sum(estimate_row_bytes(r) for r in rows)
        self.ctx.allocate(nbytes)
        nspecs = max(1, len(self.specs))
        try:
            for key, run in oblivious_group_runs(
                rows, lambda row: tuple(fn(row) for fn in self.group_fns), meter
            ):
                accs = [_Accumulator(s.kind, s.distinct) for s in self.specs]
                for row in run:
                    meter.agg_updates += nspecs
                    for spec, acc in zip(self.specs, accs):
                        acc.update(
                            spec.arg_fn(row) if spec.arg_fn is not None else None
                        )
                yield key + tuple(acc.result() for acc in accs)
        finally:
            self.ctx.release(nbytes)


class Sort(Operator):
    """Materializing sort with NULLS LAST and per-key direction."""

    def __init__(
        self,
        ctx: ExecContext,
        child: Operator,
        key_fns: list[RowFn],
        descending: list[bool],
    ):
        super().__init__(ctx, child.scope)
        self.child = child
        self.key_fns = key_fns
        self.descending = descending

    def rows(self) -> Iterator[tuple]:
        rows = list(self.child.rows())
        nbytes = sum(estimate_row_bytes(r) for r in rows)
        self.ctx.allocate(nbytes)
        meter = self.ctx.meter
        if rows:
            meter.sort_ops += int(len(rows) * max(1.0, math.log2(len(rows))))
        # Stable multi-pass sort: least-significant key first.
        for fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            if desc:
                rows.sort(key=lambda r, f=fn: _DescKey(f(r)))
            else:
                rows.sort(key=lambda r, f=fn: _AscKey(f(r)))
        try:
            yield from rows
        finally:
            self.ctx.release(nbytes)


class _AscKey:
    """Ascending sort key with NULLS LAST."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_AscKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value


class _DescKey:
    """Descending sort key with NULLS LAST."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_DescKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value > other.value


class Limit(Operator):
    def __init__(self, ctx: ExecContext, child: Operator, limit: int):
        super().__init__(ctx, child.scope)
        self.child = child
        self.limit = limit

    def rows(self) -> Iterator[tuple]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.rows():
            yield row
            emitted += 1
            if emitted >= self.limit:
                return


class Distinct(Operator):
    def __init__(self, ctx: ExecContext, child: Operator):
        super().__init__(ctx, child.scope)
        self.child = child

    def rows(self) -> Iterator[tuple]:
        seen: set = set()
        nbytes = 0
        try:
            for row in self.child.rows():
                if row in seen:
                    continue
                seen.add(row)
                nbytes += estimate_row_bytes(row)
                self.ctx.allocate(estimate_row_bytes(row))
                yield row
        finally:
            self.ctx.release(nbytes)

"""Runtime value semantics: SQL types, three-valued logic, date arithmetic.

Values are represented with native Python types — ``int``, ``float``,
``str``, ``datetime.date`` and ``None`` for SQL NULL.  This module pins the
SQL behaviours that differ from Python: NULL propagation through operators
and comparisons, Kleene AND/OR, LIKE patterns, and date ± interval.
"""

from __future__ import annotations

import datetime
import re
from functools import lru_cache

from ..errors import ExecutionError

TYPE_NAMES = ("INTEGER", "REAL", "TEXT", "DATE")


def coerce(value, type_name: str):
    """Coerce an inserted value to its declared column type."""
    if value is None:
        return None
    if type_name == "INTEGER":
        return int(value)
    if type_name == "REAL":
        return float(value)
    if type_name == "TEXT":
        return str(value)
    if type_name == "DATE":
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            return datetime.date.fromisoformat(value)
        raise ExecutionError(f"cannot coerce {value!r} to DATE")
    raise ExecutionError(f"unknown type {type_name!r}")


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------


def sql_and(a, b):
    """Kleene AND: False dominates NULL."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return bool(a) and bool(b)


def sql_or(a, b):
    """Kleene OR: True dominates NULL."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return bool(a) or bool(b)


def sql_not(a):
    if a is None:
        return None
    return not a


def is_true(value) -> bool:
    """WHERE/HAVING keep a row only when the predicate is exactly TRUE."""
    return value is True or (value is not None and value is not False and bool(value))


# ---------------------------------------------------------------------------
# Comparisons and arithmetic
# ---------------------------------------------------------------------------


def _comparable(a, b):
    """Raise on type mixes SQL would reject (TEXT vs INTEGER, etc.)."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return
    if isinstance(a, str) and isinstance(b, str):
        return
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return
    raise ExecutionError(f"cannot compare {type(a).__name__} with {type(b).__name__}")


def sql_eq(a, b):
    if a is None or b is None:
        return None
    _comparable(a, b)
    return a == b


def sql_ne(a, b):
    result = sql_eq(a, b)
    return None if result is None else not result


def sql_lt(a, b):
    if a is None or b is None:
        return None
    _comparable(a, b)
    return a < b


def sql_le(a, b):
    if a is None or b is None:
        return None
    _comparable(a, b)
    return a <= b


def sql_gt(a, b):
    if a is None or b is None:
        return None
    _comparable(a, b)
    return a > b


def sql_ge(a, b):
    if a is None or b is None:
        return None
    _comparable(a, b)
    return a >= b


def _add_months(d: datetime.date, months: int) -> datetime.date:
    month_index = d.year * 12 + (d.month - 1) + months
    year, month = divmod(month_index, 12)
    # clamp the day into the target month
    for day in (d.day, 30, 29, 28):
        try:
            return datetime.date(year, month + 1, day)
        except ValueError:
            continue
    raise ExecutionError("date arithmetic failed")  # pragma: no cover


def interval_shift(d: datetime.date, amount: int, unit: str, sign: int):
    """date ± INTERVAL 'amount' unit."""
    if d is None:
        return None
    if unit == "DAY":
        return d + datetime.timedelta(days=sign * amount)
    if unit == "MONTH":
        return _add_months(d, sign * amount)
    if unit == "YEAR":
        return _add_months(d, sign * amount * 12)
    raise ExecutionError(f"unknown interval unit {unit!r}")


def sql_add(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, datetime.date) or isinstance(b, datetime.date):
        raise ExecutionError("date addition requires an INTERVAL")
    return a + b


def sql_sub(a, b):
    if a is None or b is None:
        return None
    if isinstance(a, datetime.date) and isinstance(b, datetime.date):
        return (a - b).days
    return a - b


def sql_mul(a, b):
    if a is None or b is None:
        return None
    return a * b


def sql_div(a, b):
    if a is None or b is None:
        return None
    if b == 0:
        return None  # SQL engines commonly NULL or error; we NULL like SQLite
    if isinstance(a, int) and isinstance(b, int):
        return a / b  # SQL-92 DECIMAL division, not C integer division
    return a / b


def sql_mod(a, b):
    if a is None or b is None:
        return None
    if b == 0:
        return None
    return a % b


def sql_concat(a, b):
    if a is None or b is None:
        return None
    return str(a) + str(b)


def sql_neg(a):
    return None if a is None else -a


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def sql_like(value, pattern):
    if value is None or pattern is None:
        return None
    return _like_regex(str(pattern)).match(str(value)) is not None


# ---------------------------------------------------------------------------
# Scalar functions and EXTRACT/SUBSTRING
# ---------------------------------------------------------------------------


def sql_extract(unit: str, value):
    if value is None:
        return None
    if not isinstance(value, datetime.date):
        raise ExecutionError(f"EXTRACT expects a DATE, got {type(value).__name__}")
    if unit == "YEAR":
        return value.year
    if unit == "MONTH":
        return value.month
    if unit == "DAY":
        return value.day
    raise ExecutionError(f"unknown EXTRACT unit {unit!r}")


def sql_substring(value, start, length=None):
    """1-based SUBSTRING with optional length (SQL semantics)."""
    if value is None or start is None:
        return None
    s = str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return s[begin:]
    if length < 0:
        raise ExecutionError("SUBSTRING length must be non-negative")
    return s[begin : begin + int(length)]


SCALAR_FUNCTIONS = {
    "abs": lambda v: None if v is None else abs(v),
    "round": lambda v, n=0: None if v is None else round(v, int(n)),
    "lower": lambda v: None if v is None else str(v).lower(),
    "upper": lambda v: None if v is None else str(v).upper(),
    "length": lambda v: None if v is None else len(str(v)),
    "coalesce": lambda *args: next((a for a in args if a is not None), None),
}


def estimate_value_bytes(value) -> int:
    """Rough in-memory size used for working-set accounting."""
    if value is None:
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, datetime.date):
        return 4
    return 2 + len(value)


def estimate_row_bytes(row: tuple) -> int:
    return 8 + sum(estimate_value_bytes(v) for v in row)

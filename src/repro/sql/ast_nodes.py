"""Abstract syntax tree for the SQL dialect.

Expression nodes and statement nodes are plain dataclasses; the planner
pattern-matches on them.  Each node knows how to render itself back to SQL
(``to_sql``) because the trusted monitor *rewrites* queries (GDPR expiry
filters, reuse-map filters) and ships rewritten SQL to the engines.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass


class Expr:
    """Base class for expressions."""

    def to_sql(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int | float | str | datetime.date | None

    def to_sql(self) -> str:
        v = self.value
        if v is None:
            return "NULL"
        if isinstance(v, bool):
            return "1" if v else "0"
        if isinstance(v, (int, float)):
            return repr(v)
        if isinstance(v, datetime.date):
            return f"DATE '{v.isoformat()}'"
        escaped = str(v).replace("'", "''")
        return f"'{escaped}'"


@dataclass(frozen=True)
class Interval(Expr):
    """INTERVAL '<n>' DAY|MONTH|YEAR."""

    amount: int
    unit: str  # 'DAY' | 'MONTH' | 'YEAR'

    def to_sql(self) -> str:
        return f"INTERVAL '{self.amount}' {self.unit}"


@dataclass(frozen=True)
class Column(Expr):
    name: str
    table: str | None = None  # alias qualifier

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class Param(Expr):
    """A `?` placeholder (bound at execution; used for correlation too)."""

    index: int

    def to_sql(self) -> str:
        return "?"


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # '-' | 'NOT'
    operand: Expr

    def to_sql(self) -> str:
        if self.op == "NOT":
            return f"NOT ({self.operand.to_sql()})"
        return f"{self.op}({self.operand.to_sql()})"


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * / % = <> < <= > >= AND OR ||
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {word} {self.low.to_sql()}"
            f" AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.to_sql()} {word} {self.pattern.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def to_sql(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {word})"


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {word} ({inner}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    operand: Expr
    subquery: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {word} ({self.subquery.to_sql()}))"


@dataclass(frozen=True)
class Exists(Expr):
    subquery: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{word} ({self.subquery.to_sql()})"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    subquery: "Select"

    def to_sql(self) -> str:
        return f"({self.subquery.to_sql()})"


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-case function name
    args: tuple[Expr, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class AggCall(Expr):
    """SUM/AVG/MIN/MAX/COUNT — kept distinct from scalar functions."""

    name: str  # 'sum' | 'avg' | 'min' | 'max' | 'count'
    arg: Expr | None  # None for COUNT(*)
    distinct: bool = False

    def to_sql(self) -> str:
        if self.arg is None:
            return f"{self.name}(*)"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{self.arg.to_sql()})"


@dataclass(frozen=True)
class Case(Expr):
    whens: tuple[tuple[Expr, Expr], ...]  # (condition, result)
    default: Expr | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class Extract(Expr):
    unit: str  # 'YEAR' | 'MONTH' | 'DAY'
    operand: Expr

    def to_sql(self) -> str:
        return f"EXTRACT({self.unit} FROM {self.operand.to_sql()})"


@dataclass(frozen=True)
class Substring(Expr):
    operand: Expr
    start: Expr
    length: Expr | None = None

    def to_sql(self) -> str:
        if self.length is None:
            return f"SUBSTRING({self.operand.to_sql()} FROM {self.start.to_sql()})"
        return (
            f"SUBSTRING({self.operand.to_sql()} FROM {self.start.to_sql()}"
            f" FOR {self.length.to_sql()})"
        )


# ---------------------------------------------------------------------------
# Planner-injected runtime nodes (never produced by the parser).  The planner
# replaces uncorrelated IN-subqueries with a materialized `InSet` and
# decorrelated scalar-aggregate subqueries with a `MapLookup` keyed on the
# correlation columns.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InSet(Expr):
    operand: Expr
    values: frozenset
    has_null: bool = False
    negated: bool = False

    def to_sql(self) -> str:  # pragma: no cover - runtime node
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {word} <{len(self.values)} values>)"


@dataclass(frozen=True)
class MapLookup(Expr):
    keys: tuple[Expr, ...]
    mapping_id: int  # planner-side registry index (dicts are unhashable)

    def to_sql(self) -> str:  # pragma: no cover - runtime node
        inner = ", ".join(k.to_sql() for k in self.keys)
        return f"<lookup#{self.mapping_id}({inner})>"


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A derived table: (SELECT ...) alias."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.select.to_sql()}) {self.alias}"


@dataclass(frozen=True)
class Join:
    """An explicit JOIN clause attached to the previous FROM item."""

    kind: str  # 'INNER' | 'LEFT'
    right: "TableRef | SubqueryRef"
    on: Expr | None

    def to_sql(self) -> str:
        word = "LEFT OUTER JOIN" if self.kind == "LEFT" else "JOIN"
        on = f" ON {self.on.to_sql()}" if self.on is not None else ""
        return f"{word} {self.right.to_sql()}{on}"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} AS {self.alias}" if self.alias else self.expr.to_sql()


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    from_items: tuple = ()  # TableRef | SubqueryRef
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        if self.from_items:
            parts.append("FROM " + ", ".join(f.to_sql() for f in self.from_items))
        for join in self.joins:
            parts.append(join.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # 'INTEGER' | 'REAL' | 'TEXT' | 'DATE'

    def to_sql(self) -> str:
        return f"{self.name} {self.type_name}"


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()

    def to_sql(self) -> str:
        cols = ", ".join(c.to_sql() for c in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"CREATE TABLE {self.name} ({cols}{pk})"


@dataclass(frozen=True)
class DropTable:
    name: str

    def to_sql(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = table order
    rows: tuple[tuple[Expr, ...], ...] = ()
    select: Select | None = None

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        if self.select is not None:
            return f"INSERT INTO {self.table}{cols} {self.select.to_sql()}"
        rows = ", ".join(
            "(" + ", ".join(v.to_sql() for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{cols} VALUES {rows}"


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None = None

    def to_sql(self) -> str:
        where = f" WHERE {self.where.to_sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


Statement = CreateTable | DropTable | Insert | Update | Delete | Select
